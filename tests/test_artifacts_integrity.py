"""Cache-integrity regressions: corrupt entries, tmp litter, backends.

The bug these pin down: ``ArtifactStore.__contains__`` used to answer
from ``Path.exists()`` alone, so a truncated/corrupt pickle (a writer
killed mid-``os.replace``, a bad disk) counted as a hit — sweeps then
over-reported their precached count and served nothing.  Membership is
now defined as *readability*: a corrupt entry is evicted, counted, and
reported as a miss everywhere.
"""

import pickle
from pathlib import Path

import pytest

from repro.core.artifacts import (
    ArtifactStore,
    ChaosStorage,
    LocalDirStorage,
    StorageBackend,
    StorageFault,
    register_storage_scheme,
    storage_from_url,
)
from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import (
    SweepSpec,
    _precached_count,
    expand,
    point_cache_key,
    point_config,
    run_sweep,
)


def _entry_files(cache_dir):
    return sorted(p for p in cache_dir.iterdir()
                  if p.suffix == ".pkl")


class TestCorruptEntries:
    def test_truncated_pickle_is_a_miss_and_is_evicted(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.put("alpha", {"rows": [1, 2, 3]})
        (entry,) = _entry_files(tmp_path)
        entry.write_bytes(entry.read_bytes()[:7])  # truncate mid-stream

        fresh = ArtifactStore(cache_dir=tmp_path)
        assert "alpha" not in fresh
        assert fresh.get("alpha", "missing") == "missing"
        assert fresh.corrupt_evictions >= 1
        assert not entry.exists(), "corrupt entry must be unlinked"

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.put("alpha", 42)
        (entry,) = _entry_files(tmp_path)
        entry.write_bytes(b"not a pickle at all")
        fresh = ArtifactStore(cache_dir=tmp_path)
        assert fresh.get("alpha", default=None) is None
        assert fresh.counters()["corrupt_evictions"] == 1

    def test_membership_equals_readability_and_promotes(self, tmp_path):
        ArtifactStore(cache_dir=tmp_path).put("alpha", "payload")
        fresh = ArtifactStore(cache_dir=tmp_path)
        assert "alpha" in fresh            # readable -> member
        assert len(fresh) == 1             # ...and promoted to memory
        assert fresh.get("alpha") == "payload"

    def test_intact_entries_survive_a_corrupt_sibling(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.put("good", "kept")
        store.put("bad", "doomed")
        for entry in _entry_files(tmp_path):
            if pickle.loads(entry.read_bytes()) == "doomed":
                entry.write_bytes(b"\x80")
        fresh = ArtifactStore(cache_dir=tmp_path)
        assert "bad" not in fresh
        assert fresh.get("good") == "kept"


class TestStaleTmpSweep:
    def test_sweep_removes_old_tmp_litter(self, tmp_path):
        litter = tmp_path / ".0123456789abcdef-dead1"
        litter.write_bytes(b"half-written")
        keeper = tmp_path / "real.pkl"
        keeper.write_bytes(pickle.dumps("x"))
        store = ArtifactStore(cache_dir=tmp_path)
        assert store.sweep_stale_tmp(max_age_s=0.0) == 1
        assert not litter.exists()
        assert keeper.exists()

    def test_fresh_tmp_files_are_left_alone(self, tmp_path):
        litter = tmp_path / ".0123456789abcdef-dead1"
        litter.write_bytes(b"half-written")
        store = ArtifactStore(cache_dir=tmp_path)
        assert store.sweep_stale_tmp(max_age_s=3600.0) == 0
        assert litter.exists()

    def test_non_tmp_dotfiles_are_not_swept(self, tmp_path):
        dotfile = tmp_path / ".gitignore"
        dotfile.write_text("*")
        store = ArtifactStore(cache_dir=tmp_path)
        assert store.sweep_stale_tmp(max_age_s=0.0) == 0
        assert dotfile.exists()


class TestStorageBackends:
    def test_file_url_resolves_to_local_dir(self, tmp_path):
        storage = storage_from_url(f"file://{tmp_path}")
        assert isinstance(storage, LocalDirStorage)
        store = ArtifactStore(cache_dir=f"file://{tmp_path}")
        store.put("k", 1)
        assert ArtifactStore(cache_dir=tmp_path).get("k") == 1

    def test_plain_path_resolves_to_local_dir(self, tmp_path):
        assert isinstance(storage_from_url(tmp_path), LocalDirStorage)

    def test_unknown_scheme_is_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            storage_from_url("warehouse://bucket/prefix")

    def test_registered_scheme_round_trips(self):
        class MemoryStorage(StorageBackend):
            def __init__(self):
                self.blobs = {}

            def read(self, key):
                try:
                    return self.blobs[key]
                except KeyError:
                    raise KeyError(key) from None

            def write(self, key, data):
                self.blobs[key] = data

            def contains(self, key):
                return key in self.blobs

            def delete(self, key):
                self.blobs.pop(key, None)

            def describe(self):
                return "memtest://"

        backend = MemoryStorage()
        register_storage_scheme("memtest", lambda url: backend)
        store = ArtifactStore(cache_dir="memtest://anything")
        store.put("k", {"v": 2})
        assert ArtifactStore(storage=backend).get("k") == {"v": 2}

    def test_cache_dir_and_storage_are_mutually_exclusive(
            self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(cache_dir=tmp_path,
                          storage=LocalDirStorage(tmp_path))

    def test_counters_snapshot(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        store.get_or_compute("k", lambda: 1)          # miss + compute
        store.get_or_compute("k", lambda: 1)          # memory hit
        disk = ArtifactStore(cache_dir=tmp_path)
        disk.get_or_compute("k", lambda: 1)           # disk hit
        assert store.counters() == {"hits": 1, "misses": 1,
                                    "disk_hits": 0,
                                    "corrupt_evictions": 0,
                                    "read_faults": 0,
                                    "write_faults": 0}
        assert disk.counters()["disk_hits"] == 1


class TestPrecachedCountRegression:
    """A truncated point artifact must not count as precached."""

    def test_truncated_point_entry_drops_from_precache(
            self, tmp_path, monkeypatch):
        monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8",
                            _echo_runner)
        spec = SweepSpec(experiment="fig8", scale="smoke",
                         thresholds=(None, 900.0))
        cache = tmp_path / "cache"
        run_sweep(spec, jobs=1, cache_dir=str(cache))

        points = expand(spec)
        store = ArtifactStore(cache_dir=cache)
        assert _precached_count(points, str(cache), store, 1) == 2

        victim = point_cache_key(points[0], point_config(points[0]))
        path = LocalDirStorage(cache)._path(victim)
        path.write_bytes(path.read_bytes()[:5])

        fresh = ArtifactStore(cache_dir=cache)
        assert _precached_count(points, str(cache), fresh, 1) == 1
        assert victim not in fresh


def _echo_runner(point, context):
    value = (point.threshold or 0.0) + point.seed
    return {"payload": {"value": value},
            "metrics": {"accuracy": value, "n_weights": 1,
                        "power_opt_mw": value},
            "skipped": None}


class TestChaosStorage:
    """The fault-injection harness and the store's tolerance of it."""

    def test_seeded_faults_are_deterministic(self, tmp_path):
        def drill(seed):
            chaos = ChaosStorage(LocalDirStorage(tmp_path / str(seed)),
                                 read_fault_rate=0.5,
                                 write_fault_rate=0.5, seed=seed)
            events = []
            for i in range(40):
                try:
                    chaos.write(f"k{i}", b"payload")
                    events.append(("w", i))
                except StorageFault:
                    events.append(("W!", i))
                try:
                    chaos.read(f"k{i}")
                    events.append(("r", i))
                except (StorageFault, KeyError):
                    events.append(("R!", i))
            return events

        assert drill(7) == drill(7)
        assert drill(7) != drill(8)

    def test_injected_corruption_feeds_corrupt_eviction(self, tmp_path):
        chaos = ChaosStorage(LocalDirStorage(tmp_path),
                             corrupt_rate=1.0, seed=0)
        store = ArtifactStore(storage=chaos)
        store.put("k", {"value": 1})
        fresh = ArtifactStore(storage=ChaosStorage(
            LocalDirStorage(tmp_path), corrupt_rate=1.0, seed=0))
        # Every read comes back truncated -> the existing
        # corrupt-eviction path fires, and the entry is a miss.
        assert "k" not in fresh
        assert fresh.corrupt_evictions == 1
        assert chaos.counters()["injected_corruptions"] == 0

    def test_read_fault_degrades_to_recompute(self, tmp_path):
        chaos = ChaosStorage(LocalDirStorage(tmp_path),
                             read_fault_rate=1.0, seed=0)
        store = ArtifactStore(storage=chaos)
        store.put("k", 41)
        store.clear_memory()
        calls = []
        assert store.get_or_compute(
            "k", lambda: calls.append(1) or 42) == 42
        assert calls == [1]
        assert store.read_faults >= 1
        assert store.counters()["read_faults"] == store.read_faults

    def test_write_fault_keeps_artifact_in_memory(self, tmp_path):
        chaos = ChaosStorage(LocalDirStorage(tmp_path),
                             write_fault_rate=1.0, seed=0)
        store = ArtifactStore(storage=chaos)
        assert store.get_or_compute("k", lambda: 42) == 42
        assert store.get("k") == 42          # still served from memory
        assert store.write_faults == 1
        assert chaos.injected_write_faults == 1
        clean = ArtifactStore(cache_dir=tmp_path)
        assert "k" not in clean              # never hit the disk

    def test_chaos_url_scheme(self, tmp_path):
        url = (f"chaos://{tmp_path}/cache"
               f"?read=0.25&write=0.5&corrupt=0.1&seed=13")
        backend = storage_from_url(url)
        assert isinstance(backend, ChaosStorage)
        assert backend.read_fault_rate == 0.25
        assert backend.write_fault_rate == 0.5
        assert backend.corrupt_rate == 0.1
        assert backend.root == Path(f"{tmp_path}/cache")
        plain = storage_from_url(f"chaos://{tmp_path}/cache")
        assert plain.read_fault_rate == 0.0
        with pytest.raises(ValueError, match="directory path"):
            storage_from_url("chaos://?read=0.5")

    def test_bad_rates_are_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="read_fault_rate"):
            ChaosStorage(LocalDirStorage(tmp_path), read_fault_rate=1.5)

    def test_fault_free_chaos_is_transparent(self, tmp_path):
        chaos = ChaosStorage(LocalDirStorage(tmp_path), seed=3)
        store = ArtifactStore(storage=chaos)
        store.put("k", {"value": 9})
        fresh = ArtifactStore(storage=ChaosStorage(
            LocalDirStorage(tmp_path), seed=4))
        assert fresh.get("k") == {"value": 9}
        assert chaos.sweep_stale_tmp() == 0
        assert "chaos" in chaos.describe()
        assert chaos.contains("k")
        chaos.delete("k")
        assert not chaos.contains("k")
