"""Tests for the cell library and voltage-scaling laws."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cells import (
    CellLibrary,
    VoltageModel,
    default_library,
    delay_scale,
    dynamic_power_scale,
    leakage_power_scale,
)
from repro.cells.library import Cell


class TestCellLibrary:
    def test_default_library_has_core_cells(self):
        lib = default_library()
        for name in ("INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2",
                     "XNOR2", "BUF", "MUX2"):
            assert name in lib

    def test_lookup_by_name(self):
        lib = default_library()
        assert lib["INV"].num_inputs == 1
        assert lib["XOR2"].num_inputs == 2

    def test_unknown_cell_raises(self):
        lib = default_library()
        with pytest.raises(KeyError, match="NAND17"):
            lib["NAND17"]

    def test_nominal_voltage(self):
        assert default_library().nominal_voltage == pytest.approx(0.8)

    def test_xor_slower_than_inv(self):
        lib = default_library()
        assert lib.delay_ps("XOR2") > lib.delay_ps("INV")
        assert lib.energy_fj("XOR2") > lib.energy_fj("INV")

    def test_scaled_library(self):
        lib = default_library()
        scaled = lib.scaled(delay_factor=2.0, energy_factor=0.5)
        assert scaled.delay_ps("INV") == pytest.approx(
            2.0 * lib.delay_ps("INV"))
        assert scaled.energy_fj("INV") == pytest.approx(
            0.5 * lib.energy_fj("INV"))
        assert scaled.leakage_nw("INV") == pytest.approx(
            lib.leakage_nw("INV"))

    def test_scaled_cell(self):
        cell = Cell("T", 2, delay_ps=3.0, energy_fj=1.0, leakage_nw=5.0)
        scaled = cell.scaled(delay_factor=1.5, leakage_factor=2.0)
        assert scaled.delay_ps == pytest.approx(4.5)
        assert scaled.leakage_nw == pytest.approx(10.0)

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            CellLibrary("empty", [])

    def test_iteration_and_len(self):
        lib = default_library()
        assert len(list(lib)) == len(lib)


class TestVoltageLaws:
    def test_delay_scale_is_one_at_nominal(self):
        assert delay_scale(0.8) == pytest.approx(1.0)

    def test_delay_increases_as_voltage_drops(self):
        assert delay_scale(0.7) > delay_scale(0.75) > 1.0

    def test_delay_scale_near_threshold_raises(self):
        with pytest.raises(ValueError):
            delay_scale(0.32)

    def test_dynamic_power_quadratic(self):
        assert dynamic_power_scale(0.4) == pytest.approx(0.25)

    def test_leakage_power_cubic(self):
        assert leakage_power_scale(0.4) == pytest.approx(0.125)

    def test_nonpositive_voltage_rejected(self):
        with pytest.raises(ValueError):
            dynamic_power_scale(0.0)
        with pytest.raises(ValueError):
            leakage_power_scale(-1.0)

    @given(st.floats(min_value=0.5, max_value=0.8))
    def test_delay_scale_monotone(self, vdd):
        # Any voltage in the operating range is slower than nominal and
        # faster than a strictly lower voltage.
        assert delay_scale(vdd) >= 1.0 - 1e-12
        assert delay_scale(vdd) <= delay_scale(vdd - 0.05) + 1e-12


class TestVoltageModel:
    def test_paper_anchor_points(self):
        """Table I: slack 40/30/20 ps -> 0.71/0.73/0.75 V."""
        model = VoltageModel()
        assert model.min_voltage_for_slack(140.0, 180.0) == 0.71
        assert model.min_voltage_for_slack(150.0, 180.0) == 0.73
        assert model.min_voltage_for_slack(160.0, 180.0) == 0.75

    def test_no_slack_keeps_nominal(self):
        model = VoltageModel()
        assert model.min_voltage_for_slack(180.0, 180.0) == 0.8

    def test_delay_exceeding_clock_rejected(self):
        model = VoltageModel()
        with pytest.raises(ValueError):
            model.min_voltage_for_slack(200.0, 180.0)

    def test_nonpositive_delays_rejected(self):
        model = VoltageModel()
        with pytest.raises(ValueError):
            model.min_voltage_for_slack(0.0, 180.0)

    def test_power_scale_mixes_components(self):
        model = VoltageModel()
        pure_dyn = model.power_scale(0.71, leakage_fraction=0.0)
        pure_leak = model.power_scale(0.71, leakage_fraction=1.0)
        mixed = model.power_scale(0.71, leakage_fraction=0.5)
        assert pure_dyn == pytest.approx(model.dynamic_power_scale(0.71))
        assert pure_leak == pytest.approx(model.leakage_power_scale(0.71))
        assert min(pure_dyn, pure_leak) < mixed < max(pure_dyn, pure_leak)

    def test_power_scale_validates_fraction(self):
        with pytest.raises(ValueError):
            VoltageModel().power_scale(0.71, leakage_fraction=1.5)

    def test_voltage_scaling_saves_power(self):
        model = VoltageModel()
        vdd = model.min_voltage_for_slack(140.0, 180.0)
        assert model.power_scale(vdd, leakage_fraction=0.1) < 1.0

    @given(st.floats(min_value=100.0, max_value=180.0))
    def test_selected_voltage_always_meets_timing(self, max_delay):
        model = VoltageModel()
        vdd = model.min_voltage_for_slack(max_delay, 180.0)
        # The scaled circuit must still fit in the clock period.
        assert model.delay_scale(vdd) * max_delay <= 180.0 + 1e-9
