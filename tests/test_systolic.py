"""Tests for the systolic-array simulator, stats and power model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.power.characterization import WeightPowerTable
from repro.systolic import (
    OPTIMIZED_HW,
    STANDARD_HW,
    ArrayPowerModel,
    MacPowerParams,
    SystolicArray,
    SystolicConfig,
    TransitionStatsCollector,
    schedule_matmul,
)
from repro.systolic.mapping import (
    conv2d_matmul_shape,
    dense_matmul_shape,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = SystolicConfig()
        assert config.rows == config.cols == 64
        assert config.psum_bits == 22
        assert config.clock_period_ps == pytest.approx(180.0)
        assert config.n_pes == 4096

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SystolicConfig(rows=0)

    def test_narrow_psum_rejected(self):
        with pytest.raises(ValueError):
            SystolicConfig(psum_bits=10)

    def test_variants(self):
        assert not STANDARD_HW.clock_gate_zero_weight
        assert OPTIMIZED_HW.clock_gate_zero_weight
        assert OPTIMIZED_HW.power_gate_unused_columns


class TestMapping:
    def test_single_tile(self):
        schedule = schedule_matmul(32, 16, 100, SystolicConfig())
        assert len(schedule) == 1
        tile = schedule.tiles[0]
        assert tile.rows_used == 32 and tile.cols_used == 16
        assert tile.cycles() == 32 + 100 + 32 + 16

    def test_multi_tile_grid(self):
        schedule = schedule_matmul(150, 70, 10, SystolicConfig())
        # ceil(150/64) x ceil(70/64) = 3 x 2 tiles
        assert len(schedule) == 6
        covered = sum(t.rows_used * t.cols_used for t in schedule)
        assert covered == 150 * 70

    def test_total_macs(self):
        schedule = schedule_matmul(10, 20, 30, SystolicConfig())
        assert schedule.total_macs == 6000

    def test_utilization_bounds(self):
        schedule = schedule_matmul(64, 64, 5000, SystolicConfig())
        assert 0.0 < schedule.utilization <= 1.0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            schedule_matmul(0, 4, 4, SystolicConfig())

    def test_conv_shape(self):
        k, n, m = conv2d_matmul_shape(3, 6, (5, 5), (28, 28), batch=2)
        assert (k, n, m) == (75, 6, 28 * 28 * 2)

    def test_dense_shape(self):
        assert dense_matmul_shape(120, 84, batch=7) == (120, 84, 7)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            conv2d_matmul_shape(0, 6, (5, 5), (28, 28))
        with pytest.raises(ValueError):
            dense_matmul_shape(10, 0)


class TestSystolicArray:
    def test_exact_matmul(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-127, 128, (100, 30))
        acts = rng.integers(-128, 128, (100, 55))
        out = SystolicArray().run_layer(weights, acts)
        np.testing.assert_array_equal(out, weights.T @ acts)

    def test_multi_tile_matmul(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(-127, 128, (200, 130))
        acts = rng.integers(-128, 128, (200, 40))
        out = SystolicArray().run_layer(weights, acts)
        np.testing.assert_array_equal(out, weights.T @ acts)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 80), st.integers(1, 80), st.integers(2, 40))
    def test_matmul_property(self, k, n, m):
        rng = np.random.default_rng(k * 1000 + n * 10 + m)
        weights = rng.integers(-127, 128, (k, n))
        acts = rng.integers(-128, 128, (k, m))
        out = SystolicArray().run_layer(weights, acts)
        np.testing.assert_array_equal(out, weights.T @ acts)

    def test_operand_range_checked(self):
        arr = SystolicArray()
        with pytest.raises(ValueError, match="weights"):
            arr.run_layer(np.array([[300]]), np.array([[1]]))
        with pytest.raises(ValueError, match="activations"):
            arr.run_layer(np.array([[1]]), np.array([[300]]))

    def test_fanin_mismatch(self):
        with pytest.raises(ValueError, match="fan-in"):
            SystolicArray().run_layer(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_stats_collection(self):
        rng = np.random.default_rng(2)
        weights = rng.integers(-127, 128, (64, 16))
        acts = rng.integers(-128, 128, (64, 200))
        stats = TransitionStatsCollector()
        SystolicArray().run_layer(weights, acts, stats=stats)
        assert stats.n_act_transitions > 0
        assert stats.n_psum_transitions > 0
        dist = stats.activation_distribution()
        assert dist.matrix.sum() == pytest.approx(1.0)


class TestStatsCollector:
    def test_diagonal_streams_give_diagonal_distribution(self):
        stats = TransitionStatsCollector()
        walk = np.cumsum(
            np.random.default_rng(3).integers(-3, 4, (5, 500)), axis=1)
        walk = np.clip(walk, -128, 127)
        stats.add_activation_streams(walk)
        dist = stats.activation_distribution()
        assert dist.diagonal_mass(8) > 0.9

    def test_empty_collector_raises(self):
        stats = TransitionStatsCollector()
        with pytest.raises(RuntimeError):
            stats.activation_distribution()
        with pytest.raises(RuntimeError):
            stats.psum_pairs()

    def test_psum_reservoir_cap(self):
        stats = TransitionStatsCollector(max_psum_samples=100)
        streams = np.random.default_rng(4).integers(
            -(1 << 20), 1 << 20, (10, 200))
        stats.add_psum_streams(streams)
        stats.add_psum_streams(streams)
        f, t = stats.psum_pairs()
        assert f.size == 100
        assert stats.n_psum_transitions == 2 * 10 * 199

    def test_binned_psum_transitions(self):
        stats = TransitionStatsCollector()
        streams = np.random.default_rng(5).integers(
            -(1 << 20), 1 << 20, (4, 800))
        stats.add_psum_streams(streams)
        binned = stats.binned_psum_transitions(n_bins=8)
        assert binned.distribution.n_codes == 8

    def test_short_streams_ignored(self):
        stats = TransitionStatsCollector()
        stats.add_activation_streams(np.zeros((3, 1)))
        assert stats.n_act_transitions == 0


def _table():
    weights = np.arange(-127, 128)
    dynamic = 300.0 + 5.0 * np.abs(weights)
    dynamic[127] = 50.0  # weight zero is by far the cheapest
    return WeightPowerTable(
        weights=weights,
        power_uw=dynamic + 10.0,
        dynamic_uw=dynamic,
        leakage_uw=10.0,
        clock_period_ps=180.0,
    )


@pytest.fixture(scope="module")
def power_model():
    return ArrayPowerModel(SystolicConfig(),
                           MacPowerParams(table=_table()))


class TestArrayPowerModel:
    def test_optimized_below_standard(self, power_model):
        rng = np.random.default_rng(6)
        weights = rng.integers(-127, 128, (64, 16))
        schedule = schedule_matmul(64, 16, 500, SystolicConfig())
        std = power_model.layer_power(schedule, weights, STANDARD_HW)
        opt = power_model.layer_power(schedule, weights, OPTIMIZED_HW)
        assert opt.total_uw < std.total_uw
        assert opt.leakage_uw < std.leakage_uw

    def test_zero_weights_save_power_on_optimized(self, power_model):
        schedule = schedule_matmul(64, 16, 500, SystolicConfig())
        rng = np.random.default_rng(7)
        dense = rng.integers(1, 128, (64, 16))
        sparse = dense.copy()
        sparse[::2, :] = 0
        dense_p = power_model.layer_power(schedule, dense, OPTIMIZED_HW)
        sparse_p = power_model.layer_power(schedule, sparse, OPTIMIZED_HW)
        assert sparse_p.dynamic_uw < dense_p.dynamic_uw

    def test_zero_weights_keep_clock_power_on_standard(self, power_model):
        schedule = schedule_matmul(64, 16, 500, SystolicConfig())
        zeros = np.zeros((64, 16), dtype=np.int64)
        std = power_model.layer_power(schedule, zeros, STANDARD_HW)
        clock = power_model.params.clock_power_uw
        # every PE is still clocked on Standard HW
        expected = SystolicConfig().n_pes * clock + \
            64 * 16 * power_model.params.table.dynamic_of(0)
        assert std.dynamic_uw == pytest.approx(expected)

    def test_voltage_scaling_reduces_power(self, power_model):
        schedule = schedule_matmul(64, 16, 500, SystolicConfig())
        rng = np.random.default_rng(8)
        weights = rng.integers(-127, 128, (64, 16))
        nominal = power_model.layer_power(schedule, weights, OPTIMIZED_HW)
        scaled = power_model.layer_power(schedule, weights, OPTIMIZED_HW,
                                         vdd=0.71)
        assert scaled.total_uw < nominal.total_uw

    def test_weight_shape_validated(self, power_model):
        schedule = schedule_matmul(64, 16, 500, SystolicConfig())
        with pytest.raises(ValueError):
            power_model.layer_power(schedule, np.zeros((10, 10)),
                                    STANDARD_HW)

    def test_network_power_cycle_weighted(self, power_model):
        config = SystolicConfig()
        rng = np.random.default_rng(9)
        layers = []
        for k, n, m in ((64, 16, 300), (128, 32, 100)):
            weights = rng.integers(-127, 128, (k, n))
            layers.append((schedule_matmul(k, n, m, config), weights))
        total = power_model.network_power(layers, OPTIMIZED_HW)
        singles = [
            power_model.layer_power(s, w, OPTIMIZED_HW)
            for s, w in layers
        ]
        low = min(p.total_uw for p in singles)
        high = max(p.total_uw for p in singles)
        assert low <= total.total_uw <= high

    def test_network_power_empty_rejected(self, power_model):
        with pytest.raises(ValueError):
            power_model.network_power([], STANDARD_HW)
