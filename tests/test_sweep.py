"""Tests for the declarative sweep engine and parallel error naming."""

import json
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.artifacts import ArtifactStore
from repro.core.stages import shared_stage_keys
from repro.experiments import sweep as sweep_mod
from repro.experiments.config import NETWORK_SPECS
from repro.experiments.parallel import ParallelTaskError, parallel_map
from repro.experiments.runner import ExperimentContext
from repro.experiments.sweep import (
    SHARED_PREFIX_STAGES,
    SweepSpec,
    expand,
    fig9_weight_threshold,
    load_sweep_file,
    make_sweep_spec,
    point_cache_key,
    point_config,
    resolve_network,
    run_sweep,
    shared_prefix_count,
    sweep_experiments,
)
from repro.hw import DEFAULT_BACKEND_ID, list_backends


class TestMakeSweepSpec:
    def test_experiments_registered(self):
        assert set(sweep_experiments()) >= {"table1", "fig8", "fig9"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep experiment"):
            make_sweep_spec("fig12")

    def test_table1_has_no_threshold_axis(self):
        assert make_sweep_spec("table1").thresholds == (None,)
        with pytest.raises(ValueError, match="no threshold axis"):
            make_sweep_spec("table1", thresholds=(800.0,))

    def test_fig9_thresholds_sorted_descending_and_numeric(self):
        spec = make_sweep_spec("fig9",
                               thresholds=(150.0, 180.0, 160.0, 180.0))
        assert spec.thresholds == (180.0, 160.0, 150.0)
        with pytest.raises(ValueError, match="must be numbers"):
            make_sweep_spec("fig9", thresholds=(None, 160.0))

    def test_fig8_keeps_given_order_dedupes_and_allows_none(self):
        spec = make_sweep_spec("fig8",
                               thresholds=(None, 900.0, 900, 850.0))
        assert spec.thresholds == (None, 900.0, 850.0)

    def test_network_resolution_by_name_label_and_spec(self):
        by_name = resolve_network("lenet5")
        by_label = resolve_network("LeNet-5-CIFAR-10")
        assert by_name is by_label is NETWORK_SPECS[0]
        assert resolve_network(NETWORK_SPECS[2]) is NETWORK_SPECS[2]
        with pytest.raises(ValueError, match="unknown network"):
            resolve_network("alexnet")

    def test_axes_deduplicated_preserving_order(self):
        spec = make_sweep_spec(
            "fig8",
            backends=("nangate15-array", "nangate15-booth",
                      "nangate15-array"),
            networks=("resnet20", "lenet5", "resnet20"),
            seeds=(3, 0, 3))
        assert spec.backends == ("nangate15-array", "nangate15-booth")
        assert [n.network for n in spec.networks] == ["resnet20",
                                                      "lenet5"]
        assert spec.seeds == (3, 0)

    def test_defaults(self):
        spec = make_sweep_spec("fig8")
        assert spec.backends == (DEFAULT_BACKEND_ID,)
        assert spec.networks == (NETWORK_SPECS[0],)
        assert spec.seeds == (0,)
        assert spec.scale == "ci"


class TestLoadSweepFile:
    def test_json_with_none_strings_and_nulls(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "experiment": "fig8",
            "backends": ["nangate15-booth", "nangate15-array"],
            "networks": ["lenet5"],
            "thresholds": [None, "none", 900.0],
            "seeds": [0, 1],
            "scale": "smoke",
        }))
        spec = load_sweep_file(path)
        assert spec.experiment == "fig8"
        assert spec.thresholds == (None, 900.0)
        assert spec.seeds == (0, 1)
        assert spec.scale == "smoke"

    def test_toml(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'experiment = "fig9"\n'
            'backends = ["nangate15-booth"]\n'
            'thresholds = [160.0, 180.0]\n'
        )
        spec = load_sweep_file(path)
        assert spec.experiment == "fig9"
        assert spec.thresholds == (180.0, 160.0)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"experiment": "fig8",
                                    "treshold": [900]}))
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            load_sweep_file(path)

    def test_experiment_required(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"backends": ["nangate15-booth"]}))
        with pytest.raises(ValueError, match="'experiment' key"):
            load_sweep_file(path)


# Small, fast axis strategies over real registry entries.
_BACKENDS = st.lists(st.sampled_from(sorted(list_backends())),
                     min_size=1, max_size=3, unique=True)
_NETWORKS = st.lists(st.sampled_from(NETWORK_SPECS),
                     min_size=1, max_size=3, unique=True)
_THRESHOLDS = st.lists(
    st.one_of(st.none(),
              st.floats(min_value=500.0, max_value=1200.0,
                        allow_nan=False)),
    min_size=1, max_size=4, unique=True)
_SEEDS = st.lists(st.integers(min_value=0, max_value=99),
                  min_size=1, max_size=3, unique=True)


@st.composite
def _sweep_specs(draw):
    return make_sweep_spec(
        "fig8",
        backends=draw(_BACKENDS),
        networks=draw(_NETWORKS),
        thresholds=draw(_THRESHOLDS),
        seeds=draw(_SEEDS),
        scale=draw(st.sampled_from(("smoke", "ci"))),
    )


class TestGridExpansionProperties:
    @settings(max_examples=30, deadline=None)
    @given(spec=_sweep_specs())
    def test_cartesian_size(self, spec):
        points = expand(spec)
        assert len(points) == (len(spec.backends) * len(spec.networks)
                               * len(spec.thresholds) * len(spec.seeds))

    @settings(max_examples=30, deadline=None)
    @given(spec=_sweep_specs())
    def test_no_duplicate_grid_points(self, spec):
        points = expand(spec)
        keys = [point.key() for point in points]
        assert len(set(keys)) == len(keys)

    @settings(max_examples=30, deadline=None)
    @given(spec=_sweep_specs())
    def test_stable_ordering(self, spec):
        points = expand(spec)
        assert points == expand(spec)
        # Documented nesting: backends, networks, seeds, thresholds.
        expected = [
            (backend_id, network.label, seed, threshold)
            for backend_id in spec.backends
            for network in spec.networks
            for seed in spec.seeds
            for threshold in spec.thresholds
        ]
        observed = [(p.backend.backend_id, p.spec.label, p.seed,
                     p.threshold) for p in points]
        assert observed == expected

    @settings(max_examples=10, deadline=None)
    @given(spec=_sweep_specs())
    def test_cache_key_unique_across_grid_points(self, spec):
        points = expand(spec)
        keys = {point_cache_key(point, point_config(point))
                for point in points}
        assert len(keys) == len(points)


class TestCacheKeys:
    def test_char_jobs_and_verbose_never_in_point_cache_key(self):
        point = expand(make_sweep_spec("fig8", scale="smoke"))[0]
        baseline = point_cache_key(point, point_config(point))
        sharded = point_cache_key(
            point, point_config(point, char_jobs=8, verbose=True))
        assert baseline == sharded

    def test_threshold_only_neighbours_share_the_whole_prefix(self):
        spec = make_sweep_spec("fig8", thresholds=(None, 900.0),
                               scale="smoke")
        first, second = expand(spec)
        keys_first = shared_stage_keys(point_config(first),
                                       SHARED_PREFIX_STAGES)
        keys_second = shared_stage_keys(point_config(second),
                                        SHARED_PREFIX_STAGES)
        assert keys_first == keys_second
        assert shared_prefix_count([first, second]) == 1

    def test_backends_never_share_prefixes(self):
        spec = make_sweep_spec(
            "fig8", backends=("nangate15-booth", "nangate15-array"),
            thresholds=(900.0,), scale="smoke")
        booth, array = expand(spec)
        keys_booth = shared_stage_keys(point_config(booth),
                                       SHARED_PREFIX_STAGES)
        keys_array = shared_stage_keys(point_config(array),
                                       SHARED_PREFIX_STAGES)
        for name in SHARED_PREFIX_STAGES:
            assert keys_booth[name] != keys_array[name], name
        assert shared_prefix_count([booth, array]) == 2

    def test_fig9_weight_threshold_rule(self):
        assert fig9_weight_threshold(NETWORK_SPECS[0], "smoke") == 900.0
        assert fig9_weight_threshold(NETWORK_SPECS[0], "ci") == 825.0
        assert fig9_weight_threshold(NETWORK_SPECS[3], "paper") == 900.0


class TestScheduling:
    def test_round_robin_across_prefix_groups(self):
        spec = make_sweep_spec(
            "fig8", backends=("nangate15-booth", "nangate15-array"),
            thresholds=(None, 900.0, 850.0), scale="smoke")
        points = expand(spec)
        order = sweep_mod._scheduled_order(points)
        assert sorted(order) == list(range(len(points)))
        scheduled = [points[i] for i in order]
        # The first len(groups) scheduled points warm distinct prefixes.
        assert {p.backend.backend_id for p in scheduled[:2]} == {
            "nangate15-booth", "nangate15-array"}
        # Within a group the original (threshold) order is preserved.
        booth = [p.threshold for p in scheduled
                 if p.backend.backend_id == "nangate15-booth"]
        assert booth == [None, 900.0, 850.0]


def _echo_runner(point, context):
    """Synthetic per-point runner: no pipeline work, tiny payload."""
    if point.threshold == 666.0:
        return {"payload": None, "metrics": {},
                "skipped": "synthetic skip"}
    value = (point.threshold or 0.0) + point.seed
    return {"payload": {"value": value},
            "metrics": {"accuracy": value, "n_weights": 1,
                        "power_opt_mw": value},
            "skipped": None}


@pytest.fixture()
def echo_experiment(monkeypatch):
    monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8", _echo_runner)
    return "fig8"


class TestEngine:
    def test_rows_in_expansion_order_and_point_caching(
            self, echo_experiment):
        spec = make_sweep_spec(
            echo_experiment,
            backends=("nangate15-booth", "nangate15-array"),
            thresholds=(700.0, 800.0), seeds=(0, 1), scale="smoke")
        store = ArtifactStore()
        first = run_sweep(spec, jobs=1, store=store)
        assert [(r.backend_id, r.seed, r.threshold)
                for r in first.rows] == [
            (p.backend.backend_id, p.seed, p.threshold)
            for p in expand(spec)]
        assert first.cache_misses == len(first.rows)
        assert first.shared_prefixes == 4  # backend x seed groups

        second = run_sweep(spec, jobs=1, store=store)
        assert second.cache_misses == 0
        assert second.cache_hits == len(second.rows)
        assert [r.metrics for r in second.rows] == [r.metrics
                                                    for r in first.rows]

    def test_skipped_points_are_reported_not_dropped(
            self, echo_experiment):
        spec = make_sweep_spec(echo_experiment,
                               thresholds=(700.0, 666.0), scale="smoke")
        result = run_sweep(spec, jobs=1, store=ArtifactStore())
        assert result.rows[1].skipped == "synthetic skip"
        assert result.rows[1].payload is None
        rendered = sweep_mod.format_sweep(result)
        assert "synthetic skip" in rendered
        tidy = result.tidy()
        assert tidy[1]["skipped"] == "synthetic skip"

    def test_in_process_store_rejected_with_workers(
            self, echo_experiment):
        spec = make_sweep_spec(echo_experiment, thresholds=(700.0,
                                                            800.0),
                               scale="smoke")
        with pytest.raises(ValueError, match="cache_dir"):
            run_sweep(spec, jobs=2, store=ArtifactStore())

    def test_unknown_experiment_rejected_at_run_time(self):
        bogus = SweepSpec(experiment="fig12")
        with pytest.raises(ValueError, match="unknown sweep experiment"):
            run_sweep(bogus)

    def test_csv_export(self, echo_experiment, tmp_path):
        spec = make_sweep_spec(echo_experiment,
                               thresholds=(700.0, 666.0), scale="smoke")
        result = run_sweep(spec, jobs=1, store=ArtifactStore())
        path = tmp_path / "tidy.csv"
        result.write_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 points
        assert lines[0].startswith(
            "experiment,backend,network,threshold,accel,seed,scale,"
            "skipped")

    def test_rows_flag_cache_service(self, echo_experiment):
        spec = make_sweep_spec(echo_experiment, thresholds=(700.0,),
                               scale="smoke")
        store = ArtifactStore()
        first = run_sweep(spec, jobs=1, store=store)
        assert [row.cached for row in first.rows] == [False]
        second = run_sweep(spec, jobs=1, store=store)
        assert [row.cached for row in second.rows] == [True]
        assert second.tidy()[0]["cached"] == 1

    def test_progress_report_streams_and_summarizes(
            self, echo_experiment, capsys):
        spec = make_sweep_spec(echo_experiment,
                               thresholds=(700.0, 666.0), scale="smoke")
        store = ArtifactStore()
        result = run_sweep(spec, jobs=1, store=store, progress=True)
        err = capsys.readouterr().err
        assert "-> 2 grid point(s), 0 already in the artifact store" \
            in err
        assert "[1/2]" in err and "[2/2]" in err
        assert "1 remaining" in err and "0 remaining" in err
        rendered = sweep_mod.format_sweep(result)
        assert ("progress: 2 point(s) done - 2 computed, "
                "0 served from cache, 0 remaining (1 skipped)"
                ) in rendered

        rerun = run_sweep(spec, jobs=1, store=store, progress=True)
        err = capsys.readouterr().err
        assert "2 already in the artifact store" in err
        assert "- cached (1 from cache, 1 remaining)" in err
        assert "- cached, skipped (2 from cache, 0 remaining)" in err
        assert ("progress: 2 point(s) done - 0 computed, "
                "2 served from cache, 0 remaining"
                ) in sweep_mod.format_sweep(rerun)

    def test_progress_report_across_workers(self, echo_experiment,
                                            tmp_path, capsys):
        spec = make_sweep_spec(
            echo_experiment, thresholds=(700.0, 800.0), scale="smoke")
        run_sweep(spec, jobs=2, cache_dir=tmp_path / "cache",
                  progress=True)
        err = capsys.readouterr().err
        assert "2 workers" in err
        assert "[1/2]" in err and "[2/2]" in err
        run_sweep(spec, jobs=2, cache_dir=tmp_path / "cache",
                  progress=True)
        err = capsys.readouterr().err
        assert "2 already in the artifact store" in err
        assert "(2 from cache, 0 remaining)" in err

    def test_failing_point_is_named(self, echo_experiment, monkeypatch):
        def explode(point, context):
            raise RuntimeError("synthetic point failure")

        monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8", explode)
        spec = make_sweep_spec("fig8", thresholds=(700.0,),
                               scale="smoke")
        with pytest.raises(ParallelTaskError) as excinfo:
            run_sweep(spec, jobs=1, store=ArtifactStore())
        message = str(excinfo.value)
        assert "fig8 point" in message
        assert "backend=nangate15-booth" in message
        assert "threshold=700" in message
        assert isinstance(excinfo.value.__cause__, RuntimeError)


@dataclass(frozen=True)
class _NamedTask:
    name: str

    def describe(self) -> str:
        return f"named task {self.name}"


def _boom(task: _NamedTask) -> str:
    if task.name == "bad":
        raise ValueError("kaboom")
    return task.name


def _ok(task: _NamedTask) -> str:
    return task.name


class TestParallelTaskErrors:
    def test_inline_failure_names_the_task(self):
        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(_boom, [_NamedTask("ok"), _NamedTask("bad")],
                         jobs=1)
        assert "named task bad" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_pool_failure_names_the_task_with_traceback(self):
        tasks = [_NamedTask("ok"), _NamedTask("bad"), _NamedTask("ok2")]
        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(_boom, tasks, jobs=2)
        message = str(excinfo.value)
        assert "named task bad" in message
        assert "worker traceback" in message
        assert "kaboom" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_success_preserves_order(self):
        tasks = [_NamedTask(f"t{i}") for i in range(5)]
        assert parallel_map(lambda t: t.name, tasks, jobs=1) == [
            f"t{i}" for i in range(5)]

    def test_describe_falls_back_to_repr(self):
        from repro.experiments.parallel import describe_task

        assert "_NamedTask" not in describe_task(_NamedTask("x"))
        assert describe_task(("a", 1)) == "('a', 1)"

    def test_on_result_streams_every_completion_inline(self):
        seen = []
        tasks = [_NamedTask(f"t{i}") for i in range(4)]
        parallel_map(_ok, tasks, jobs=1,
                     on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(i, f"t{i}") for i in range(4)]

    def test_on_result_streams_every_completion_in_pool(self):
        seen = []
        tasks = [_NamedTask(f"t{i}") for i in range(4)]
        results = parallel_map(_ok, tasks, jobs=2,
                               on_result=lambda i, r:
                               seen.append((i, r)))
        # Completion order is arbitrary; coverage and payloads are not.
        assert sorted(seen) == [(i, f"t{i}") for i in range(4)]
        assert results == [f"t{i}" for i in range(4)]

    def test_on_result_skips_failures(self):
        seen = []
        tasks = [_NamedTask("ok"), _NamedTask("bad")]
        with pytest.raises(ParallelTaskError):
            parallel_map(_boom, tasks, jobs=2,
                         on_result=lambda i, r: seen.append(i))
        assert seen == [0]


class TestSeriesLabels:
    """Overlay series must never collide across networks (regression:
    the label used to omit the network entirely)."""

    def _row(self, backend, network, threshold, seed=0, value=0.5):
        return sweep_mod.SweepRow(
            experiment="fig8", backend_id=backend, network=network,
            threshold=threshold, seed=seed, scale="smoke",
            payload=None, metrics={"accuracy": value}, skipped=None)

    def test_multi_network_rows_get_distinct_series(self):
        rows = [
            self._row("nangate15-booth", "LeNet-5-CIFAR-10", 900.0,
                      value=0.25),
            self._row("nangate15-booth", "ResNet-20-CIFAR-10", 900.0,
                      value=0.75),
        ]
        lines = sweep_mod._metric_matrix(rows, "accuracy", "chart:",
                                         ".1f", 100.0)
        series_lines = lines[2:]
        assert len(series_lines) == 2  # one series per network
        assert any("LeNet-5-CIFAR-10" in line for line in series_lines)
        assert any("ResNet-20-CIFAR-10" in line
                   for line in series_lines)
        # Both values survive: nothing was collapsed into one series.
        assert any("25.0" in line for line in series_lines)
        assert any("75.0" in line for line in series_lines)

    def test_single_network_label_unchanged(self):
        rows = [self._row("nangate15-booth", "LeNet-5-CIFAR-10", 900.0),
                self._row("nangate15-array", "LeNet-5-CIFAR-10", 900.0)]
        lines = sweep_mod._metric_matrix(rows, "accuracy", "chart:",
                                         ".1f", 100.0)
        assert any(line.startswith("nangate15-booth ")
                   for line in lines)
        assert not any("LeNet" in line for line in lines[1:])

    def test_seed_and_network_compose_in_label(self):
        row = self._row("b", "netA", 900.0, seed=3)
        assert sweep_mod._series_label(row, True, True) == "b netA s3"
        assert sweep_mod._series_label(row, False, True) == "b netA"
        assert sweep_mod._series_label(row, True, False) == "b s3"
        assert sweep_mod._series_label(row, False, False) == "b"


class TestAggregatedResults:
    def test_aggregate_and_tidy_aggregated_columns(
            self, echo_experiment):
        spec = make_sweep_spec(echo_experiment,
                               thresholds=(700.0, 800.0),
                               seeds=(0, 1), scale="smoke")
        result = run_sweep(spec, jobs=1, store=ArtifactStore())
        aggregates = result.aggregate()
        assert [(a.threshold, a.n_seeds) for a in aggregates] == [
            (700.0, 2), (800.0, 2)]
        # Echo runner: accuracy = threshold + seed, so mean/std are
        # exactly computable.
        assert aggregates[0].metrics_mean["accuracy"] == 700.5
        assert aggregates[0].metrics_std["accuracy"] == 0.5
        assert aggregates[0].seeds == (0, 1)
        tidy = result.tidy_aggregated()
        assert tidy[0]["n_seeds"] == 2
        assert tidy[0]["seeds"] == "0;1"
        assert tidy[0]["accuracy_mean"] == 700.5
        assert tidy[0]["accuracy_std"] == 0.5
        assert tidy[0]["accuracy_min"] == 700.0
        assert tidy[0]["accuracy_max"] == 701.0

    def test_single_seed_aggregate_is_bit_identical(
            self, echo_experiment):
        spec = make_sweep_spec(echo_experiment, thresholds=(700.0,),
                               scale="smoke")
        result = run_sweep(spec, jobs=1, store=ArtifactStore())
        (agg,) = result.aggregate()
        assert agg.metrics_mean == dict(result.rows[0].metrics)
        assert agg.metrics_std == {name: 0.0
                                   for name in result.rows[0].metrics}

    def test_multi_seed_format_has_mean_std_table_and_error_bands(
            self, echo_experiment):
        spec = make_sweep_spec(echo_experiment,
                               thresholds=(700.0, 800.0),
                               seeds=(0, 1), scale="smoke")
        result = run_sweep(spec, jobs=1, store=ArtifactStore())
        rendered = sweep_mod.format_sweep(result)
        assert "aggregated over 2 seeds (mean±std):" in rendered
        assert "700.5±0.5" in rendered  # accuracy cell, mean±std
        assert "(mean±std over seeds) by backend x threshold:" \
            in rendered

    def test_single_seed_format_unchanged(self, echo_experiment):
        spec = make_sweep_spec(echo_experiment,
                               thresholds=(700.0, 800.0),
                               scale="smoke")
        result = run_sweep(spec, jobs=1, store=ArtifactStore())
        rendered = sweep_mod.format_sweep(result)
        assert "±" not in rendered
        assert "aggregated over" not in rendered

    def test_aggregated_csv_export(self, echo_experiment, tmp_path):
        spec = make_sweep_spec(echo_experiment,
                               thresholds=(700.0, 666.0),
                               seeds=(0, 1), scale="smoke")
        result = run_sweep(spec, jobs=1, store=ArtifactStore())
        path = tmp_path / "agg.csv"
        result.write_csv(path, aggregated=True)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 threshold groups
        header = lines[0].split(",")
        for column in ("n_seeds", "accuracy_mean", "accuracy_std",
                       "accuracy_min", "accuracy_max"):
            assert column in header
        n_seeds_at = header.index("n_seeds")
        assert lines[1].split(",")[n_seeds_at] == "2"
        # The fully skipped threshold group keeps its reason.
        assert "synthetic skip" in lines[2]


class TestFigureAdaptersMultiSeed:
    """fig8/fig9 panels are one point per threshold: a multi-seed sweep
    result must be filtered to a single seed, not interleaved."""

    def _fig8_result(self):
        spec = make_sweep_spec("fig8", thresholds=(None, 900.0),
                               seeds=(0, 1), scale="smoke")
        rows = [sweep_mod.SweepRow(
            experiment="fig8", backend_id=p.backend.backend_id,
            network=p.spec.label, threshold=p.threshold, seed=p.seed,
            scale=p.scale,
            payload={"threshold_uw": p.threshold, "n_weights": 10,
                     "accuracy": 0.5 + p.seed, "power_opt": None},
            metrics={"accuracy": 0.5 + p.seed}, skipped=None)
            for p in expand(spec)]
        return sweep_mod.SweepResult(sweep=spec, rows=rows)

    def test_fig8_panels_keep_one_point_per_threshold(self):
        from repro.experiments import fig8

        result = fig8.result_from_sweep(self._fig8_result())
        (series,) = result.points.values()
        assert [p.threshold_uw for p in series] == [None, 900.0]
        assert all(p.accuracy == 0.5 for p in series)  # first seed

    def test_fig8_panels_honor_explicit_seed(self):
        from repro.experiments import fig8

        result = fig8.result_from_sweep(self._fig8_result(), seed=1)
        (series,) = result.points.values()
        assert [p.threshold_uw for p in series] == [None, 900.0]
        assert all(p.accuracy == 1.5 for p in series)


class _SpecCapture:
    """Stands in for run_sweep in CLI tests: records the spec, returns
    an empty-but-renderable result."""

    def __init__(self):
        self.sweep = None

    def __call__(self, sweep, **kwargs):
        self.sweep = sweep
        points = expand(sweep)
        rows = [sweep_mod.SweepRow(
            experiment=p.experiment, backend_id=p.backend.backend_id,
            network=p.spec.label, threshold=p.threshold, seed=p.seed,
            scale=p.scale, payload=None,
            metrics={"accuracy": 0.5, "n_weights": 1,
                     "power_opt_mw": 1.0},
            skipped=None) for p in points]
        return sweep_mod.SweepResult(sweep=sweep, rows=rows)


@pytest.fixture()
def capture_cli_sweep(monkeypatch):
    capture = _SpecCapture()
    monkeypatch.setattr(sweep_mod, "run_sweep", capture)
    return capture


class TestCliSpecOverrides:
    """--spec merging must use `is not None`, never truthiness, so a
    legitimately falsy flag value (e.g. `--threshold none`) overrides
    the spec file (regression tests, one per overridable axis)."""

    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "experiment": "fig8",
            "backends": ["nangate15-array"],
            "networks": ["resnet20"],
            "thresholds": [900.0, 850.0],
            "seeds": [7],
            "scale": "ci",
        }))
        return str(path)

    def test_spec_alone_is_used_verbatim(self, capture_cli_sweep,
                                         spec_file, capsys):
        assert sweep_mod.cli_main(["--spec", spec_file]) == 0
        sweep = capture_cli_sweep.sweep
        assert sweep.experiment == "fig8"
        assert sweep.backends == ("nangate15-array",)
        assert [n.network for n in sweep.networks] == ["resnet20"]
        assert sweep.thresholds == (900.0, 850.0)
        assert sweep.seeds == (7,)
        assert sweep.scale == "ci"

    def test_threshold_none_overrides_spec(self, capture_cli_sweep,
                                           spec_file, capsys):
        """The falsy regression: one unrestricted point must win."""
        sweep_mod.cli_main(["--spec", spec_file,
                            "--threshold", "none"])
        assert capture_cli_sweep.sweep.thresholds == (None,)

    def test_experiment_flag_overrides_spec(self, capture_cli_sweep,
                                            spec_file, capsys):
        sweep_mod.cli_main(["--spec", spec_file,
                            "--experiment", "fig9",
                            "--threshold", "160"])
        assert capture_cli_sweep.sweep.experiment == "fig9"

    def test_backend_flag_overrides_spec(self, capture_cli_sweep,
                                         spec_file, capsys):
        sweep_mod.cli_main(["--spec", spec_file,
                            "--backend", "nangate15-booth"])
        assert capture_cli_sweep.sweep.backends == (
            "nangate15-booth",)

    def test_network_flag_overrides_spec(self, capture_cli_sweep,
                                         spec_file, capsys):
        sweep_mod.cli_main(["--spec", spec_file,
                            "--network", "lenet5"])
        assert [n.network for n in capture_cli_sweep.sweep.networks] \
            == ["lenet5"]

    def test_seed_zero_overrides_spec(self, capture_cli_sweep,
                                      spec_file, capsys):
        """Seed 0 is falsy-adjacent ([0] is truthy, 0 is not) — must
        override the spec file's seed axis."""
        sweep_mod.cli_main(["--spec", spec_file, "--seed", "0"])
        assert capture_cli_sweep.sweep.seeds == (0,)

    def test_scale_flag_overrides_spec(self, capture_cli_sweep,
                                       spec_file, capsys):
        sweep_mod.cli_main(["--spec", spec_file, "--scale", "smoke"])
        assert capture_cli_sweep.sweep.scale == "smoke"

    def test_unset_flags_keep_spec_values(self, capture_cli_sweep,
                                          spec_file, capsys):
        sweep_mod.cli_main(["--spec", spec_file, "--seed", "1",
                            "--seed", "2"])
        sweep = capture_cli_sweep.sweep
        assert sweep.seeds == (1, 2)
        assert sweep.thresholds == (900.0, 850.0)  # untouched axis
        assert sweep.backends == ("nangate15-array",)

    def test_aggregate_csv_flag(self, capture_cli_sweep, tmp_path,
                                capsys):
        out = tmp_path / "agg.csv"
        sweep_mod.cli_main(["--experiment", "fig8",
                            "--threshold", "900",
                            "--seed", "0", "--seed", "1",
                            "--scale", "smoke",
                            "--aggregate-csv", str(out)])
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 2  # header + one (backend, thr) group
        header = lines[0].split(",")
        assert "n_seeds" in header
        assert lines[1].split(",")[header.index("n_seeds")] == "2"
        assert f"aggregated table written to {out}" \
            in capsys.readouterr().out


@pytest.mark.slow
class TestSweepCacheAcceptance:
    """ISSUE acceptance: repeated sweep runs hit the cache everywhere."""

    def test_repeated_run_hits_cache_for_all_stages(
            self, smoke_cache_dir):
        spec = make_sweep_spec("fig8", thresholds=(None, 900.0),
                               scale="smoke")
        first = run_sweep(spec, jobs=1, cache_dir=smoke_cache_dir)
        assert first.shared_prefixes == 1
        second = run_sweep(spec, jobs=1, cache_dir=smoke_cache_dir)
        # Every stage and every finished point comes from the cache.
        assert second.cache_misses == 0
        assert second.cache_hits >= len(second.rows)
        for row_a, row_b in zip(first.rows, second.rows):
            assert row_a.metrics == row_b.metrics
