"""Hypothesis property tests across the substrate.

Deeper randomized invariants than the per-module unit tests: arithmetic
generators at arbitrary widths, tiling partitions, distribution algebra
and restriction semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import NetlistBuilder
from repro.netlist.adder import kogge_stone_adder, ripple_carry_adder
from repro.netlist.multiplier import booth_multiplier
from repro.power.transitions import TransitionDistribution
from repro.sim.logic import bus_inputs, evaluate, read_output_bus
from repro.systolic import SystolicConfig, schedule_matmul
from repro.nn.restrict import ActivationFilter


class TestAdderWidthsProperty:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 2 ** 31 - 1),
           st.sampled_from([ripple_carry_adder, kogge_stone_adder]))
    def test_modular_addition_any_width(self, width, seed, generator):
        builder = NetlistBuilder()
        a = builder.input_bus("a", width)
        b = builder.input_bus("b", width)
        builder.mark_output_bus("sum", generator(builder, a, b))
        netlist = builder.build()
        rng = np.random.default_rng(seed)
        half = 1 << (width - 1)
        a_vals = rng.integers(-half, half, 100)
        b_vals = rng.integers(-half, half, 100)
        feed = bus_inputs("a", a_vals, width)
        feed.update(bus_inputs("b", b_vals, width))
        got = read_output_bus(netlist, evaluate(netlist, feed), "sum",
                              width)
        expected = ((a_vals + b_vals + half) % (2 * half)) - half
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 2 ** 31 - 1))
    def test_adders_agree(self, width, seed):
        """Both adder topologies compute the identical function."""
        rng = np.random.default_rng(seed)
        half = 1 << (width - 1)
        a_vals = rng.integers(-half, half, 64)
        b_vals = rng.integers(-half, half, 64)
        results = []
        for generator in (ripple_carry_adder, kogge_stone_adder):
            builder = NetlistBuilder()
            a = builder.input_bus("a", width)
            b = builder.input_bus("b", width)
            builder.mark_output_bus("sum", generator(builder, a, b))
            netlist = builder.build()
            feed = bus_inputs("a", a_vals, width)
            feed.update(bus_inputs("b", b_vals, width))
            results.append(read_output_bus(
                netlist, evaluate(netlist, feed), "sum", width))
        np.testing.assert_array_equal(results[0], results[1])


class TestBoothWidthsProperty:
    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from([4, 6, 8]), st.integers(0, 2 ** 31 - 1))
    def test_booth_any_even_width(self, width, seed):
        builder = NetlistBuilder()
        act = builder.input_bus("act", width)
        weight = builder.input_bus("w", width)
        product = booth_multiplier(builder, act, weight,
                                   product_width=2 * width)
        builder.mark_output_bus("product", product)
        netlist = builder.build()
        rng = np.random.default_rng(seed)
        half = 1 << (width - 1)
        a_vals = rng.integers(-half, half, 200)
        w_vals = rng.integers(-half, half, 200)
        feed = bus_inputs("act", a_vals, width)
        feed.update(bus_inputs("w", w_vals, width))
        got = read_output_bus(netlist, evaluate(netlist, feed),
                              "product", 2 * width)
        np.testing.assert_array_equal(got, a_vals * w_vals)


class TestTilingProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 400), st.integers(1, 400), st.integers(1, 64),
           st.integers(2, 128), st.integers(2, 128))
    def test_tiles_partition_the_matrix(self, k, n, m, rows, cols):
        config = SystolicConfig(rows=rows, cols=cols)
        schedule = schedule_matmul(k, n, m, config)
        covered = np.zeros((k, n), dtype=int)
        for tile in schedule:
            assert 1 <= tile.rows_used <= rows
            assert 1 <= tile.cols_used <= cols
            covered[tile.row_start:tile.row_stop,
                    tile.col_start:tile.col_stop] += 1
        # exact partition: every weight sits in exactly one tile
        assert (covered == 1).all()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 300), st.integers(1, 300), st.integers(1, 64))
    def test_cycles_lower_bounded_by_streaming(self, k, n, m):
        config = SystolicConfig()
        schedule = schedule_matmul(k, n, m, config)
        assert schedule.total_cycles >= len(schedule) * m
        assert 0 < schedule.utilization <= 1.0


class TestDistributionProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 64), st.integers(0, 2 ** 31 - 1))
    def test_from_stream_mass_conservation(self, n_codes, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, n_codes, 500)
        dist = TransitionDistribution.from_stream(stream, n_codes)
        assert dist.matrix.sum() == pytest.approx(1.0)
        assert dist.marginal_from().sum() == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 64), st.integers(0, 2 ** 31 - 1))
    def test_restriction_is_projection(self, n_codes, seed):
        rng = np.random.default_rng(seed)
        dist = TransitionDistribution(rng.random((n_codes, n_codes)))
        allowed = rng.choice(n_codes, size=max(2, n_codes // 2),
                             replace=False)
        once = dist.restricted(allowed)
        twice = once.restricted(allowed)
        np.testing.assert_allclose(once.matrix, twice.matrix, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(8, 64))
    def test_diagonal_mass_increases_with_band(self, n_codes):
        dist = TransitionDistribution.diagonal(n_codes)
        masses = [dist.diagonal_mass(b) for b in (1, 2, 4, 8)]
        assert masses == sorted(masses)
        assert masses[-1] <= 1.0 + 1e-9


class TestActivationFilterProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-128, 127), min_size=1, max_size=40),
           st.integers(0, 2 ** 31 - 1))
    def test_filtered_codes_always_allowed(self, allowed, seed):
        allowed = sorted(set(allowed + [0]))
        act_filter = ActivationFilter(allowed)
        rng = np.random.default_rng(seed)
        codes = rng.integers(-128, 128, 300)
        filtered = act_filter(codes)
        assert np.isin(filtered, np.asarray(allowed)).all()

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-128, 127), min_size=2, max_size=40))
    def test_filter_preserves_order(self, allowed):
        """Projection onto a sorted set is monotone (non-decreasing)."""
        allowed = sorted(set(allowed + [0]))
        act_filter = ActivationFilter(allowed)
        codes = np.arange(-128, 128)
        filtered = act_filter(codes)
        assert (np.diff(filtered) >= 0).all()
