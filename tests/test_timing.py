"""Tests for timing profiles and delay-threshold selection."""

import numpy as np
import pytest

from repro.cells import default_library
from repro.netlist import build_mac_unit
from repro.timing import (
    DelaySelector,
    MacTimingModel,
    WeightDelayProfiler,
    WeightTimingTable,
)


@pytest.fixture(scope="module")
def mac():
    return build_mac_unit()


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def profiler(mac, lib):
    return WeightDelayProfiler(mac, lib)


@pytest.fixture(scope="module")
def sampled_transitions(profiler):
    act_from, act_to = profiler.all_transitions()
    rng = np.random.default_rng(0)
    chosen = rng.choice(act_from.size, 4000, replace=False)
    return act_from[chosen], act_to[chosen]


@pytest.fixture(scope="module")
def timing_table(profiler, sampled_transitions):
    return WeightTimingTable.characterize(
        profiler,
        weights=[-105, -64, -33, -2, 0, 2, 23, 64, 105, 127],
        transitions=sampled_transitions,
        floor_ps=90.0,
    )


class TestMacTimingModel:
    def test_psum_path_positive(self, mac, lib):
        model = MacTimingModel(mac, lib)
        assert model.psum_path_ps > 0

    def test_adder_bit_delays_positive(self, mac, lib):
        model = MacTimingModel(mac, lib)
        assert (model.adder_bit_delays > 0).all()

    def test_compose_floor_is_psum_path(self, mac, lib):
        model = MacTimingModel(mac, lib)
        quiet = np.zeros((mac.product_bits, 5))
        delays = model.compose(quiet)
        np.testing.assert_allclose(delays, model.psum_path_ps)

    def test_compose_adds_bit_delay(self, mac, lib):
        model = MacTimingModel(mac, lib)
        arrivals = np.zeros((mac.product_bits, 1))
        arrivals[3, 0] = 100.0
        delay = model.compose(arrivals)[0]
        assert delay == pytest.approx(100.0 + model.adder_bit_delays[3])


class TestWeightDelayProfiler:
    def test_zero_weight_is_fastest(self, profiler, sampled_transitions):
        zero = profiler.profile(0, sampled_transitions)
        heavy = profiler.profile(-105, sampled_transitions)
        assert zero.max_delay_ps < heavy.max_delay_ps
        # Weight 0 never switches the product: only the psum path remains.
        assert zero.max_delay_ps == pytest.approx(
            profiler.model.psum_path_ps)

    def test_fig3_anchor_ordering(self, profiler, sampled_transitions):
        """Fig. 3: weight 64 is much faster than weight -105."""
        fast = profiler.profile(64, sampled_transitions)
        slow = profiler.profile(-105, sampled_transitions)
        assert fast.max_delay_ps < slow.max_delay_ps

    def test_profile_histogram(self, profiler, sampled_transitions):
        profile = profiler.profile(-105, sampled_transitions)
        edges, counts = profile.histogram(bin_width_ps=10.0)
        assert counts.sum() == profile.delays_ps.size
        assert len(edges) == len(counts) + 1

    def test_all_transitions_enumeration(self, profiler):
        act_from, act_to = profiler.all_transitions()
        assert act_from.size == 1 << 16
        assert act_from.min() == -128 and act_from.max() == 127

    def test_misaligned_transitions_rejected(self, profiler):
        with pytest.raises(ValueError):
            profiler.delays(1, np.array([1, 2]), np.array([1]))


class TestWeightTimingTable:
    def test_calibrated_to_180ps(self, timing_table):
        assert timing_table.global_max_delay_ps == pytest.approx(180.0)

    def test_max_delay_lookup(self, timing_table):
        assert timing_table.max_delay_of(0) < timing_table.max_delay_of(
            -105)
        with pytest.raises(KeyError):
            timing_table.max_delay_of(42)

    def test_combos_above_floor_only(self, timing_table):
        assert (timing_table.combo_delay_ps > timing_table.floor_ps).all()

    def test_combos_for_subset(self, timing_table):
        cw, cf, ct, cd = timing_table.combos_for([0, -105])
        assert set(np.unique(cw)) <= {0, -105}

    def test_roundtrip_save_load(self, timing_table, tmp_path):
        path = tmp_path / "timing.npz"
        timing_table.save(path)
        loaded = WeightTimingTable.load(path)
        np.testing.assert_array_equal(loaded.weights, timing_table.weights)
        np.testing.assert_allclose(loaded.max_delay_ps,
                                   timing_table.max_delay_ps)
        assert loaded.time_scale == pytest.approx(timing_table.time_scale)


class TestDelaySelector:
    def test_selection_meets_threshold(self, timing_table):
        selector = DelaySelector(timing_table, n_restarts=5)
        result = selector.select(150.0)
        assert result.max_delay_ps <= 150.0
        assert result.n_weights >= 1
        assert 0 in result.weights
        assert 0 in result.activations

    def test_tighter_threshold_removes_more(self, timing_table):
        selector = DelaySelector(timing_table, n_restarts=5)
        loose = selector.select(170.0)
        tight = selector.select(130.0)
        assert (tight.n_weights + tight.n_activations
                <= loose.n_weights + loose.n_activations)

    def test_threshold_at_180_keeps_everything(self, timing_table):
        selector = DelaySelector(timing_table, n_restarts=2)
        result = selector.select(180.1)
        assert result.n_weights == timing_table.weights.size
        assert result.n_activations == 256

    def test_threshold_below_floor_rejected(self, timing_table):
        selector = DelaySelector(timing_table)
        with pytest.raises(ValueError, match="floor"):
            selector.select(timing_table.floor_ps - 1.0)

    def test_candidate_weights_restrict_search(self, timing_table):
        selector = DelaySelector(timing_table, n_restarts=3)
        result = selector.select(150.0, candidate_weights=[0, 2, -2])
        assert set(result.weights.tolist()) <= {0, 2, -2}

    def test_removed_plus_surviving_partition(self, timing_table):
        selector = DelaySelector(timing_table, n_restarts=3)
        result = selector.select(140.0)
        weights = set(result.weights.tolist())
        removed = set(result.removed_weights.tolist())
        assert weights.isdisjoint(removed)
        assert weights | removed == set(timing_table.weights.tolist())

    def test_restart_count_validated(self, timing_table):
        with pytest.raises(ValueError):
            DelaySelector(timing_table, n_restarts=0)

    def test_deterministic_given_seed(self, timing_table):
        selector = DelaySelector(timing_table, n_restarts=3)
        a = selector.select(145.0, seed=11)
        b = selector.select(145.0, seed=11)
        np.testing.assert_array_equal(a.weights, b.weights)
        np.testing.assert_array_equal(a.activations, b.activations)


class TestShardedTimingCharacterization:
    """Mirror of the sharded power characterization guarantees."""

    WEIGHTS = [-105, -33, 0, 64, 127]

    def test_seed_sequence_keyed_on_value_not_order(self):
        from repro.timing import timing_seed_sequence

        a = timing_seed_sequence(7, -105).generate_state(4)
        b = timing_seed_sequence(7, -105).generate_state(4)
        c = timing_seed_sequence(7, 64).generate_state(4)
        d = timing_seed_sequence(8, -105).generate_state(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_stream_domain_separated_from_power(self):
        from repro.power.characterization import weight_seed_sequence
        from repro.timing import timing_seed_sequence

        timing = timing_seed_sequence(7, -105).generate_state(4)
        power = weight_seed_sequence(7, -105).generate_state(4)
        assert not np.array_equal(timing, power)

    def _characterize(self, profiler, weights, jobs,
                      calibrate_to_ps=180.0):
        return WeightTimingTable.characterize(
            profiler, weights=weights, n_transitions=120, seed=5,
            floor_ps=90.0, calibrate_to_ps=calibrate_to_ps, jobs=jobs)

    @staticmethod
    def _assert_tables_equal(a, b):
        np.testing.assert_array_equal(a.weights, b.weights)
        np.testing.assert_array_equal(a.max_delay_ps, b.max_delay_ps)
        np.testing.assert_array_equal(a.combo_weight, b.combo_weight)
        np.testing.assert_array_equal(a.combo_act_from, b.combo_act_from)
        np.testing.assert_array_equal(a.combo_act_to, b.combo_act_to)
        np.testing.assert_array_equal(a.combo_delay_ps, b.combo_delay_ps)
        assert a.time_scale == b.time_scale
        assert a.psum_path_ps == b.psum_path_ps

    def test_sharded_bitwise_equal_to_serial(self, profiler):
        serial = self._characterize(profiler, self.WEIGHTS, jobs=1)
        sharded = self._characterize(profiler, self.WEIGHTS, jobs=3)
        self._assert_tables_equal(serial, sharded)

    def test_independent_of_weight_order_and_chunking(self, profiler):
        forward = self._characterize(profiler, self.WEIGHTS, jobs=2)
        backward = self._characterize(profiler,
                                      list(reversed(self.WEIGHTS)),
                                      jobs=4)
        self._assert_tables_equal(forward, backward)

    def test_result_independent_of_weight_subset(self, profiler):
        full = self._characterize(profiler, self.WEIGHTS, jobs=1,
                                  calibrate_to_ps=None)
        solo = self._characterize(profiler, [64], jobs=1,
                                  calibrate_to_ps=None)
        assert full.max_delay_of(64) == solo.max_delay_of(64)
        full_combos = full.combos_for([64])
        solo_combos = solo.combos_for([64])
        for a, b in zip(full_combos, solo_combos):
            np.testing.assert_array_equal(a, b)

    def test_explicit_transitions_shared_and_shardable(
            self, profiler, sampled_transitions):
        serial = WeightTimingTable.characterize(
            profiler, weights=self.WEIGHTS,
            transitions=sampled_transitions, floor_ps=90.0)
        sharded = WeightTimingTable.characterize(
            profiler, weights=self.WEIGHTS,
            transitions=sampled_transitions, floor_ps=90.0, jobs=2)
        self._assert_tables_equal(serial, sharded)

    def test_char_jobs_absent_from_context_timing_key(self):
        from repro.experiments.config import NETWORK_SPECS
        from repro.experiments.runner import ExperimentContext

        serial = ExperimentContext(NETWORK_SPECS[0], "smoke",
                                   char_jobs=1)
        sharded = ExperimentContext(NETWORK_SPECS[0], "smoke",
                                    char_jobs=8)
        candidates = [-2, 0, 2, 64]
        assert serial.timing_table_key(candidates) == \
            sharded.timing_table_key(reversed(candidates))
