"""Accelerator-level evaluation as a first-class sweep axis.

Covers the :class:`~repro.systolic.spec.AcceleratorSpec` design-point
record, the vectorized array power model (bincount vs per-tile loop vs
the original reference oracle), the cache-key isolation contract —
array geometry invalidates only the ``accel_*`` stages, never the
training/characterization prefix — and the ``accel`` sweep experiment
end to end at smoke scale.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stages import shared_stage_keys
from repro.experiments.config import NETWORK_SPECS
from repro.experiments.sweep import (
    expand,
    make_sweep_spec,
    point_cache_key,
    point_config,
    run_sweep,
    shared_prefix_count,
    sweep_spec_from_mapping,
)
from repro.hw import get_backend
from repro.power.characterization import WeightPowerTable
from repro.systolic import (
    OPTIMIZED_HW,
    STANDARD_HW,
    AcceleratorSpec,
    ArrayPowerModel,
    MacPowerParams,
    SystolicConfig,
    accel_spec_from_mapping,
    normalize_variant,
    parse_array_shape,
    schedule_matmul,
    schedule_value_counts,
)

#: Every stage of the training/characterization prefix plus the
#: selection tail — nothing here may depend on the accel spec.
NON_ACCEL_STAGES = (
    "dataset", "baseline", "pruned", "operand_stats", "power_table",
    "power_selection", "timing_table", "delay_selection",
    "voltage_scaling", "power_measurement", "report",
)
ACCEL_STAGES = ("accel_schedule", "accel_eval")


# ----------------------------------------------------------------------
# AcceleratorSpec: parsing, resolution, keying
# ----------------------------------------------------------------------
class TestAcceleratorSpec:
    def test_shape_spellings(self):
        assert parse_array_shape("32x32") == (32, 32)
        assert parse_array_shape("32") == (32, 32)
        assert parse_array_shape(16) == (16, 16)
        assert parse_array_shape((8, 24)) == (8, 24)
        assert parse_array_shape([8, 24]) == (8, 24)
        for default in (None, "hw", "default", "none", ""):
            assert parse_array_shape(default) is None

    def test_bad_shapes_rejected(self):
        for bad in ("axb", "1x2x3", (1, 2, 3)):
            with pytest.raises(ValueError):
                parse_array_shape(bad)

    def test_variant_normalization(self):
        assert normalize_variant("Standard HW") == "standard"
        assert normalize_variant("optimized") == "optimized"
        assert normalize_variant(OPTIMIZED_HW) == "optimized"
        assert normalize_variant(STANDARD_HW) == "standard"
        with pytest.raises(ValueError):
            normalize_variant("turbo")

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(rows=0)
        with pytest.raises(ValueError):
            AcceleratorSpec(variant="turbo")
        with pytest.raises(ValueError):
            AcceleratorSpec(stream_batch=0)

    def test_resolution_fills_geometry_from_backend(self):
        base = SystolicConfig(rows=64, cols=48)
        spec = AcceleratorSpec(variant="optimized").resolved(base)
        assert (spec.rows, spec.cols) == (64, 48)
        # Explicitly asking for the backend geometry aliases the
        # default — same resolved spec, same key payload.
        explicit = AcceleratorSpec(rows=64, cols=48,
                                   variant="optimized").resolved(base)
        assert spec == explicit
        assert spec.key_payload() == explicit.key_payload()

    def test_resolve_config_keeps_datapath_and_clock(self):
        base = SystolicConfig(rows=64, cols=64)
        config = AcceleratorSpec(rows=16, cols=8).resolve_config(base)
        assert (config.rows, config.cols) == (16, 8)
        assert config.act_bits == base.act_bits
        assert config.weight_bits == base.weight_bits
        assert config.psum_bits == base.psum_bits
        assert config.clock_period_ps == base.clock_period_ps

    def test_schedule_key_excludes_variant(self):
        std = AcceleratorSpec(rows=16, cols=16, variant="standard")
        opt = AcceleratorSpec(rows=16, cols=16, variant="optimized")
        assert std.geometry_payload() == opt.geometry_payload()
        assert std.key_payload() != opt.key_payload()

    def test_describe(self):
        assert AcceleratorSpec(rows=64, cols=64,
                               variant="optimized").describe() \
            == "64x64/optimized"
        assert AcceleratorSpec(variant="standard").describe(
            base=SystolicConfig(rows=32, cols=32)) == "32x32/standard"
        assert AcceleratorSpec(rows=8, cols=8, stream_batch=4
                               ).describe() == "8x8/standard/b4"

    def test_from_mapping(self):
        spec = accel_spec_from_mapping(
            {"shape": "16x32", "variant": "Optimized HW",
             "stream_batch": 2})
        assert spec == AcceleratorSpec(rows=16, cols=32,
                                       variant="optimized",
                                       stream_batch=2)
        with pytest.raises(ValueError):
            accel_spec_from_mapping({"shape": "16x16", "rows": 16})
        with pytest.raises(ValueError):
            accel_spec_from_mapping({"geometry": "16x16"})


# ----------------------------------------------------------------------
# array power model: vectorization contract + gating properties
# ----------------------------------------------------------------------
def _table() -> WeightPowerTable:
    weights = np.arange(-127, 128)
    dynamic = 250.0 + 3.0 * np.abs(weights)
    return WeightPowerTable(weights=weights, power_uw=dynamic + 10.0,
                            dynamic_uw=dynamic, leakage_uw=10.0,
                            clock_period_ps=450.0)


def _model(config: SystolicConfig) -> ArrayPowerModel:
    return ArrayPowerModel(config, MacPowerParams(table=_table()))


_DIMS = st.tuples(st.integers(1, 90), st.integers(1, 70),
                  st.integers(1, 48))
_GRID = st.sampled_from((8, 16, 32))


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(dims=_DIMS, size=_GRID)
    def test_tiles_partition_the_weight_grid_exactly_once(self, dims,
                                                          size):
        k, n, m = dims
        schedule = schedule_matmul(k, n, m,
                                   SystolicConfig(rows=size, cols=size))
        coverage = np.zeros((k, n), dtype=np.int64)
        for tile in schedule:
            coverage[tile.row_start:tile.row_stop,
                     tile.col_start:tile.col_stop] += 1
        assert np.array_equal(coverage, np.ones((k, n), dtype=np.int64))

    @settings(max_examples=40, deadline=None)
    @given(dims=_DIMS, size=_GRID)
    def test_total_macs_conservation(self, dims, size):
        k, n, m = dims
        schedule = schedule_matmul(k, n, m,
                                   SystolicConfig(rows=size, cols=size))
        assert schedule.total_macs == k * n * m


class TestVectorizedLayerPower:
    @settings(max_examples=25, deadline=None)
    @given(dims=_DIMS, size=_GRID, seed=st.integers(0, 2 ** 31 - 1),
           sparsity=st.floats(0.0, 0.95))
    def test_counts_bit_equal_and_power_bit_identical(self, dims, size,
                                                      seed, sparsity):
        k, n, m = dims
        config = SystolicConfig(rows=size, cols=size)
        schedule = schedule_matmul(k, n, m, config)
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, (k, n))
        weights[rng.random(weights.shape) < sparsity] = 0
        fast = schedule_value_counts(schedule, weights,
                                     vectorized=True)
        slow = schedule_value_counts(schedule, weights,
                                     vectorized=False)
        assert np.array_equal(fast.weight_counts, slow.weight_counts)
        assert fast.tile_pe_cycles == slow.tile_pe_cycles
        assert fast.idle_row_pe_cycles == slow.idle_row_pe_cycles
        assert fast.unused_col_pe_cycles == slow.unused_col_pe_cycles
        assert fast.total_cycles == slow.total_cycles
        model = _model(config)
        for variant in (STANDARD_HW, OPTIMIZED_HW):
            assert model.layer_power(schedule, weights, variant) \
                == model.layer_power(schedule, weights, variant,
                                     vectorized=False)

    @settings(max_examples=25, deadline=None)
    @given(dims=_DIMS, size=_GRID, seed=st.integers(0, 2 ** 31 - 1))
    def test_agrees_with_reference_oracle(self, dims, size, seed):
        k, n, m = dims
        config = SystolicConfig(rows=size, cols=size)
        schedule = schedule_matmul(k, n, m, config)
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, (k, n))
        model = _model(config)
        for variant in (STANDARD_HW, OPTIMIZED_HW):
            got = model.layer_power(schedule, weights, variant)
            want = model.layer_power_reference(schedule, weights,
                                               variant)
            assert np.isclose(got.dynamic_uw, want.dynamic_uw,
                              rtol=1e-9)
            assert np.isclose(got.leakage_uw, want.leakage_uw,
                              rtol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(dims=_DIMS, size=_GRID, seed=st.integers(0, 2 ** 31 - 1),
           sparsity=st.floats(0.0, 0.95))
    def test_optimized_never_exceeds_standard(self, dims, size, seed,
                                              sparsity):
        k, n, m = dims
        config = SystolicConfig(rows=size, cols=size)
        schedule = schedule_matmul(k, n, m, config)
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, (k, n))
        weights[rng.random(weights.shape) < sparsity] = 0
        model = _model(config)
        std = model.layer_power(schedule, weights, STANDARD_HW)
        opt = model.layer_power(schedule, weights, OPTIMIZED_HW)
        assert opt.total_uw <= std.total_uw
        assert opt.dynamic_uw <= std.dynamic_uw
        assert opt.leakage_uw <= std.leakage_uw

    @settings(max_examples=20, deadline=None)
    @given(k=st.integers(1, 60), m=st.integers(1, 32),
           seed=st.integers(0, 2 ** 31 - 1))
    def test_power_gated_leakage_strictly_decreases_with_unused_columns(
            self, k, m, seed):
        """Each extra unused column gates one column of PEs off the
        supply, so Optimized-HW leakage is strictly monotone in the
        number of used columns (one tile, fixed geometry)."""
        config = SystolicConfig(rows=64, cols=32)
        model = _model(config)
        rng = np.random.default_rng(seed)
        leakages = []
        for n in (32, 24, 16, 8):  # fewer used -> more gated columns
            schedule = schedule_matmul(k, n, m, config)
            weights = rng.integers(1, 128, (k, n))  # no zero gating
            leakages.append(model.layer_power(schedule, weights,
                                              OPTIMIZED_HW).leakage_uw)
        assert all(a > b for a, b in zip(leakages, leakages[1:]))
        # Standard HW never gates: leakage is geometry-constant.
        std = {model.layer_power(schedule_matmul(k, n, m, config),
                                 rng.integers(1, 128, (k, n)),
                                 STANDARD_HW).leakage_uw
               for n in (32, 16)}
        assert len(std) == 1


# ----------------------------------------------------------------------
# cache-key isolation: geometry never touches the prefix
# ----------------------------------------------------------------------
class TestAccelStageKeys:
    def _keys(self, accel):
        spec = NETWORK_SPECS[0]
        point = expand(make_sweep_spec(
            "accel", networks=(spec,), scale="smoke",
            array_shapes=(None,), hw_variants=("standard",)))[0]
        config = point_config(point)
        if accel is not None:
            from dataclasses import replace

            base = get_backend(config.backend).build_systolic_config()
            config = replace(config, accel=accel.resolved(base))
        return shared_stage_keys(config,
                                 NON_ACCEL_STAGES + ACCEL_STAGES)

    def test_geometry_invalidates_only_accel_stages(self):
        default = self._keys(None)
        small = self._keys(AcceleratorSpec(rows=16, cols=16))
        for name in NON_ACCEL_STAGES:
            assert default[name] == small[name], name
        for name in ACCEL_STAGES:
            assert default[name] != small[name], name

    def test_variant_invalidates_only_accel_eval(self):
        std = self._keys(AcceleratorSpec(rows=16, cols=16,
                                         variant="standard"))
        opt = self._keys(AcceleratorSpec(rows=16, cols=16,
                                         variant="optimized"))
        assert std["accel_schedule"] == opt["accel_schedule"]
        assert std["accel_eval"] != opt["accel_eval"]
        for name in NON_ACCEL_STAGES:
            assert std[name] == opt[name], name

    def test_default_geometry_aliases_explicit_backend_shape(self):
        base = get_backend("nangate15-booth").build_systolic_config()
        default = self._keys(None)
        explicit = self._keys(AcceleratorSpec(rows=base.rows,
                                              cols=base.cols))
        assert default == explicit

    def test_char_jobs_never_in_accel_point_cache_key(self):
        point = expand(make_sweep_spec("accel", scale="smoke"))[0]
        baseline = point_cache_key(point, point_config(point))
        sharded = point_cache_key(
            point, point_config(point, char_jobs=8, verbose=True))
        assert baseline == sharded

    def test_design_points_share_one_training_prefix(self):
        spec = make_sweep_spec(
            "accel", scale="smoke",
            array_shapes=("16x16", "32x32", None),
            hw_variants=("standard", "optimized"))
        points = expand(spec)
        assert len(points) == 6
        assert shared_prefix_count(points) == 1


# ----------------------------------------------------------------------
# sweep-spec plumbing
# ----------------------------------------------------------------------
class TestAccelSweepSpec:
    def test_defaults_are_the_papers_comparison(self):
        spec = make_sweep_spec("accel")
        assert spec.array_shapes == (None,)
        assert spec.hw_variants == ("standard", "optimized")
        assert spec.thresholds == (None,)
        assert spec.stream_batch == 1

    def test_thresholds_rejected(self):
        with pytest.raises(ValueError, match="no threshold axis"):
            make_sweep_spec("accel", thresholds=(900.0,))

    def test_accel_axes_rejected_for_threshold_experiments(self):
        with pytest.raises(ValueError, match="accel-only"):
            make_sweep_spec("fig8", array_shapes=("32x32",))
        with pytest.raises(ValueError, match="accel-only"):
            make_sweep_spec("fig9", hw_variants=("optimized",))
        with pytest.raises(ValueError, match="accel-only"):
            make_sweep_spec("table1", stream_batch=4)

    def test_normalized_defaults_round_trip(self):
        fig8 = make_sweep_spec("fig8")
        again = make_sweep_spec("fig8",
                                array_shapes=fig8.array_shapes,
                                hw_variants=fig8.hw_variants,
                                stream_batch=fig8.stream_batch)
        assert again == fig8

    def test_shape_axis_deduplicates_spellings(self):
        spec = make_sweep_spec(
            "accel", array_shapes=("32x32", (32, 32), "32", "16x16"))
        assert spec.array_shapes == ((32, 32), (16, 16))

    def test_mapping_round_trip(self):
        spec = sweep_spec_from_mapping({
            "experiment": "accel",
            "networks": ["lenet5"],
            "array_shapes": ["8x8", [16, 16], "hw"],
            "hw_variants": ["Optimized HW"],
            "stream_batch": 2,
            "scale": "smoke",
        })
        assert spec.array_shapes == ((8, 8), (16, 16), None)
        assert spec.hw_variants == ("optimized",)
        assert spec.stream_batch == 2

    def test_expansion_resolves_and_dedupes_default_geometry(self):
        # The backend's own 64x64 and an explicit "64x64" are the same
        # design point; expansion must collapse them.
        spec = make_sweep_spec("accel", array_shapes=(None, "64x64"),
                               hw_variants=("standard",))
        points = expand(spec)
        assert len(points) == 1
        assert points[0].accel.rows == 64
        assert points[0].accel.cols == 64


# ----------------------------------------------------------------------
# the accel sweep end to end (smoke scale, session-shared cache)
# ----------------------------------------------------------------------
class TestAccelSweepSmoke:
    @pytest.fixture(scope="class")
    def result(self, smoke_cache_dir):
        spec = make_sweep_spec(
            "accel", networks=(NETWORK_SPECS[0],), scale="smoke",
            array_shapes=("16x16", None))
        return spec, run_sweep(spec, jobs=1,
                               cache_dir=smoke_cache_dir)

    def test_one_row_per_design_point(self, result):
        spec, res = result
        assert len(res.rows) == 4
        labels = [row.accel for row in res.rows]
        assert labels == ["16x16/standard", "16x16/optimized",
                          "64x64/standard", "64x64/optimized"]
        for row in res.rows:
            assert row.skipped is None
            assert row.metrics["energy_uj"] > 0
            assert 0 < row.metrics["utilization_pct"] <= 100

    def test_optimized_beats_standard_per_shape(self, result):
        __, res = result
        by_label = {row.accel: row.metrics for row in res.rows}
        for shape in ("16x16", "64x64"):
            std = by_label[f"{shape}/standard"]
            opt = by_label[f"{shape}/optimized"]
            assert opt["power_mw"] <= std["power_mw"]
            assert opt["energy_uj"] <= std["energy_uj"]

    def test_variants_share_cycles_and_utilization(self, result):
        __, res = result
        by_label = {row.accel: row.metrics for row in res.rows}
        for shape in ("16x16", "64x64"):
            std = by_label[f"{shape}/standard"]
            opt = by_label[f"{shape}/optimized"]
            assert std["total_cycles"] == opt["total_cycles"]
            assert std["utilization_pct"] == opt["utilization_pct"]
            assert std["latency_us"] == opt["latency_us"]

    def test_warm_rerun_computes_nothing(self, result, smoke_cache_dir):
        spec, __ = result
        rerun = run_sweep(spec, jobs=1, cache_dir=smoke_cache_dir)
        assert all(row.cached for row in rerun.rows)
        assert rerun.cache_misses == 0

    def test_tidy_and_format_carry_the_design_point(self, result):
        from repro.experiments.sweep import format_sweep

        __, res = result
        record = res.tidy()[0]
        assert record["accel"] == "16x16/standard"
        text = format_sweep(res)
        assert "16x16/optimized" in text
        assert "energy/inference[uJ] by variant x array shape" in text

    def test_payload_reports_per_layer_rows(self, result):
        __, res = result
        payload = res.rows[0].payload
        assert payload["layers"], "expected per-layer breakdown"
        for layer in payload["layers"]:
            assert layer["macs"] <= (layer["cycles"]
                                     * payload["network"]["rows"]
                                     * payload["network"]["cols"])
        network = payload["network"]
        assert network["total_macs"] == sum(l["macs"]
                                            for l in payload["layers"])
