"""Tests for the hardware-backend registry, backend-keyed stage cache
and the sharded per-weight characterization."""

import numpy as np
import pytest

from repro.cells import VoltageModel, default_library
from repro.core.pipeline import POWER_PRUNING_GRAPH, PipelineConfig
from repro.core.stages import POWER_PRUNING_STAGES, PipelineOps
from repro.hw import (
    DEFAULT_BACKEND_ID,
    HardwareBackend,
    ensure_registered,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend_id,
)
from repro.netlist import build_mac_unit
from repro.power import (
    PartialSumBinner,
    TransitionDistribution,
    WeightPowerCharacterizer,
)
from repro.power.binning import BinnedTransitions
from repro.power.characterization import weight_seed_sequence
from repro.sim.logic import bus_inputs, evaluate, read_output_bus
from repro.systolic import SystolicConfig


class TestRegistry:
    def test_at_least_four_builtins_default_first(self):
        ids = list_backends()
        assert len(ids) >= 4
        assert ids[0] == DEFAULT_BACKEND_ID
        for expected in ("nangate15-booth", "nangate15-array",
                         "nangate15-ripple", "scaled-45nm"):
            assert expected in ids

    def test_unknown_backend_rejected_with_choices(self):
        with pytest.raises(ValueError, match="nangate15-booth"):
            get_backend("tsmc3")

    def test_duplicate_registration_rejected(self):
        backend = get_backend(DEFAULT_BACKEND_ID)
        with pytest.raises(ValueError, match="already registered"):
            register_backend(backend)
        # explicit replacement is allowed and idempotent here
        assert register_backend(backend, replace=True) is backend

    def test_invalid_styles_rejected(self):
        with pytest.raises(ValueError, match="multiplier"):
            HardwareBackend("x", "bad", multiplier_style="wallace")
        with pytest.raises(ValueError, match="adder"):
            HardwareBackend("x", "bad", adder_style="carry_skip")

    def test_resolve_backend_id_accepts_id_spec_and_none(self):
        assert resolve_backend_id(None) == DEFAULT_BACKEND_ID
        assert resolve_backend_id(DEFAULT_BACKEND_ID) == \
            DEFAULT_BACKEND_ID
        assert resolve_backend_id(get_backend("scaled-45nm")) == \
            "scaled-45nm"
        with pytest.raises(ValueError, match="unknown"):
            resolve_backend_id("no-such-backend")

    def test_spec_resolution_registers_unknown_backends(self):
        """The spawn-safe worker path: a spec travels in the task
        payload and self-registers in a registry that has never seen
        it (as in a freshly spawned process)."""
        from repro.hw import registry
        spec = HardwareBackend("test-spawned", "arrives via pickle",
                               multiplier_style="array")
        try:
            assert "test-spawned" not in registry._REGISTRY
            assert resolve_backend_id(spec) == "test-spawned"
            assert get_backend("test-spawned") is spec
            # idempotent: an equal spec is a no-op, not a duplicate error
            assert ensure_registered(
                HardwareBackend("test-spawned", "arrives via pickle",
                                multiplier_style="array")) is spec
        finally:
            registry._REGISTRY.pop("test-spawned", None)


class TestBackendsBuildWorkingHardware:
    @pytest.mark.parametrize("backend_id",
                             ["nangate15-booth", "nangate15-array",
                              "nangate15-ripple", "scaled-45nm"])
    def test_mac_arithmetic(self, backend_id):
        backend = get_backend(backend_id)
        mac = backend.build_mac()
        rng = np.random.default_rng(13)
        a = rng.integers(-128, 128, 400)
        w = rng.integers(-128, 128, 400)
        ps = rng.integers(-(1 << 21), 1 << 21, 400)
        feed = bus_inputs("act", a, mac.act_bits)
        feed.update(bus_inputs("w", w, mac.weight_bits))
        feed.update(bus_inputs("psum", ps, mac.psum_bits))
        values = evaluate(mac.full, feed)
        product = read_output_bus(mac.full, values, "product",
                                  mac.product_bits)
        result = read_output_bus(mac.full, values, "result",
                                 mac.psum_bits)
        np.testing.assert_array_equal(product, a * w)
        half = 1 << (mac.psum_bits - 1)
        expected = ((ps + a * w + half) % (1 << mac.psum_bits)) - half
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize("backend_id",
                             ["nangate15-booth", "nangate15-array",
                              "nangate15-ripple", "scaled-45nm"])
    def test_library_and_models_build(self, backend_id):
        backend = get_backend(backend_id)
        library = backend.build_library()
        assert len(library) > 0
        assert library.nominal_voltage == backend.nominal_voltage
        voltage = backend.build_voltage_model()
        assert voltage.vdd_nom == backend.nominal_voltage
        systolic = backend.build_systolic_config()
        assert systolic.clock_period_ps == backend.clock_period_ps

    def test_adder_styles_differ_structurally(self):
        ks = get_backend("nangate15-booth").build_mac()
        ripple = get_backend("nangate15-ripple").build_mac()
        assert ks.adder.cell_counts() != ripple.adder.cell_counts()

    def test_scaled_45nm_scales_energy_not_delay(self):
        base = get_backend("nangate15-booth")
        scaled = get_backend("scaled-45nm")
        base_lib, scaled_lib = base.build_library(), scaled.build_library()
        for cell in base_lib:
            other = scaled_lib[cell.name]
            assert other.energy_fj > cell.energy_fj
            assert other.delay_ps == cell.delay_ps


class TestDefaultBackendMatchesLegacyHardware:
    """`nangate15-booth` must reproduce the pre-registry defaults."""

    def test_library_identical(self):
        built = get_backend(DEFAULT_BACKEND_ID).build_library()
        legacy = default_library()
        assert built.name == legacy.name
        assert built.nominal_voltage == legacy.nominal_voltage
        assert built.cells == legacy.cells

    def test_mac_identical(self):
        built = get_backend(DEFAULT_BACKEND_ID).build_mac()
        legacy = build_mac_unit()
        assert built.cell_counts() == legacy.cell_counts()
        assert built.style == legacy.style
        assert built.adder_style == legacy.adder_style
        assert (built.act_bits, built.weight_bits, built.product_bits,
                built.psum_bits) == (legacy.act_bits, legacy.weight_bits,
                                     legacy.product_bits, legacy.psum_bits)

    def test_voltage_and_systolic_identical(self):
        backend = get_backend(DEFAULT_BACKEND_ID)
        assert backend.build_voltage_model() == VoltageModel()
        assert backend.build_systolic_config() == SystolicConfig()

    def test_pipeline_ops_resolves_default_backend(self):
        ops = PipelineOps(PipelineConfig())
        assert ops.backend.backend_id == DEFAULT_BACKEND_ID
        assert ops.library.cells == default_library().cells
        assert ops.mac.cell_counts() == build_mac_unit().cell_counts()


class TestBackendKeyedStageCache:
    def _keys(self, **overrides):
        return POWER_PRUNING_GRAPH.keys(PipelineConfig(**overrides))

    def test_every_stage_key_differs_across_backends(self):
        """Cross-backend cache collisions are impossible by
        construction: the backend spec is hashed into every key."""
        by_backend = {bid: self._keys(backend=bid)
                      for bid in list_backends()}
        for name in POWER_PRUNING_STAGES:
            keys = {by_backend[bid][name] for bid in by_backend}
            assert len(keys) == len(by_backend), name

    def test_default_backend_keys_stable(self):
        assert self._keys() == self._keys(backend=DEFAULT_BACKEND_ID)

    def test_char_jobs_never_in_keys(self):
        assert self._keys() == self._keys(char_jobs=8)

    def test_redefined_backend_spec_invalidates_keys(self):
        try:
            register_backend(HardwareBackend(
                "test-ephemeral", "for key test"))
            before = self._keys(backend="test-ephemeral")
            register_backend(
                HardwareBackend("test-ephemeral", "for key test",
                                energy_factor=1.5),
                replace=True)
            after = self._keys(backend="test-ephemeral")
            for name in POWER_PRUNING_STAGES:
                assert before[name] != after[name], name
        finally:
            from repro.hw import registry
            registry._REGISTRY.pop("test-ephemeral", None)


@pytest.fixture(scope="module")
def tiny_characterizer():
    mac = build_mac_unit()
    lib = default_library()
    rng = np.random.default_rng(0)
    act_dist = TransitionDistribution.diagonal(256)
    stream = rng.integers(-(1 << 18), 1 << 18, 3000)
    binner = PartialSumBinner(n_bins=8).fit(stream, rng=rng)
    binned = BinnedTransitions.from_stream(binner, stream)
    return WeightPowerCharacterizer(mac, lib, act_dist, binned,
                                    n_samples=150)


class TestShardedCharacterization:
    def test_seed_sequence_keyed_on_value_not_order(self):
        a = weight_seed_sequence(7, -105).generate_state(4)
        b = weight_seed_sequence(7, -105).generate_state(4)
        c = weight_seed_sequence(7, 64).generate_state(4)
        d = weight_seed_sequence(8, -105).generate_state(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_sharded_bitwise_equal_to_serial(self, tiny_characterizer):
        weights = list(range(-127, 128, 16))
        serial = tiny_characterizer.characterize(weights, seed=5, jobs=1)
        sharded = tiny_characterizer.characterize(weights, seed=5, jobs=3)
        np.testing.assert_array_equal(serial.weights, sharded.weights)
        np.testing.assert_array_equal(serial.power_uw, sharded.power_uw)
        np.testing.assert_array_equal(serial.dynamic_uw,
                                      sharded.dynamic_uw)
        assert serial.energy_scale == sharded.energy_scale
        assert serial.leakage_uw == sharded.leakage_uw

    def test_result_independent_of_weight_subset(self, tiny_characterizer):
        raw = WeightPowerCharacterizer(
            tiny_characterizer.mac, tiny_characterizer.library,
            tiny_characterizer.act_transitions,
            tiny_characterizer.psum_transitions,
            n_samples=150, calibrate_to_uw=None)
        full = raw.characterize([-9, 0, 7, 31], seed=5)
        solo = raw.characterize([7], seed=5)
        assert full.power_of(7) == solo.power_of(7)
