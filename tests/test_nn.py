"""Tests for layers, quantization, restriction, losses, optimizers and
the trainer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    ActivationFilter,
    Adam,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    Linear,
    Module,
    QuantConfig,
    QuantReLU,
    SGD,
    Sequential,
    Tensor,
    Trainer,
    TrainingConfig,
    WeightRestriction,
    accuracy,
    softmax_cross_entropy,
)
from repro.nn.quant import fake_quantize_ste, from_codes, to_codes, \
    weight_scale


class TestQuant:
    def test_weight_scale_maps_peak(self):
        w = np.array([-0.5, 0.25, 0.1])
        scale = weight_scale(w, 127)
        assert scale == pytest.approx(0.5 / 127)

    def test_zero_weights_scale(self):
        assert weight_scale(np.zeros(4), 127) > 0

    def test_fake_quantize_levels(self):
        x = Tensor(np.linspace(-1, 1, 100).astype(np.float32))
        out = fake_quantize_ste(x, scale=1 / 127, qmin=-127, qmax=127)
        codes = np.round(out.data * 127)
        assert np.unique(codes).size <= 255
        np.testing.assert_allclose(out.data, x.data, atol=1 / 127)

    def test_fake_quantize_invalid_scale(self):
        with pytest.raises(ValueError):
            fake_quantize_ste(Tensor(np.zeros(2)), 0.0, -127, 127)

    def test_clipped_ste_gradient(self):
        x = Tensor(np.array([-3.0, 0.0, 3.0], dtype=np.float32),
                   requires_grad=True)
        out = fake_quantize_ste(x, scale=1 / 127, qmin=-127, qmax=127)
        out.sum().backward()
        # saturated lanes (|x| > 1) receive no gradient
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_code_roundtrip(self):
        values = np.array([-0.5, 0.0, 0.5])
        codes = to_codes(values, 0.5 / 127, -127, 127)
        np.testing.assert_array_equal(codes, [-127, 0, 127])
        back = from_codes(codes, 0.5 / 127)
        np.testing.assert_allclose(back, values, atol=1e-6)

    @given(st.integers(2, 16))
    def test_qmax_consistency(self, bits):
        config = QuantConfig(weight_bits=bits)
        assert config.weight_qmax == (1 << (bits - 1)) - 1


class TestRestriction:
    def test_nearest_projection(self):
        restriction = WeightRestriction([-4, 0, 4])
        codes = np.array([-6, -3, -1, 1, 3, 6])
        np.testing.assert_array_equal(
            restriction(codes), [-4, -4, 0, 0, 4, 4])

    def test_allowed_values_fixed_points(self):
        restriction = WeightRestriction([-4, 0, 4])
        np.testing.assert_array_equal(
            restriction(np.array([-4, 0, 4])), [-4, 0, 4])

    def test_zero_required(self):
        with pytest.raises(ValueError, match="zero"):
            WeightRestriction([1, 2])
        with pytest.raises(ValueError, match="zero"):
            ActivationFilter([1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightRestriction([])

    def test_membership_and_len(self):
        restriction = WeightRestriction([0, 5, -5])
        assert 5 in restriction and 3 not in restriction
        assert len(restriction) == 3

    @given(st.lists(st.integers(-127, 127), min_size=1, max_size=30))
    def test_projection_idempotent(self, allowed):
        allowed = allowed + [0]
        restriction = WeightRestriction(allowed)
        codes = np.arange(-127, 128)
        once = restriction(codes)
        np.testing.assert_array_equal(once, restriction(once))

    @given(st.lists(st.integers(-127, 127), min_size=2, max_size=30))
    def test_projection_is_nearest(self, allowed):
        allowed = sorted(set(allowed + [0]))
        restriction = WeightRestriction(allowed)
        codes = np.arange(-127, 128)
        projected = restriction(codes)
        arr = np.asarray(allowed)
        best = np.abs(codes[:, None] - arr[None, :]).min(axis=1)
        np.testing.assert_array_equal(
            np.abs(codes - projected), best)


class TestWeightLayers:
    def test_conv_quantized_weights_on_grid(self):
        conv = Conv2d(3, 4, 3)
        codes, scale = conv.quantized_weights()
        assert codes.min() >= -127 and codes.max() <= 127
        assert np.abs(codes).max() == 127  # scale maps peak onto qmax

    def test_conv_restriction_applied(self):
        conv = Conv2d(3, 4, 3)
        conv.weight_restriction = WeightRestriction([0, 64, -64, 127, -127])
        codes, __ = conv.quantized_weights()
        assert set(np.unique(codes)) <= {0, 64, -64, 127, -127}

    def test_conv_forward_uses_restricted_weights(self):
        conv = Conv2d(1, 1, 1, bias=False)
        conv.weight.data[:] = 0.37
        conv.weight_restriction = WeightRestriction([0, 127])
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32))
        out = conv(x)
        scale = weight_scale(conv.weight.data, 127)
        assert out.data[0, 0, 0, 0] == pytest.approx(127 * scale)

    def test_matmul_weight_layout(self):
        conv = Conv2d(3, 8, 5)
        assert conv.matmul_weight().shape == (3 * 25, 8)
        linear = Linear(120, 84)
        assert linear.matmul_weight().shape == (120, 84)
        depthwise = DepthwiseConv2d(6, 3)
        assert depthwise.matmul_weight().shape == (9, 6)

    def test_prune_smallest(self):
        conv = Conv2d(3, 8, 3)
        sparsity = conv.prune_smallest(0.5)
        assert sparsity == pytest.approx(0.5, abs=0.05)
        assert (conv.weight.data[conv.weight_mask == 0] == 0).all()

    def test_prune_fraction_validated(self):
        with pytest.raises(ValueError):
            Conv2d(3, 8, 3).prune_smallest(1.0)

    def test_mask_survives_update(self):
        linear = Linear(4, 2)
        linear.prune_smallest(0.5)
        linear.weight.data += 1.0  # simulated optimizer step
        linear.apply_weight_masks()
        assert (linear.weight.data[linear.weight_mask == 0] == 0).all()

    def test_linear_input_validation(self):
        with pytest.raises(ValueError):
            Linear(4, 2)(Tensor(np.zeros((2, 4, 1))))


class TestQuantReLU:
    def test_negative_inputs_cut(self):
        act = QuantReLU()
        act.eval()
        out = act(Tensor(np.array([-1.0, 2.0], dtype=np.float32)))
        assert out.data[0] == 0.0

    def test_running_max_updates_in_train_only(self):
        act = QuantReLU()
        act.train()
        act(Tensor(np.array([4.0], dtype=np.float32)))
        recorded = act.running_max
        assert recorded > 0
        act.eval()
        act(Tensor(np.array([100.0], dtype=np.float32)))
        assert act.running_max == recorded

    def test_activation_filter_applied(self):
        act = QuantReLU()
        act.train()
        act(Tensor(np.linspace(0, 1, 50).astype(np.float32)))
        act.activation_filter = ActivationFilter([0, 64, 127])
        act.capture_codes = True
        act.eval()
        act(Tensor(np.linspace(0, 1, 50).astype(np.float32)))
        assert set(np.unique(act.last_codes)) <= {0, 64, 127}

    def test_relu6_clamps(self):
        act = QuantReLU(six=True)
        act.train()
        out = act(Tensor(np.array([10.0], dtype=np.float32)))
        assert out.data[0] <= 6.0 + 1e-6

    def test_quant_disabled_passthrough(self):
        act = QuantReLU(QuantConfig(enabled=False))
        x = np.array([0.1234567], dtype=np.float32)
        out = act(Tensor(x))
        np.testing.assert_array_equal(out.data, x)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self):
        bn = BatchNorm2d(3)
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 2.0, (8, 3, 4, 4)).astype(np.float32)
        out = bn(Tensor(x))
        assert abs(out.data.mean()) < 1e-5
        assert out.data.std() == pytest.approx(1.0, abs=0.01)

    def test_running_stats_move(self):
        bn = BatchNorm2d(2)
        x = np.full((4, 2, 2, 2), 3.0, dtype=np.float32)
        bn(Tensor(x))
        assert (bn.running_mean > 0).all()

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        rng = np.random.default_rng(1)
        for __ in range(30):
            bn(Tensor(rng.normal(2.0, 1.0, (16, 2, 3, 3))
                      .astype(np.float32)))
        bn.eval()
        x = rng.normal(2.0, 1.0, (16, 2, 3, 3)).astype(np.float32)
        out = bn(Tensor(x))
        assert abs(out.data.mean()) < 0.3

    def test_gradient_flows(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(2).normal(0, 1, (4, 2, 3, 3))
                   .astype(np.float32), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(np.zeros((2, 4, 3, 3))))


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10), abs=1e-5)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3), dtype=np.float32),
                        requires_grad=True)
        softmax_cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        z = rng.normal(0, 1, (5, 4)).astype(np.float64)
        labels = rng.integers(0, 4, 5)
        logits = Tensor(z.astype(np.float32), requires_grad=True)
        softmax_cross_entropy(logits, labels).backward()
        eps = 1e-4
        for i in range(5):
            for j in range(4):
                zp = z.copy()
                zp[i, j] += eps
                zm = z.copy()
                zm[i, j] -= eps

                def loss_of(arr):
                    t = arr - arr.max(axis=1, keepdims=True)
                    p = np.exp(t) / np.exp(t).sum(axis=1, keepdims=True)
                    return -np.log(
                        p[np.arange(5), labels]).mean()

                num = (loss_of(zp) - loss_of(zm)) / (2 * eps)
                assert logits.grad[i, j] == pytest.approx(num, abs=1e-3)

    def test_label_shape_validated(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros((2, 3))),
                                  np.zeros(3, dtype=int))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestOptimizers:
    def _quadratic_descent(self, optimizer_cls, **kwargs):
        x = Tensor(np.array([5.0], dtype=np.float32), requires_grad=True)
        opt = optimizer_cls([x], **kwargs)
        for __ in range(150):
            opt.zero_grad()
            (x * x).backward()
            opt.step()
        return abs(float(x.data[0]))

    def test_sgd_converges(self):
        assert self._quadratic_descent(SGD, lr=0.05, momentum=0.5) < 0.05

    def test_adam_converges(self):
        assert self._quadratic_descent(Adam, lr=0.1) < 0.05

    def test_invalid_lr(self):
        x = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=0.0)

    def test_no_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = SGD([x], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.zero_grad()
        x.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert float(x.data[0]) == pytest.approx(0.9)


class TestModuleTraversal:
    def test_sequential_parameters(self):
        model = Sequential(Conv2d(3, 4, 3), QuantReLU(), Flatten(),
                           Linear(4 * 30 * 30, 2))
        names = [p.shape for p in model.parameters()]
        assert len(names) == 4  # two weights + two biases

    def test_train_eval_propagates(self):
        model = Sequential(Conv2d(3, 4, 3), QuantReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_set_restriction_walks_tree(self):
        model = Sequential(Conv2d(3, 4, 3), QuantReLU(),
                           Sequential(Linear(10, 5), QuantReLU()))
        restriction = WeightRestriction([0, 1, -1])
        act_filter = ActivationFilter([0, 5])
        model.set_weight_restriction(restriction)
        model.set_activation_filter(act_filter)
        layers = model.quantized_layers()
        assert len(layers) == 2
        assert all(l.weight_restriction is restriction for l in layers)
        relus = [m for m in model.modules() if isinstance(m, QuantReLU)]
        assert all(r.activation_filter is act_filter for r in relus)


class TestTrainer:
    def _toy_data(self, n=128):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 1, (n, 8)).astype(np.float32)
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        return x, y

    def _mlp(self):
        return Sequential(Linear(8, 16), QuantReLU(), Linear(16, 2))

    def test_training_improves_accuracy(self):
        x, y = self._toy_data()
        model = self._mlp()
        trainer = Trainer(model, TrainingConfig(epochs=15, batch_size=32,
                                                lr=0.05))
        history = trainer.fit(x, y, x, y)
        assert history.test_accuracy[-1] > 0.9

    def test_history_lengths(self):
        x, y = self._toy_data(64)
        trainer = Trainer(self._mlp(), TrainingConfig(epochs=3,
                                                      batch_size=16))
        history = trainer.fit(x, y, x, y)
        assert len(history.train_loss) == 3
        assert len(history.test_accuracy) == 3
        assert history.best_test_accuracy == max(history.test_accuracy)

    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            Trainer(self._mlp(), TrainingConfig(optimizer="lamb"))

    def test_pruning_mask_respected_during_training(self):
        x, y = self._toy_data(64)
        model = self._mlp()
        layer = model.quantized_layers()[0]
        layer.prune_smallest(0.5)
        mask = layer.weight_mask.copy()
        trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=16))
        trainer.fit(x, y)
        assert (layer.weight.data[mask == 0] == 0).all()

    def test_lr_decay(self):
        x, y = self._toy_data(32)
        trainer = Trainer(self._mlp(), TrainingConfig(
            epochs=2, batch_size=16, lr=0.1, lr_decay_epochs=(1,)))
        trainer.fit(x, y)
        assert trainer.optimizer.lr == pytest.approx(0.01)

    def test_restricted_training_converges(self):
        """Sec. III-C: training under weight restriction still learns."""
        x, y = self._toy_data()
        model = self._mlp()
        model.set_weight_restriction(
            WeightRestriction(list(range(-127, 128, 8)) + [0]))
        trainer = Trainer(model, TrainingConfig(epochs=15, batch_size=32,
                                                lr=0.05))
        history = trainer.fit(x, y, x, y)
        assert history.test_accuracy[-1] > 0.85
