"""Property tests for variance-aware multi-seed aggregation.

The aggregation layer (:mod:`repro.experiments.stats`) sits between the
sweep engine and every consumer of its rows (tables, charts, CSV), so
its invariants are pinned with hypothesis:

* grouping is a partition of the input rows;
* mean/std/min/max match numpy on the grouped values;
* a single-seed group passes its metrics through bit-identically;
* ordering is stable and deterministic (first-occurrence order).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.stats import (
    GROUP_FIELDS,
    aggregate_rows,
    format_mean_std,
    group_key,
    group_rows,
)
from repro.experiments.sweep import SweepRow

_METRIC_NAMES = ("accuracy", "n_weights", "power_opt_mw")
_VALUES = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def _sweep_rows(draw):
    """Interleaved rows over a few synthetic seed groups."""
    backends = draw(st.lists(
        st.sampled_from(("booth", "array", "ripple")),
        min_size=1, max_size=2, unique=True))
    networks = draw(st.lists(st.sampled_from(("lenet5", "resnet20")),
                             min_size=1, max_size=2, unique=True))
    thresholds = draw(st.lists(
        st.sampled_from((None, 800.0, 900.0)),
        min_size=1, max_size=2, unique=True))
    seeds = draw(st.lists(st.integers(0, 9), min_size=1, max_size=4,
                          unique=True))
    rows = []
    for backend in backends:
        for network in networks:
            for threshold in thresholds:
                for seed in seeds:
                    skipped = draw(st.sampled_from(
                        (None, None, None, "too few survivors")))
                    metrics = {} if skipped else {
                        name: draw(_VALUES)
                        for name in _METRIC_NAMES}
                    rows.append(SweepRow(
                        experiment="fig8", backend_id=backend,
                        network=network, threshold=threshold,
                        seed=seed, scale="smoke", payload=None,
                        metrics=metrics, skipped=skipped))
    permutation = draw(st.permutations(range(len(rows))))
    return [rows[i] for i in permutation]


class TestGroupingIsAPartition:
    @settings(max_examples=50, deadline=None)
    @given(rows=_sweep_rows())
    def test_every_row_lands_in_exactly_one_group(self, rows):
        groups = group_rows(rows)
        members = [row for group in groups.values() for row in group]
        assert len(members) == len(rows)
        assert {id(row) for row in members} == {id(row) for row in rows}
        for key, group in groups.items():
            for row in group:
                assert group_key(row) == key

    @settings(max_examples=50, deadline=None)
    @given(rows=_sweep_rows())
    def test_aggregate_covers_every_seed_with_multiplicity(self, rows):
        aggregates = aggregate_rows(rows)
        keys = [(a.experiment, a.backend_id, a.network, a.threshold,
                 a.accel, a.scale) for a in aggregates]
        assert len(set(keys)) == len(keys)
        got = [(key, seed) for a, key in zip(aggregates, keys)
               for seed in a.seeds]
        want = [(group_key(row), row.seed) for row in rows]
        assert sorted(got, key=repr) == sorted(want, key=repr)


class TestStatisticsMatchNumpy:
    @settings(max_examples=50, deadline=None)
    @given(rows=_sweep_rows())
    def test_mean_std_min_max_match_numpy_exactly(self, rows):
        aggregates = aggregate_rows(rows)
        for agg in aggregates:
            members = [row for row in rows
                       if group_key(row) == (agg.experiment,
                                             agg.backend_id,
                                             agg.network,
                                             agg.threshold, agg.accel,
                                             agg.scale)]
            live = [row for row in members if row.skipped is None]
            assert agg.n_seeds == len(live)
            assert agg.n_skipped == len(members) - len(live)
            for name in agg.metrics_mean:
                values = [row.metrics[name] for row in live
                          if name in row.metrics]
                assert agg.metrics_n[name] == len(values)
                assert agg.metrics_mean[name] == float(np.mean(values))
                assert agg.metrics_std[name] == float(np.std(values))
                assert agg.metrics_min[name] == float(np.min(values))
                assert agg.metrics_max[name] == float(np.max(values))

    @settings(max_examples=50, deadline=None)
    @given(rows=_sweep_rows())
    def test_all_live_metrics_are_aggregated(self, rows):
        aggregates = aggregate_rows(rows)
        by_key = {(a.experiment, a.backend_id, a.network, a.threshold,
                   a.accel, a.scale): a for a in aggregates}
        for row in rows:
            if row.skipped is not None:
                continue
            agg = by_key[group_key(row)]
            for name in row.metrics:
                assert name in agg.metrics_mean


class TestSingleSeedPassthrough:
    @settings(max_examples=50, deadline=None)
    @given(metrics=st.dictionaries(st.sampled_from(_METRIC_NAMES),
                                   _VALUES, min_size=1),
           seed=st.integers(0, 99))
    def test_single_row_is_bit_identical(self, metrics, seed):
        row = SweepRow(experiment="fig8", backend_id="booth",
                       network="lenet5", threshold=900.0, seed=seed,
                       scale="smoke", payload=None, metrics=metrics,
                       skipped=None)
        (agg,) = aggregate_rows([row])
        assert agg.metrics_mean == metrics
        assert agg.metrics_min == metrics
        assert agg.metrics_max == metrics
        assert agg.metrics_std == {name: 0.0 for name in metrics}
        assert agg.metrics_n == {name: 1 for name in metrics}
        assert agg.seeds == (seed,)
        assert agg.n_seeds == 1
        assert agg.skipped is None


class TestStableOrdering:
    @settings(max_examples=50, deadline=None)
    @given(rows=_sweep_rows())
    def test_aggregation_is_deterministic(self, rows):
        assert aggregate_rows(rows) == aggregate_rows(rows)

    @settings(max_examples=50, deadline=None)
    @given(rows=_sweep_rows())
    def test_groups_in_first_occurrence_order(self, rows):
        seen = []
        for row in rows:
            key = group_key(row)
            if key not in seen:
                seen.append(key)
        aggregates = aggregate_rows(rows)
        assert [(a.experiment, a.backend_id, a.network, a.threshold,
                 a.accel, a.scale) for a in aggregates] == seen

    @settings(max_examples=50, deadline=None)
    @given(rows=_sweep_rows())
    def test_metric_columns_in_first_occurrence_order(self, rows):
        for agg in aggregate_rows(rows):
            names = list(agg.metrics_mean)
            assert list(agg.metrics_std) == names
            assert list(agg.metrics_min) == names
            assert list(agg.metrics_max) == names
            assert list(agg.metrics_n) == names


class TestSkippedGroups:
    def _row(self, seed, skipped=None, metrics=None):
        return SweepRow(experiment="fig8", backend_id="booth",
                        network="lenet5", threshold=800.0, seed=seed,
                        scale="smoke", payload=None,
                        metrics=metrics or {}, skipped=skipped)

    def test_fully_skipped_group_keeps_first_reason(self):
        rows = [self._row(0, skipped="reason A"),
                self._row(1, skipped="reason B")]
        (agg,) = aggregate_rows(rows)
        assert agg.n_seeds == 0
        assert agg.n_skipped == 2
        assert agg.skipped == "reason A"
        assert agg.metrics_mean == {}

    def test_partially_skipped_group_aggregates_the_rest(self):
        rows = [self._row(0, metrics={"accuracy": 0.5}),
                self._row(1, skipped="gone"),
                self._row(2, metrics={"accuracy": 0.7})]
        (agg,) = aggregate_rows(rows)
        assert agg.n_seeds == 2
        assert agg.n_skipped == 1
        assert agg.skipped is None
        assert agg.metrics_mean["accuracy"] == pytest.approx(0.6)
        assert agg.metrics_n["accuracy"] == 2


class TestFormatMeanStd:
    def test_float_format(self):
        assert format_mean_std(0.784, 0.012, ".1f", 100.0) == "78.4±1.2"

    def test_integer_format_falls_back_to_one_decimal(self):
        assert format_mean_std(32.5, 0.5, "d") == "32.5±0.5"

    def test_group_fields_cover_everything_but_the_seed(self):
        assert GROUP_FIELDS == ("experiment", "backend_id", "network",
                                "threshold", "accel", "scale")
