"""Regression tests for the parallel failure paths.

Three bugs these pin down:

* a worker killed by the OS (``os._exit`` / OOM) used to surface a
  bare ``BrokenProcessPool`` with no task name — now every in-flight
  task is named and the original exception is chained;
* ``parallel_map`` used to drain the *entire* pool before surfacing
  the first failure — now not-yet-started siblings are cancelled
  (fail-fast) while the deterministic first-submission-first error
  choice is kept for outcomes that did complete;
* the service-facing :func:`parallel_map_outcomes` must never raise
  per-task: failures resolve to outcomes, pool losses are flagged
  retriable, and a batch timeout fails only the unfinished items.
"""

import os
import random
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import pytest

from repro.experiments.parallel import (
    ParallelTaskError,
    TaskFailure,
    TaskOutcome,
    parallel_map,
    parallel_map_outcomes,
    retry_backoff_delay,
)


@dataclass(frozen=True)
class KillerTask:
    """Work item that can kill its worker outright (no traceback)."""

    name: str
    kill: bool = False

    def describe(self) -> str:
        return f"killer task {self.name}"


def _maybe_die(task: KillerTask) -> str:
    if task.kill:
        os._exit(1)  # simulates the OOM killer: no exception, no exit
    time.sleep(0.05)
    return task.name


@dataclass(frozen=True)
class SentinelTask:
    """Work item that records on disk that it actually ran."""

    name: str
    root: str
    delay: float = 0.0
    fail: bool = False

    def describe(self) -> str:
        return f"sentinel task {self.name}"


def _run_sentinel(task: SentinelTask) -> str:
    if task.fail:
        raise ValueError(f"deliberate failure in {task.name}")
    time.sleep(task.delay)
    with open(os.path.join(task.root, task.name), "w") as handle:
        handle.write(task.name)
    return task.name


def _slow_ok(task: KillerTask) -> str:
    time.sleep(5.0)
    return task.name


class TestBrokenPoolNaming:
    """A killed worker must name the in-flight task(s), not surface a
    bare BrokenProcessPool (regression)."""

    def test_os_exit_worker_names_tasks_and_chains_cause(self):
        tasks = [KillerTask("a"), KillerTask("boom", kill=True),
                 KillerTask("b")]
        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(_maybe_die, tasks, jobs=2)
        message = str(excinfo.value)
        assert "process pool broke" in message
        assert "killer task boom" in message
        assert isinstance(excinfo.value.__cause__, BrokenProcessPool)

    def test_outcomes_flag_pool_losses_retriable(self):
        tasks = [KillerTask("a"), KillerTask("boom", kill=True),
                 KillerTask("b"), KillerTask("c")]
        outcomes = parallel_map_outcomes(_maybe_die, tasks, jobs=2)
        assert len(outcomes) == 4
        assert all(isinstance(o, TaskOutcome) for o in outcomes)
        lost = [o for o in outcomes if not o.ok]
        assert lost, "the killed worker must surface failures"
        for outcome in lost:
            assert outcome.failure.kind == "pool"
            assert outcome.failure.retriable
            assert "killer task" in outcome.failure.description


class TestFailFast:
    def test_not_yet_started_tasks_are_cancelled(self, tmp_path):
        """One early failure must not drain the whole grid first."""
        tasks = [SentinelTask("fail", str(tmp_path), fail=True)]
        tasks += [SentinelTask(f"t{i}", str(tmp_path), delay=0.5)
                  for i in range(7)]
        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(_run_sentinel, tasks, jobs=2)
        assert "sentinel task fail" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)
        # With 2 workers and an immediate failure, the tail of the
        # grid must have been cancelled: well under all 7 survivors
        # can have run (2 in flight + the executor's small prefetch).
        ran = [p for p in tmp_path.iterdir() if p.name.startswith("t")]
        assert len(ran) <= 5, [p.name for p in ran]

    def test_first_submitted_failure_wins_deterministically(
            self, tmp_path):
        """Among completed outcomes the error choice stays stable."""
        tasks = [SentinelTask("fail-0", str(tmp_path), fail=True),
                 SentinelTask("fail-1", str(tmp_path), fail=True),
                 SentinelTask("fail-2", str(tmp_path), fail=True)]
        for __ in range(3):
            with pytest.raises(ParallelTaskError) as excinfo:
                parallel_map(_run_sentinel, tasks, jobs=2)
            assert "sentinel task fail-0" in str(excinfo.value)

    def test_all_successes_keep_order_and_results(self, tmp_path):
        tasks = [SentinelTask(f"t{i}", str(tmp_path)) for i in range(6)]
        assert parallel_map(_run_sentinel, tasks, jobs=3) == [
            f"t{i}" for i in range(6)]


class TestOutcomes:
    def test_mixed_success_and_failure(self, tmp_path):
        tasks = [SentinelTask("ok-1", str(tmp_path)),
                 SentinelTask("bad", str(tmp_path), fail=True),
                 SentinelTask("ok-2", str(tmp_path))]
        outcomes = parallel_map_outcomes(_run_sentinel, tasks, jobs=2)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == "ok-1"
        assert outcomes[2].value == "ok-2"
        failure = outcomes[1].failure
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "error"
        assert not failure.retriable
        assert "deliberate failure" in failure.worker_traceback

    def test_inline_outcomes_carry_failures(self, tmp_path):
        tasks = [SentinelTask("ok", str(tmp_path)),
                 SentinelTask("bad", str(tmp_path), fail=True)]
        outcomes = parallel_map_outcomes(_run_sentinel, tasks, jobs=1)
        assert outcomes[0].ok and outcomes[0].value == "ok"
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].failure.error, ValueError)

    def test_inline_on_result_streams_successes_only(self, tmp_path):
        seen = []
        tasks = [SentinelTask("ok", str(tmp_path)),
                 SentinelTask("bad", str(tmp_path), fail=True)]
        parallel_map_outcomes(_run_sentinel, tasks, jobs=1,
                              on_result=lambda i, r: seen.append(i))
        assert seen == [0]

    def test_batch_timeout_fails_unfinished_items(self):
        tasks = [KillerTask(f"t{i}") for i in range(3)]
        start = time.monotonic()
        outcomes = parallel_map_outcomes(_slow_ok, tasks, jobs=2,
                                         timeout=0.3)
        elapsed = time.monotonic() - start
        assert elapsed < 3.0  # must not wait out the 5 s sleeps
        assert all(not o.ok for o in outcomes)
        assert {o.failure.kind for o in outcomes} == {"timeout"}
        assert all(not o.failure.retriable for o in outcomes)

    def test_inline_timeout_checks_deadline_between_items(self):
        def slow(task):
            time.sleep(0.2)
            return task.name

        tasks = [KillerTask(f"t{i}") for i in range(3)]
        outcomes = parallel_map_outcomes(slow, tasks, jobs=1,
                                         timeout=0.1)
        assert outcomes[0].ok  # the running item finishes
        assert not outcomes[1].ok and not outcomes[2].ok
        assert outcomes[1].failure.kind == "timeout"

    def test_empty_items(self):
        assert parallel_map_outcomes(_slow_ok, [], jobs=4) == []

    def test_failure_summary_text(self):
        failure = TaskFailure(index=3, description="point x",
                              kind="pool", retriable=True)
        assert "point x" in failure.summary()
        assert "pool" in failure.summary() or "killed" \
            in failure.summary()


class TestRetryBackoffJitter:
    """Full-jitter backoff: uniform in [0, base * 2**(n-1)], capped.

    Without jitter every worker in a fleet retries a broken resource
    at the same deterministic instants; the uniform draw decorrelates
    the waves while keeping the exponential envelope.
    """

    def test_delays_stay_within_the_exponential_envelope(self):
        rng = random.Random(123)
        for attempt in range(1, 12):
            upper = min(0.5 * 2 ** (attempt - 1), 30.0)
            for _ in range(50):
                delay = retry_backoff_delay(0.5, attempt, rng)
                assert 0.0 <= delay <= upper

    def test_cap_bounds_late_waves(self):
        rng = random.Random(0)
        assert all(retry_backoff_delay(10.0, 50, rng) <= 30.0
                   for _ in range(200))
        assert all(retry_backoff_delay(10.0, 50, rng, cap_s=2.0) <= 2.0
                   for _ in range(200))

    def test_seeded_rng_is_reproducible(self):
        first = [retry_backoff_delay(0.5, n, random.Random(42))
                 for n in range(1, 6)]
        second = [retry_backoff_delay(0.5, n, random.Random(42))
                  for n in range(1, 6)]
        assert first == second

    def test_draws_actually_jitter(self):
        rng = random.Random(1)
        draws = {retry_backoff_delay(1.0, 3, rng) for _ in range(20)}
        assert len(draws) > 1

    def test_degenerate_inputs_return_zero(self):
        assert retry_backoff_delay(0.0, 3) == 0.0
        assert retry_backoff_delay(-1.0, 3) == 0.0
        assert retry_backoff_delay(0.5, 0) == 0.0
