"""Tests for the structural Verilog exporter."""

import re

import numpy as np
import pytest

from repro.netlist import NetlistBuilder, build_mac_unit
from repro.netlist.verilog import to_verilog


def _tiny_netlist():
    builder = NetlistBuilder("tiny")
    a = builder.netlist.add_input("a")
    b = builder.netlist.add_input("b")
    s = builder.netlist.add_input("s")
    y = builder.mux2(s, builder.and2(a, b), builder.xor2(a, b))
    builder.netlist.mark_output("y", y)
    return builder.build()


class TestVerilogExport:
    def test_module_structure(self):
        text = to_verilog(_tiny_netlist())
        assert text.startswith("module tiny (")
        assert text.rstrip().endswith("endmodule")
        assert "input  a;" in text
        assert "output y;" in text

    def test_every_gate_emitted(self):
        netlist = _tiny_netlist()
        text = to_verilog(netlist)
        assert text.count("assign n") >= netlist.num_gates

    def test_bus_ports_flattened(self):
        builder = NetlistBuilder("bus")
        bus = builder.input_bus("act", 4)
        builder.netlist.mark_output("y", builder.and2(bus[0], bus[3]))
        text = to_verilog(builder.build())
        assert "act_0" in text and "act_3" in text
        assert "[" not in text.split("module")[1].split(");")[0]

    def test_invalid_module_name(self):
        with pytest.raises(ValueError):
            to_verilog(_tiny_netlist(), module_name="2bad")

    def test_constants_assigned(self):
        builder = NetlistBuilder("consts")
        one = builder.const(True)
        a = builder.netlist.add_input("a")
        builder.netlist.mark_output("y", builder.and2(a, one))
        text = to_verilog(builder.build())
        assert "1'b1" in text

    def test_mac_exports_completely(self):
        mac = build_mac_unit()
        text = to_verilog(mac.full, module_name="mac_unit")
        assert text.count("assign") >= mac.full.num_gates
        # all ports present, flattened
        for bit in range(8):
            assert f"act_{bit}" in text
            assert f"w_{bit}" in text
        for bit in range(22):
            assert f"psum_{bit}" in text
            assert f"result_{bit}" in text

    def test_exported_logic_matches_simulation(self):
        """Evaluate the exported Verilog with a tiny interpreter and
        compare against the netlist simulator on random vectors."""
        netlist = _tiny_netlist()
        text = to_verilog(netlist)
        assigns = {}
        for match in re.finditer(
                r"assign (\w+) = (.+?);", text):
            assigns[match.group(1)] = match.group(2).split("//")[0].strip()

        def evaluate_verilog(env):
            # iterate until fixed point (assign order is topological, so
            # one forward pass suffices)
            for name, expr in assigns.items():
                expr = expr.replace("~", " not ") \
                           .replace("&", " and ") \
                           .replace("|", " or ") \
                           .replace("^", " != ")
                expr = re.sub(r"(\w+) \? (\w+) : (\w+)",
                              r"(\2 if \1 else \3)", expr)
                env[name] = bool(eval(expr, {}, env))  # trusted input
            return env["y"]

        from repro.sim.logic import evaluate

        rng = np.random.default_rng(0)
        for __ in range(16):
            a, b, s = (bool(rng.integers(2)) for _ in range(3))
            values = evaluate(netlist,
                              {"a": np.array([a]), "b": np.array([b]),
                               "s": np.array([s])})
            want = values[netlist.output_names["y"]][0]
            got = evaluate_verilog({"a": a, "b": b, "s": s})
            assert got == want
