"""Tests for the model zoo and synthetic datasets."""

import numpy as np
import pytest

from repro.data import (
    cifar10_like,
    cifar100_like,
    imagenet_like,
    load_dataset,
)
from repro.data.synthetic import generate
from repro.models import (
    EfficientNetB0Lite,
    LeNet5,
    build_model,
    resnet20,
    resnet50,
)
from repro.nn import Tensor, Trainer, TrainingConfig, softmax_cross_entropy
from repro.nn.layers import QuantReLU


def _forward_backward(model, num_classes, batch=4, hw=32):
    x = np.random.default_rng(0).normal(
        0, 1, (batch, 3, hw, hw)).astype(np.float32)
    out = model(Tensor(x))
    assert out.shape == (batch, num_classes)
    loss = softmax_cross_entropy(
        out, np.zeros(batch, dtype=np.int64))
    loss.backward()
    assert all(p.grad is not None for p in model.parameters())
    return out


class TestModels:
    def test_lenet_shapes(self):
        _forward_backward(LeNet5(num_classes=10), 10)

    def test_lenet_width_mult(self):
        small = LeNet5(width_mult=0.5)
        full = LeNet5(width_mult=1.0)
        assert (sum(p.size for p in small.parameters())
                < sum(p.size for p in full.parameters()))

    def test_resnet20_shapes(self):
        _forward_backward(resnet20(width_mult=0.5), 10)

    def test_resnet20_block_count(self):
        model = resnet20()
        assert len(model.blocks) == 9  # 3 stages x 3 basic blocks

    def test_resnet50_shapes(self):
        _forward_backward(
            resnet50(num_classes=20, width_mult=0.25, depth_mult=0.5), 20)

    def test_resnet50_bottleneck_expansion(self):
        model = resnet50(width_mult=0.25)
        assert model.classifier.in_features == 4 * 4 * 4  # width*4*4

    def test_efficientnet_shapes(self):
        model = EfficientNetB0Lite(num_classes=20, width_mult=0.25,
                                   depth_mult=0.5, stages=4)
        _forward_backward(model, 20)

    def test_efficientnet_stage_validation(self):
        with pytest.raises(ValueError):
            EfficientNetB0Lite(stages=9)

    def test_efficientnet_uses_relu6(self):
        model = EfficientNetB0Lite(num_classes=10, width_mult=0.25,
                                   stages=3)
        relus = [m for m in model.modules() if isinstance(m, QuantReLU)]
        assert relus and all(r.six for r in relus)

    def test_registry(self):
        for name in ("lenet5", "resnet20", "resnet50",
                     "efficientnet-b0-lite"):
            model = build_model(name, num_classes=10, width_mult=0.25,
                                depth_mult=0.5)
            assert model.parameters()

    def test_registry_unknown(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("alexnet", num_classes=10)

    def test_quantized_layer_enumeration(self):
        model = resnet20(width_mult=0.25)
        layers = model.quantized_layers()
        # stem + 9 blocks x 2 convs + 2 shortcut projections + classifier
        assert len(layers) == 1 + 18 + 2 + 1


class TestSyntheticData:
    def test_shapes_and_ranges(self):
        ds = cifar10_like(n_train=100, n_test=40)
        assert ds.x_train.shape == (100, 3, 32, 32)
        assert ds.x_test.shape == (40, 3, 32, 32)
        assert ds.num_classes == 10
        assert np.abs(ds.x_train).max() <= 1.0 + 1e-6
        assert ds.y_train.min() >= 0 and ds.y_train.max() < 10

    def test_balanced_classes(self):
        ds = cifar10_like(n_train=200, n_test=50)
        counts = np.bincount(ds.y_train, minlength=10)
        assert counts.min() >= 15

    def test_deterministic_given_seed(self):
        a = cifar10_like(n_train=50, n_test=20, seed=7)
        b = cifar10_like(n_train=50, n_test=20, seed=7)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = cifar10_like(n_train=50, n_test=20, seed=1)
        b = cifar10_like(n_train=50, n_test=20, seed=2)
        assert not np.allclose(a.x_train, b.x_train)

    def test_cifar100_classes(self):
        ds = cifar100_like(n_train=300, n_test=100, num_classes=20)
        assert ds.num_classes == 20

    def test_imagenet_like(self):
        ds = imagenet_like(n_train=120, n_test=60, num_classes=12)
        assert ds.num_classes == 12

    def test_load_dataset_registry(self):
        ds = load_dataset("cifar10", n_train=50, n_test=20)
        assert ds.name == "cifar10-like"
        with pytest.raises(ValueError):
            load_dataset("mnist")

    def test_validation(self):
        with pytest.raises(ValueError):
            generate("x", num_classes=1, n_train=10, n_test=10)
        with pytest.raises(ValueError):
            generate("x", num_classes=10, n_train=5, n_test=10)

    def test_task_is_learnable(self):
        """A small CNN must beat chance clearly but not saturate."""
        from repro.nn.layers import seed_init

        ds = cifar10_like(n_train=400, n_test=200, seed=3)
        seed_init(7)  # decouple init from test execution order
        model = LeNet5(width_mult=0.5)
        trainer = Trainer(model, TrainingConfig(epochs=4, batch_size=32,
                                                lr=0.05, seed=1))
        history = trainer.fit(ds.x_train, ds.y_train, ds.x_test,
                              ds.y_test)
        assert history.best_test_accuracy > 0.5
