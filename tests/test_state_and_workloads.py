"""Tests for model state snapshot/restore and workload extraction on
architectures with depthwise convolutions and residual paths."""

import numpy as np
import pytest

from repro.core import extract_workloads
from repro.models import EfficientNetB0Lite, resnet20
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    QuantReLU,
    Sequential,
    Tensor,
    no_grad,
)
from repro.nn.restrict import WeightRestriction


class TestStateDict:
    def _model(self):
        return Sequential(Conv2d(3, 4, 3, pad=1), BatchNorm2d(4),
                          QuantReLU())

    def test_roundtrip_restores_weights(self):
        model = self._model()
        state = model.state_dict()
        conv = model.quantized_layers()[0]
        original = conv.weight.data.copy()
        conv.weight.data += 1.0
        model.load_state_dict(state)
        np.testing.assert_array_equal(conv.weight.data, original)

    def test_snapshot_is_deep(self):
        model = self._model()
        state = model.state_dict()
        conv = model.quantized_layers()[0]
        conv.weight.data += 5.0
        # mutating the model must not corrupt the snapshot
        model.load_state_dict(state)
        assert np.abs(conv.weight.data).max() < 5.0

    def test_running_stats_restored(self):
        model = self._model()
        bn = [m for m in model.modules()
              if isinstance(m, BatchNorm2d)][0]
        x = np.random.default_rng(0).normal(2, 1, (8, 3, 6, 6)) \
            .astype(np.float32)
        model(Tensor(x))  # moves BN running stats and ReLU range
        state = model.state_dict()
        saved_mean = bn.running_mean.copy()
        model(Tensor(x + 10))
        model.load_state_dict(state)
        np.testing.assert_array_equal(bn.running_mean, saved_mean)

    def test_quantrelu_running_max_restored(self):
        model = self._model()
        relu = [m for m in model.modules()
                if isinstance(m, QuantReLU)][0]
        x = np.random.default_rng(1).normal(0, 1, (4, 3, 6, 6)) \
            .astype(np.float32)
        model(Tensor(x))
        state = model.state_dict()
        saved = relu.running_max
        model(Tensor(x * 100))
        assert relu.running_max != saved
        model.load_state_dict(state)
        assert relu.running_max == saved

    def test_pruning_mask_roundtrip(self):
        model = self._model()
        conv = model.quantized_layers()[0]
        conv.prune_smallest(0.5)
        state = model.state_dict()
        conv.weight_mask = None
        model.load_state_dict(state)
        assert conv.weight_mask is not None
        # and the reverse: a None mask snapshot clears a later mask
        fresh = self._model()
        clean_state = fresh.state_dict()
        fresh.quantized_layers()[0].prune_smallest(0.5)
        fresh.load_state_dict(clean_state)
        assert fresh.quantized_layers()[0].weight_mask is None


class TestResidualWorkloads:
    def test_resnet_workloads_extracted(self):
        model = resnet20(width_mult=0.25)
        x = np.random.default_rng(2).normal(0, 1, (2, 3, 32, 32)) \
            .astype(np.float32)
        workloads = extract_workloads(model, x)
        assert len(workloads) == len(model.quantized_layers())
        for workload in workloads:
            assert workload.activations is not None
            assert workload.activations.shape[0] == \
                workload.weights.shape[0]

    def test_efficientnet_depthwise_workloads(self):
        model = EfficientNetB0Lite(num_classes=10, width_mult=0.25,
                                   depth_mult=0.5, stages=3)
        x = np.random.default_rng(3).normal(0, 1, (2, 3, 32, 32)) \
            .astype(np.float32)
        workloads = extract_workloads(model, x)
        depthwise = [w for w in workloads
                     if w.name.startswith("DepthwiseConv2d")]
        assert depthwise
        for workload in depthwise:
            # depthwise matmul layout: (kh*kw, channels)
            kk = workload.weights.shape[0]
            assert kk in (9, 25)
            assert workload.activations.shape[0] == kk

    def test_restricted_model_workloads_respect_restriction(self):
        model = resnet20(width_mult=0.25)
        allowed = [0, 16, -16, 64, -64, 127, -127]
        model.set_weight_restriction(WeightRestriction(allowed))
        x = np.random.default_rng(4).normal(0, 1, (1, 3, 32, 32)) \
            .astype(np.float32)
        workloads = extract_workloads(model, x,
                                      capture_activations=False)
        for workload in workloads:
            assert set(np.unique(workload.weights)) <= set(allowed)

    def test_missing_forward_pass_raises(self):
        model = resnet20(width_mult=0.25)
        with pytest.raises(RuntimeError, match="forward"):
            extract_workloads(model, x_sample=None)
