"""Experiment-service tests: job lifecycle, failure paths, HTTP layer.

The :class:`~repro.service.jobs.JobManager` tests run everywhere (the
job layer is dependency-free); the HTTP tests skip cleanly when the
optional ``service`` extra (fastapi) or its test client transport
(httpx) is absent — mirroring the no-numba leg of the jit extra.

Pool-breakage tests rely on the ``fork`` start method: the forked
workers inherit the monkeypatched synthetic point runner and the
module-level sentinel path, so no real pipeline work runs.
"""

import json
import multiprocessing
import os
import threading
import time
from collections.abc import Mapping
from dataclasses import replace

import pytest

from repro.experiments import sweep as sweep_mod
from repro.service import JobManager, JobState, records_to_csv
from repro.service.jobs import JOB_ONLY_KEYS

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"

#: Sentinel path the crash-once runner uses (inherited by forked
#: pool workers); reset per-test via the fixtures below.
_CRASH_SENTINEL = [None]


def _echo_runner(point, context):
    """Synthetic per-point runner: no pipeline work, tiny payload."""
    value = (point.threshold or 0.0) + point.seed
    return {"payload": {"value": value},
            "metrics": {"accuracy": value, "n_weights": 1,
                        "power_opt_mw": value},
            "skipped": None}


def _slow_runner(point, context):
    time.sleep(0.25)
    return _echo_runner(point, context)


def _crash_once_runner(point, context):
    """Kills its worker the first time the 900-threshold point runs."""
    if point.threshold == 900.0:
        time.sleep(0.2)  # let the sibling point finish first
        if not os.path.exists(_CRASH_SENTINEL[0]):
            open(_CRASH_SENTINEL[0], "w").close()
            os._exit(1)
    return _echo_runner(point, context)


def _crash_always_runner(point, context):
    """Kills its worker every time the 900-threshold point runs."""
    if point.threshold == 900.0:
        time.sleep(0.2)
        os._exit(1)
    return _echo_runner(point, context)


SPEC = {"experiment": "fig8", "scale": "smoke",
        "thresholds": [None, 900.0]}


@pytest.fixture()
def echo_experiment(monkeypatch):
    monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8", _echo_runner)


@pytest.fixture()
def manager(tmp_path):
    mgr = JobManager(cache_dir=str(tmp_path / "cache"),
                     retry_backoff_s=0.01)
    yield mgr
    mgr.shutdown()


def _finish(mgr, status, timeout=60.0):
    assert mgr.wait(status["job_id"], timeout=timeout), \
        "job did not reach a terminal state in time"
    return mgr.status(status["job_id"])


class TestLifecycle:
    def test_submit_runs_to_done(self, manager, echo_experiment):
        submitted = manager.submit_mapping(SPEC)
        assert submitted["state"] in (JobState.QUEUED, JobState.RUNNING,
                                      JobState.DONE)
        status = _finish(manager, submitted)
        assert status["state"] == JobState.DONE
        assert status["points"] == {"total": 2, "done": 2, "cached": 0,
                                    "failed": 0, "remaining": 0,
                                    "precached": 0}
        assert status["duration_s"] >= 0
        result = manager.result(status["job_id"])
        assert result["n_rows"] == 2 and result["n_failed"] == 0
        assert {row["threshold"] for row in result["rows"]} \
            == {None, 900.0}

    def test_resubmission_is_served_from_cache(self, manager,
                                               echo_experiment):
        _finish(manager, manager.submit_mapping(SPEC))
        status = _finish(manager, manager.submit_mapping(SPEC))
        assert status["state"] == JobState.DONE
        assert status["points"]["precached"] == 2
        assert status["points"]["cached"] == 2

    def test_aggregated_result(self, manager, echo_experiment):
        spec = dict(SPEC, seeds=[0, 1])
        status = _finish(manager, manager.submit_mapping(spec))
        result = manager.result(status["job_id"], aggregated=True)
        assert result["n_rows"] == 4
        assert len(result["aggregated"]) == 2  # seed axis collapsed

    def test_list_jobs_and_stats(self, manager, echo_experiment):
        first = _finish(manager, manager.submit_mapping(SPEC))
        second = _finish(manager, manager.submit_mapping(SPEC))
        listed = manager.list_jobs()
        assert [job["job_id"] for job in listed] \
            == [second["job_id"], first["job_id"]]  # newest first
        stats = manager.stats()
        assert stats["counters"]["jobs_submitted"] == 2
        assert stats["counters"]["jobs_done"] == 2
        assert stats["counters"]["points_cached"] == 2
        assert stats["jobs"] == {JobState.DONE: 2}

    def test_unknown_job_id(self, manager):
        # One contract across the query surface: unknown ids return
        # None everywhere — wait() included, it must never raise.
        assert manager.status("nope") is None
        assert manager.result("nope") is None
        assert manager.wait("nope", timeout=0.1) is None

    def test_submit_after_shutdown_is_rejected(self, tmp_path,
                                               echo_experiment):
        mgr = JobManager(cache_dir=str(tmp_path))
        mgr.shutdown()
        mgr.shutdown()  # idempotent
        with pytest.raises(RuntimeError, match="shut down"):
            mgr.submit_mapping(SPEC)

    def test_startup_sweeps_stale_tmp_litter(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        litter = cache / ".0123456789abcdef-dead1"
        litter.write_bytes(b"half-written")
        old = time.time() - 7200
        os.utime(litter, (old, old))
        mgr = JobManager(cache_dir=str(cache))
        try:
            assert mgr.stale_tmp_swept == 1
            assert not litter.exists()
        finally:
            mgr.shutdown()


class TestValidation:
    def test_unknown_spec_key_is_rejected(self, manager):
        with pytest.raises(ValueError, match="unknown"):
            manager.submit_mapping(dict(SPEC, typo_key=1))

    def test_job_knobs_are_split_off_the_spec(self, manager,
                                              echo_experiment):
        body = dict(SPEC, jobs=1, char_jobs=1, max_retries=0,
                    timeout_s=60)
        assert set(JOB_ONLY_KEYS) >= {"jobs", "char_jobs",
                                      "max_retries", "timeout_s",
                                      "poison"}
        status = _finish(manager, manager.submit_mapping(body))
        assert status["state"] == JobState.DONE
        assert status["timeout_s"] == 60.0
        assert status["counters"]["max_retries"] == 0

    def test_bad_knobs_are_rejected(self, manager):
        with pytest.raises(ValueError, match="timeout_s"):
            manager.submit_mapping(dict(SPEC, timeout_s=0))
        with pytest.raises(ValueError, match="max_retries"):
            manager.submit_mapping(dict(SPEC, max_retries=-1))
        with pytest.raises(ValueError, match="poison"):
            manager.submit_mapping(dict(SPEC, poison=123))
        with pytest.raises(ValueError, match="object"):
            manager.submit_mapping(["not", "a", "mapping"])

    def test_missing_experiment_is_rejected(self, manager):
        with pytest.raises(ValueError, match="experiment"):
            manager.submit_mapping({"scale": "smoke"})


class TestFailurePaths:
    def test_poisoned_point_marks_job_partial(self, manager,
                                              echo_experiment):
        body = dict(SPEC, poison="threshold=900")
        status = _finish(manager, manager.submit_mapping(body))
        assert status["state"] == JobState.PARTIAL
        assert status["points"]["done"] == 1
        assert status["points"]["failed"] == 1
        (failure,) = status["failures"]
        assert "threshold=900" in failure["point"]
        assert failure["kind"] == "error"
        assert "poisoned point" in failure["error"]
        result = manager.result(status["job_id"])
        assert result["n_rows"] == 1 and result["n_failed"] == 1

    def test_poison_fires_before_the_cache(self, manager,
                                           echo_experiment):
        """A poisoned re-submission must still fail, even precached."""
        _finish(manager, manager.submit_mapping(SPEC))
        body = dict(SPEC, poison="threshold=900")
        status = _finish(manager, manager.submit_mapping(body))
        assert status["points"]["precached"] == 2
        assert status["state"] == JobState.PARTIAL

    def test_everything_poisoned_marks_job_failed(self, manager,
                                                  echo_experiment):
        body = dict(SPEC, poison="fig8 point")
        status = _finish(manager, manager.submit_mapping(body))
        assert status["state"] == JobState.FAILED
        assert status["points"]["done"] == 0
        assert manager.result(status["job_id"])["n_rows"] == 0
        health = manager.stats()
        assert health["counters"]["jobs_failed"] == 1

    def test_job_timeout_keeps_finished_rows(self, manager,
                                             monkeypatch):
        monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8",
                            _slow_runner)
        body = dict(SPEC, thresholds=[None, 900.0, 1800.0],
                    timeout_s=0.35)
        status = _finish(manager, manager.submit_mapping(body))
        assert status["state"] in (JobState.PARTIAL, JobState.FAILED)
        assert status["points"]["failed"] >= 1
        kinds = {failure["kind"] for failure in status["failures"]}
        assert kinds == {"timeout"}

    @pytest.mark.skipif(not _FORK, reason="needs fork start method")
    def test_pool_breakage_is_retried_and_recovers(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8",
                            _crash_once_runner)
        _CRASH_SENTINEL[0] = str(tmp_path / "crashed-once")
        mgr = JobManager(cache_dir=str(tmp_path / "cache"),
                         retry_backoff_s=0.01)
        try:
            body = dict(SPEC, jobs=2, max_retries=2)
            status = _finish(mgr, mgr.submit_mapping(body))
            assert status["state"] == JobState.DONE
            assert status["points"]["done"] == 2
            assert status["counters"]["retries"] >= 1
            assert mgr.stats()["counters"]["point_retries"] >= 1
        finally:
            mgr.shutdown()

    @pytest.mark.skipif(not _FORK, reason="needs fork start method")
    def test_retries_exhausted_marks_job_partial(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8",
                            _crash_always_runner)
        mgr = JobManager(cache_dir=str(tmp_path / "cache"),
                         retry_backoff_s=0.01)
        try:
            body = dict(SPEC, jobs=2, max_retries=1)
            status = _finish(mgr, mgr.submit_mapping(body))
            assert status["state"] == JobState.PARTIAL
            assert status["points"]["done"] == 1
            (failure,) = status["failures"]
            assert failure["kind"] == "pool"
            assert failure["attempts"] == 2  # first try + one retry
            assert status["counters"]["retries"] >= 1
        finally:
            mgr.shutdown()


class TestHealthWindow:
    """Degradation is scoped to recent failures, not the lifetime."""

    def test_failure_degrades_within_window(self, manager,
                                            echo_experiment):
        body = dict(SPEC, poison="fig8 point")
        _finish(manager, manager.submit_mapping(body))
        health = manager.health()
        assert health["status"] == "degraded"
        assert health["window"]["recent_failed"] == 1

    def test_degradation_expires_with_the_time_window(
            self, tmp_path, echo_experiment):
        mgr = JobManager(cache_dir=str(tmp_path / "cache"),
                         retry_backoff_s=0.01, health_window_s=0.3)
        try:
            body = dict(SPEC, poison="fig8 point")
            _finish(mgr, mgr.submit_mapping(body))
            assert mgr.health()["status"] == "degraded"
            deadline = time.monotonic() + 5.0
            while mgr.health()["status"] != "ok":
                assert time.monotonic() < deadline, \
                    "degradation never aged out of the time window"
                time.sleep(0.05)
            # ... but the lifetime counters keep it on the books.
            assert mgr.stats()["counters"]["jobs_failed"] == 1
        finally:
            mgr.shutdown()

    def test_healthy_jobs_push_failures_out_of_the_window(
            self, tmp_path, echo_experiment):
        mgr = JobManager(cache_dir=str(tmp_path / "cache"),
                         retry_backoff_s=0.01, health_window_jobs=2)
        try:
            _finish(mgr, mgr.submit_mapping(
                dict(SPEC, poison="fig8 point")))
            assert mgr.health()["status"] == "degraded"
            _finish(mgr, mgr.submit_mapping(SPEC))
            _finish(mgr, mgr.submit_mapping(dict(SPEC, seeds=[1])))
            assert mgr.health()["status"] == "ok"
            assert mgr.stats()["counters"]["jobs_failed"] == 1
        finally:
            mgr.shutdown()


class _SlowMetrics(Mapping):
    """A Mapping whose iteration stalls — stands in for a huge grid
    whose ``tidy()`` serialization is genuinely expensive."""

    def __init__(self, data, delay_s):
        self._data = dict(data)
        self._delay_s = delay_s

    def __getitem__(self, key):
        return self._data[key]

    def __iter__(self):
        time.sleep(self._delay_s)
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    def keys(self):
        time.sleep(self._delay_s)
        return self._data.keys()


class TestResultSerialization:
    def test_result_serializes_outside_the_lock(self, manager,
                                                echo_experiment):
        """A client downloading a big terminal grid must not block
        concurrent status polls: the row snapshot is taken under the
        manager lock, the tidy/aggregate serialization outside it."""
        status = _finish(manager, manager.submit_mapping(SPEC))
        job = manager.get(status["job_id"])
        job.rows = [replace(row, metrics=_SlowMetrics(row.metrics,
                                                      delay_s=0.4))
                    for row in job.rows]

        finished = threading.Event()
        payload = {}

        def _download():
            payload["result"] = manager.result(status["job_id"])
            finished.set()

        thread = threading.Thread(target=_download)
        thread.start()
        time.sleep(0.05)  # let result() snapshot and start tidying
        t0 = time.monotonic()
        assert manager.status(status["job_id"]) is not None
        elapsed = time.monotonic() - t0
        assert finished.wait(10.0), "result() never finished"
        thread.join()
        assert payload["result"]["n_rows"] == 2
        assert elapsed < 0.35, (
            f"status() blocked {elapsed:.2f}s behind result() "
            f"serialization — tidy must run outside the lock")


class TestCsv:
    def test_union_of_columns(self):
        text = records_to_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "1,2,"
        assert lines[2] == "3,,4"

    def test_empty_records(self):
        assert records_to_csv([]).strip() == ""


class TestWithoutFastapi:
    def test_import_repro_service_needs_no_fastapi(self):
        import repro.service  # noqa: F401 - the import IS the test

    def test_create_app_raises_with_install_hint(self):
        from repro.service import create_app, fastapi_available
        if fastapi_available():
            pytest.skip("fastapi installed; the hint path is moot")
        with pytest.raises(RuntimeError, match=r"\[service\]"):
            create_app()

    def test_serve_cli_errors_with_install_hint(self, capsys):
        from repro.service import fastapi_available
        from repro.service.cli import serve_main
        if fastapi_available():
            pytest.skip("fastapi installed; the hint path is moot")
        with pytest.raises(SystemExit):
            serve_main(["--port", "0"])
        assert "pip install" in capsys.readouterr().err


class TestHttpLayer:
    """End-to-end over ASGI; skips cleanly without the service extra."""

    @pytest.fixture()
    def client(self, tmp_path, echo_experiment):
        pytest.importorskip("fastapi")
        try:
            from fastapi.testclient import TestClient
        except ImportError:  # TestClient needs httpx
            pytest.skip("fastapi TestClient transport (httpx) missing")
        from repro.service.app import create_app

        app = create_app(cache_dir=str(tmp_path / "cache"),
                         retry_backoff_s=0.01)
        with TestClient(app) as client:
            yield client

    def _poll(self, client, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = client.get(f"/sweeps/{job_id}").json()
            if status["state"] in JobState.TERMINAL:
                return status
            time.sleep(0.05)
        raise AssertionError("job never reached a terminal state")

    def test_healthz(self, client):
        payload = client.get("/healthz").json()
        assert payload["status"] == "ok"
        assert "counters" in payload

    def test_submit_poll_result_roundtrip(self, client):
        response = client.post("/sweeps", json=SPEC)
        assert response.status_code == 202
        submitted = response.json()
        assert submitted["status_url"].endswith(submitted["job_id"])
        status = self._poll(client, submitted["job_id"])
        assert status["state"] == "done"
        result = client.get(f"/sweeps/{submitted['job_id']}/result")
        assert result.status_code == 200
        assert result.json()["n_rows"] == 2

    def test_resubmission_precached_over_http(self, client):
        first = client.post("/sweeps", json=SPEC).json()
        self._poll(client, first["job_id"])
        second = client.post("/sweeps", json=SPEC).json()
        status = self._poll(client, second["job_id"])
        assert status["points"]["precached"] == 2
        assert status["points"]["cached"] == 2

    def test_poisoned_job_is_partial_over_http(self, client):
        body = dict(SPEC, poison="threshold=900")
        submitted = client.post("/sweeps", json=body).json()
        status = self._poll(client, submitted["job_id"])
        assert status["state"] == "partial"
        result = client.get(
            f"/sweeps/{submitted['job_id']}/result").json()
        assert result["n_rows"] == 1
        assert result["failures"]

    def test_toml_submission(self, client):
        pytest.importorskip("tomllib")
        body = ('experiment = "fig8"\nscale = "smoke"\n'
                'thresholds = ["none", 900.0]\n')
        response = client.post(
            "/sweeps", content=body,
            headers={"content-type": "application/toml"})
        assert response.status_code == 202
        status = self._poll(client, response.json()["job_id"])
        assert status["points"]["total"] == 2

    def test_csv_result(self, client):
        submitted = client.post("/sweeps", json=SPEC).json()
        self._poll(client, submitted["job_id"])
        response = client.get(
            f"/sweeps/{submitted['job_id']}/result?format=csv")
        assert response.status_code == 200
        assert response.headers["content-type"].startswith("text/csv")
        assert "threshold" in response.text.splitlines()[0]

    def test_error_statuses(self, client):
        assert client.get("/sweeps/nope").status_code == 404
        assert client.get("/sweeps/nope/result").status_code == 404
        bad = client.post("/sweeps", json=dict(SPEC, typo=1))
        assert bad.status_code == 422
        garbage = client.post(
            "/sweeps", content="{not json",
            headers={"content-type": "application/json"})
        assert garbage.status_code == 422

    def test_result_conflict_while_running(self, client, monkeypatch):
        monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8",
                            _slow_runner)
        submitted = client.post("/sweeps", json=SPEC).json()
        response = client.get(
            f"/sweeps/{submitted['job_id']}/result")
        if response.status_code == 200:  # raced to completion
            pytest.skip("job finished before the conflict probe")
        assert response.status_code == 409
        self._poll(client, submitted["job_id"])

    def test_list_endpoint(self, client):
        submitted = client.post("/sweeps", json=SPEC).json()
        self._poll(client, submitted["job_id"])
        listed = client.get("/sweeps").json()
        assert listed["n_jobs"] >= 1
        assert any(job["job_id"] == submitted["job_id"]
                   for job in listed["jobs"])
