"""Tests for netlist construction and the arithmetic generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import NetlistBuilder, build_mac_unit
from repro.netlist.adder import kogge_stone_adder, ripple_carry_adder
from repro.netlist.gates import GateType, Netlist
from repro.netlist.multiplier import booth_multiplier, signed_array_multiplier
from repro.sim.logic import bus_inputs, evaluate, read_output_bus

int8s = st.integers(min_value=-128, max_value=127)


class TestNetlistStructure:
    def test_duplicate_input_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(ValueError, match="duplicate"):
            netlist.add_input("a")

    def test_fanin_must_exist(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        with pytest.raises(ValueError, match="out of range"):
            netlist.add_gate(GateType.INV, a + 5)

    def test_fanin_arity_checked(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        with pytest.raises(ValueError, match="expects 2 fanins"):
            netlist.add_gate(GateType.AND2, a)

    def test_source_via_add_gate_rejected(self):
        netlist = Netlist()
        with pytest.raises(ValueError):
            netlist.add_gate(GateType.INPUT)

    def test_duplicate_output_rejected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.mark_output("y", a)
        with pytest.raises(ValueError, match="duplicate"):
            netlist.mark_output("y", a)

    def test_num_gates_excludes_sources(self):
        builder = NetlistBuilder()
        a, b = builder.input_bus("x", 2)
        builder.and2(a, b)
        builder.const(True)
        assert builder.build().num_gates == 1

    def test_cell_counts(self):
        builder = NetlistBuilder()
        a, b = builder.input_bus("x", 2)
        builder.and2(a, b)
        builder.xor2(a, b)
        builder.xor2(a, b)
        assert builder.build().cell_counts() == {"AND2": 1, "XOR2": 2}

    def test_shared_constants(self):
        builder = NetlistBuilder()
        assert builder.const(False) == builder.const(False)
        assert builder.const(True) == builder.const(True)
        assert builder.const(True) != builder.const(False)


class TestGateFunctions:
    @pytest.mark.parametrize("gate,function", [
        ("and2", lambda a, b: a & b),
        ("or2", lambda a, b: a | b),
        ("nand2", lambda a, b: ~(a & b)),
        ("nor2", lambda a, b: ~(a | b)),
        ("xor2", lambda a, b: a ^ b),
        ("xnor2", lambda a, b: ~(a ^ b)),
    ])
    def test_two_input_gates(self, gate, function):
        builder = NetlistBuilder()
        a, b = builder.input_bus("x", 2)
        out = getattr(builder, gate)(a, b)
        builder.netlist.mark_output("y", out)
        netlist = builder.build()
        values_a = np.array([False, False, True, True])
        values_b = np.array([False, True, False, True])
        result = evaluate(netlist, {"x[0]": values_a, "x[1]": values_b})
        expected = function(values_a, values_b)
        np.testing.assert_array_equal(
            result[netlist.output_names["y"]], expected
        )

    def test_mux(self):
        builder = NetlistBuilder()
        s = builder.netlist.add_input("s")
        a = builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.netlist.mark_output("y", builder.mux2(s, a, b))
        netlist = builder.build()
        sel = np.array([False, False, True, True])
        av = np.array([True, False, True, False])
        bv = np.array([False, True, False, True])
        result = evaluate(netlist, {"s": sel, "a": av, "b": bv})
        np.testing.assert_array_equal(
            result[netlist.output_names["y"]], np.where(sel, bv, av)
        )

    def test_full_adder_truth_table(self):
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        c = builder.netlist.add_input("c")
        s, carry = builder.full_adder(a, b, c)
        builder.netlist.mark_output("s", s)
        builder.netlist.mark_output("carry", carry)
        netlist = builder.build()
        bits = np.arange(8)
        feed = {
            "a": (bits & 1).astype(bool),
            "b": ((bits >> 1) & 1).astype(bool),
            "c": ((bits >> 2) & 1).astype(bool),
        }
        values = evaluate(netlist, feed)
        total = (feed["a"].astype(int) + feed["b"].astype(int)
                 + feed["c"].astype(int))
        np.testing.assert_array_equal(
            values[netlist.output_names["s"]], (total & 1).astype(bool))
        np.testing.assert_array_equal(
            values[netlist.output_names["carry"]], total >= 2)


def _run_adder(generator, a_vals, b_vals, width=12, cin=None):
    builder = NetlistBuilder()
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    kwargs = {}
    if cin is not None:
        cin_net = builder.netlist.add_input("cin")
        kwargs["cin"] = cin_net
    total = generator(builder, a, b, **kwargs)
    builder.mark_output_bus("sum", total)
    netlist = builder.build()
    feed = bus_inputs("a", a_vals, width)
    feed.update(bus_inputs("b", b_vals, width))
    if cin is not None:
        feed["cin"] = np.asarray(cin, dtype=bool)
    values = evaluate(netlist, feed)
    return read_output_bus(netlist, values, "sum", width)


class TestAdders:
    @pytest.mark.parametrize("generator", [ripple_carry_adder,
                                           kogge_stone_adder])
    def test_random_sums(self, generator):
        rng = np.random.default_rng(7)
        a = rng.integers(-2048, 2048, 500)
        b = rng.integers(-2048, 2048, 500)
        got = _run_adder(generator, a, b)
        expected = ((a + b + 2048) % 4096) - 2048
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("generator", [ripple_carry_adder,
                                           kogge_stone_adder])
    def test_carry_in(self, generator):
        rng = np.random.default_rng(8)
        a = rng.integers(-2048, 2048, 200)
        b = rng.integers(-2048, 2048, 200)
        cin = rng.integers(0, 2, 200).astype(bool)
        got = _run_adder(generator, a, b, cin=cin)
        expected = ((a + b + cin + 2048) % 4096) - 2048
        np.testing.assert_array_equal(got, expected)

    def test_width_mismatch_rejected(self):
        builder = NetlistBuilder()
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 5)
        with pytest.raises(ValueError, match="width"):
            ripple_carry_adder(builder, a, b)
        with pytest.raises(ValueError, match="width"):
            kogge_stone_adder(builder, a, b)

    def test_kogge_stone_shallower_than_ripple(self):
        """The prefix adder must beat the ripple chain on logic depth."""
        from repro.cells import default_library
        from repro.sim.static_timing import static_max_delay

        lib = default_library()
        delays = {}
        for name, generator in (("ripple", ripple_carry_adder),
                                ("ks", kogge_stone_adder)):
            builder = NetlistBuilder()
            a = builder.input_bus("a", 22)
            b = builder.input_bus("b", 22)
            builder.mark_output_bus("sum", generator(builder, a, b))
            delays[name] = static_max_delay(builder.build(), lib)
        assert delays["ks"] < delays["ripple"] / 2


def _run_multiplier(generator, a_vals, w_vals):
    builder = NetlistBuilder()
    act = builder.input_bus("act", 8)
    weight = builder.input_bus("w", 8)
    product = generator(builder, act, weight)
    builder.mark_output_bus("product", product)
    netlist = builder.build()
    feed = bus_inputs("act", a_vals, 8)
    feed.update(bus_inputs("w", w_vals, 8))
    values = evaluate(netlist, feed)
    return read_output_bus(netlist, values, "product", 16)


class TestMultipliers:
    @pytest.mark.parametrize("generator", [booth_multiplier,
                                           signed_array_multiplier])
    def test_exhaustive_product(self, generator):
        a, w = np.meshgrid(np.arange(-128, 128), np.arange(-128, 128),
                           indexing="ij")
        a, w = a.ravel(), w.ravel()
        got = _run_multiplier(generator, a, w)
        np.testing.assert_array_equal(got, a * w)

    def test_booth_needs_even_width(self):
        builder = NetlistBuilder()
        act = builder.input_bus("act", 7)
        weight = builder.input_bus("w", 7)
        with pytest.raises(ValueError, match="even"):
            booth_multiplier(builder, act, weight)


class TestMacUnit:
    def test_default_widths(self):
        mac = build_mac_unit()
        assert mac.act_bits == 8
        assert mac.psum_bits == 22
        assert mac.style == "booth"

    def test_invalid_style(self):
        with pytest.raises(ValueError, match="style"):
            build_mac_unit(style="wallace")

    def test_narrow_product_rejected(self):
        with pytest.raises(ValueError, match="narrow"):
            build_mac_unit(product_bits=12)

    def test_narrow_psum_rejected(self):
        with pytest.raises(ValueError):
            build_mac_unit(psum_bits=8)

    @pytest.mark.parametrize("style", ["booth", "array"])
    def test_mac_arithmetic(self, style):
        mac = build_mac_unit(style=style)
        rng = np.random.default_rng(9)
        a = rng.integers(-128, 128, 1000)
        w = rng.integers(-128, 128, 1000)
        ps = rng.integers(-(1 << 21), 1 << 21, 1000)
        feed = bus_inputs("act", a, 8)
        feed.update(bus_inputs("w", w, 8))
        feed.update(bus_inputs("psum", ps, 22))
        values = evaluate(mac.full, feed)
        product = read_output_bus(mac.full, values, "product", 16)
        result = read_output_bus(mac.full, values, "result", 22)
        np.testing.assert_array_equal(product, a * w)
        expected = ((ps + a * w + (1 << 21)) % (1 << 22)) - (1 << 21)
        np.testing.assert_array_equal(result, expected)

    def test_multiplier_view_consistent_with_full(self):
        mac = build_mac_unit()
        rng = np.random.default_rng(10)
        a = rng.integers(-128, 128, 300)
        w = rng.integers(-128, 128, 300)
        feed = bus_inputs("act", a, 8)
        feed.update(bus_inputs("w", w, 8))
        values = evaluate(mac.multiplier, feed)
        product = read_output_bus(mac.multiplier, values, "product", 16)
        np.testing.assert_array_equal(product, a * w)

    def test_adder_view(self):
        mac = build_mac_unit()
        rng = np.random.default_rng(11)
        prod = rng.integers(-(1 << 15), 1 << 15, 300)
        ps = rng.integers(-(1 << 21), 1 << 21, 300)
        feed = bus_inputs("product", prod, 16)
        feed.update(bus_inputs("psum", ps, 22))
        values = evaluate(mac.adder, feed)
        result = read_output_bus(mac.adder, values, "result", 22)
        expected = ((ps + prod + (1 << 21)) % (1 << 22)) - (1 << 21)
        np.testing.assert_array_equal(result, expected)

    @settings(max_examples=30, deadline=None)
    @given(int8s, int8s, st.integers(-(1 << 21), (1 << 21) - 1))
    def test_mac_single_property(self, a, w, ps):
        mac = _CACHED_MAC
        feed = bus_inputs("act", np.array([a]), 8)
        feed.update(bus_inputs("w", np.array([w]), 8))
        feed.update(bus_inputs("psum", np.array([ps]), 22))
        values = evaluate(mac.full, feed)
        result = read_output_bus(mac.full, values, "result", 22)
        expected = ((ps + a * w + (1 << 21)) % (1 << 22)) - (1 << 21)
        assert result[0] == expected


_CACHED_MAC = build_mac_unit()
