"""Tests for the experiment formatting helpers (no training needed)."""

import numpy as np
import pytest

from repro.experiments import fig2, fig3, fig4, fig7, fig8, fig9
from repro.power.characterization import WeightPowerTable
from repro.power.estimator import PowerBreakdown
from repro.timing.profile import DelayProfile


def _power_table():
    weights = np.unique(np.concatenate([
        np.arange(-127, 128, 8), [-105, -2, 0, 2, 64, 105]]))
    power = 400.0 + 5.0 * np.abs(weights)
    return WeightPowerTable(
        weights=weights, power_uw=power, dynamic_uw=power - 10.0,
        leakage_uw=10.0, clock_period_ps=180.0)


class TestFig2Formatting:
    def test_series_mentions_threshold(self):
        result = fig2.Fig2Result(table=_power_table(), threshold_uw=900.0)
        text = fig2.format_series(result, step=2)
        assert "900 uW threshold" in text
        assert "weight" in text

    def test_summary_keys(self):
        table = _power_table()
        # ensure anchor values exist in this synthetic table
        assert -105 in table.weights
        result = fig2.Fig2Result(table=table, threshold_uw=900.0)
        summary = result.summary()
        assert {"min_uw", "max_uw", "zero_uw", "below_900"} <= set(summary)


class TestFig3Formatting:
    def test_histogram_counts_total(self):
        rng = np.random.default_rng(0)
        profile = DelayProfile(
            weight=-105,
            act_from=rng.integers(-128, 128, 500),
            act_to=rng.integers(-128, 128, 500),
            delays_ps=rng.uniform(30, 179, 500),
        )
        text = fig3.format_histogram(profile, time_scale=1.0)
        assert "weight -105" in text
        assert "max delay" in text


class TestFig4Formatting:
    def test_heatmap_dimensions(self):
        matrix = np.random.default_rng(1).random((256, 256))
        matrix /= matrix.sum()
        text = fig4.format_heatmap(matrix, cells=16, label="test")
        lines = text.splitlines()
        assert lines[0] == "test"
        assert len(lines) == 17
        assert all(len(line) == 16 for line in lines[1:])


def _bars():
    return {
        "LeNet-5-CIFAR-10": [
            fig7.Fig7Bar("Baseline", PowerBreakdown(250_000, 40_000),
                         0.92),
            fig7.Fig7Bar("Pruned", PowerBreakdown(180_000, 40_000),
                         0.91),
            fig7.Fig7Bar("Proposed", PowerBreakdown(80_000, 30_000),
                         0.89),
        ]
    }


class TestFig7Formatting:
    def test_chart_contains_stages(self):
        result = fig7.Fig7Result(bars=_bars())
        text = fig7.format_chart(result)
        for stage in ("Baseline", "Pruned", "Proposed"):
            assert stage in text
        assert "L" in text  # stacked leakage marker

    def test_reduction_vs_pruned(self):
        result = fig7.Fig7Result(bars=_bars())
        reduction = result.reduction_vs_pruned("LeNet-5-CIFAR-10")
        assert reduction == pytest.approx(100 * (1 - 110 / 220))


class TestFig8Fig9Formatting:
    def test_fig8_series_text(self):
        points = {
            "LeNet-5-CIFAR-10": [
                fig8.Fig8Point(None, 255, 0.91,
                               PowerBreakdown(200_000, 40_000)),
                fig8.Fig8Point(900.0, 86, 0.90,
                               PowerBreakdown(150_000, 40_000)),
            ]
        }
        text = fig8.format_series(fig8.Fig8Result(points=points))
        assert "None" in text and "900" in text
        assert "paper sweep" in text

    def test_fig9_series_text(self):
        points = {
            "LeNet-5-CIFAR-10": [
                fig9.Fig9Point(180.0, 48, 256, 0.91),
                fig9.Fig9Point(140.0, 30, 73, 0.55),
            ]
        }
        text = fig9.format_series(fig9.Fig9Result(points=points))
        assert "180" in text and "73" in text
        assert "paper sweep" in text

    def test_fig8_accuracies_accessor(self):
        points = {"x": [fig8.Fig8Point(None, 10, 0.5,
                                       PowerBreakdown(1, 1))]}
        assert fig8.Fig8Result(points=points).accuracies("x") == [0.5]
