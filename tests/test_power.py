"""Tests for power estimation, transitions, binning and characterization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import default_library
from repro.netlist import NetlistBuilder, build_mac_unit
from repro.power import (
    BinnedTransitions,
    PartialSumBinner,
    PowerEstimator,
    TransitionDistribution,
    WeightPowerCharacterizer,
    WeightPowerTable,
)
from repro.power.transitions import code_to_value, value_to_code


class TestPowerEstimator:
    def _toy_netlist(self):
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.netlist.mark_output("y", builder.xor2(a, b))
        return builder.build()

    def test_dynamic_power_units(self):
        """1 fJ per cycle at 1 GHz is exactly 1 uW."""
        lib = default_library()
        netlist = self._toy_netlist()
        est = PowerEstimator(lib, clock_period_ps=1000.0)
        rates = np.zeros(len(netlist.types))
        xor_net = netlist.output_names["y"]
        rates[xor_net] = 1.0
        expected = lib.energy_fj("XOR2") * 1.0
        assert est.dynamic_power_uw(netlist, rates) == pytest.approx(
            expected)

    def test_frequency(self):
        est = PowerEstimator(default_library(), clock_period_ps=180.0)
        assert est.frequency_ghz == pytest.approx(1000.0 / 180.0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            PowerEstimator(default_library(), clock_period_ps=0.0)

    def test_leakage_sum(self):
        lib = default_library()
        netlist = self._toy_netlist()
        est = PowerEstimator(lib)
        assert est.leakage_power_uw(netlist) == pytest.approx(
            lib.leakage_nw("XOR2") / 1000.0)

    def test_voltage_scaling_reduces_both(self):
        lib = default_library()
        netlist = self._toy_netlist()
        est = PowerEstimator(lib)
        rates = np.ones(len(netlist.types)) * 0.2
        nominal = est.power(netlist, rates)
        scaled = est.power(netlist, rates, vdd=0.7)
        assert scaled.dynamic_uw < nominal.dynamic_uw
        assert scaled.leakage_uw < nominal.leakage_uw

    def test_breakdown_add_and_scale(self):
        from repro.power.estimator import PowerBreakdown
        a = PowerBreakdown(10.0, 2.0)
        b = PowerBreakdown(5.0, 1.0)
        total = a + b
        assert total.total_uw == pytest.approx(18.0)
        halved = a.scaled(0.5, 0.25)
        assert halved.dynamic_uw == pytest.approx(5.0)
        assert halved.leakage_uw == pytest.approx(0.5)


class TestTransitionDistribution:
    def test_from_stream_counts(self):
        dist = TransitionDistribution.from_stream(
            np.array([0, 1, 1, 0]), n_codes=2)
        # transitions: 0->1, 1->1, 1->0
        assert dist.matrix[0, 1] == pytest.approx(1 / 3)
        assert dist.matrix[1, 1] == pytest.approx(1 / 3)
        assert dist.matrix[1, 0] == pytest.approx(1 / 3)
        assert dist.matrix[0, 0] == 0.0

    def test_from_pairs(self):
        dist = TransitionDistribution.from_pairs(
            np.array([0, 0]), np.array([1, 1]), n_codes=2)
        assert dist.matrix[0, 1] == pytest.approx(1.0)

    def test_codes_out_of_range(self):
        with pytest.raises(ValueError):
            TransitionDistribution.from_stream(np.array([0, 5]), n_codes=2)

    def test_normalization(self):
        dist = TransitionDistribution(np.ones((4, 4)))
        assert dist.matrix.sum() == pytest.approx(1.0)

    def test_negative_mass_rejected(self):
        matrix = np.ones((3, 3))
        matrix[0, 0] = -1.0
        with pytest.raises(ValueError):
            TransitionDistribution(matrix)

    def test_diagonal_structure(self):
        """Fig. 4a: near-diagonal transitions dominate."""
        dist = TransitionDistribution.diagonal(256, bandwidth=12.0)
        assert dist.diagonal_mass(16) > 0.6
        uniform = TransitionDistribution.uniform(256)
        assert dist.diagonal_mass(16) > 3 * uniform.diagonal_mass(16)

    def test_sampling_respects_support(self):
        matrix = np.zeros((4, 4))
        matrix[2, 3] = 1.0
        dist = TransitionDistribution(matrix)
        f, t = dist.sample(50, np.random.default_rng(0))
        assert (f == 2).all() and (t == 3).all()

    def test_marginals_sum_to_one(self):
        dist = TransitionDistribution.diagonal(16)
        assert dist.marginal_from().sum() == pytest.approx(1.0)
        assert dist.marginal_to().sum() == pytest.approx(1.0)

    def test_restricted(self):
        dist = TransitionDistribution.uniform(4)
        reduced = dist.restricted(np.array([0, 1]))
        assert reduced.matrix[2:, :].sum() == 0.0
        assert reduced.matrix[:, 2:].sum() == 0.0
        assert reduced.matrix.sum() == pytest.approx(1.0)

    def test_restricted_to_nothing_raises(self):
        matrix = np.zeros((4, 4))
        matrix[2, 3] = 1.0
        dist = TransitionDistribution(matrix)
        with pytest.raises(ValueError):
            dist.restricted(np.array([0]))

    def test_value_code_roundtrip(self):
        values = np.arange(-128, 128)
        np.testing.assert_array_equal(
            code_to_value(value_to_code(values)), values)

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            value_to_code(np.array([200]), bits=8)
        with pytest.raises(ValueError):
            code_to_value(np.array([300]), bits=8)


class TestPartialSumBinner:
    def _observed(self, n=5000, seed=0):
        rng = np.random.default_rng(seed)
        return rng.integers(-(1 << 21), 1 << 21, n)

    def test_fit_and_assign(self):
        binner = PartialSumBinner(n_bins=10).fit(
            self._observed(), rng=np.random.default_rng(1))
        bins = binner.assign(self._observed(200, seed=2))
        assert bins.min() >= 0 and bins.max() < 10

    def test_assignment_minimizes_bit_distance(self):
        binner = PartialSumBinner(n_bins=8).fit(
            self._observed(), rng=np.random.default_rng(1))
        from repro.sim.logic import int_to_bits
        value = np.array([12345])
        assigned = binner.assign(value)[0]
        bits = int_to_bits(value, 22).astype(float)[0]
        distances = np.abs(binner._centroids - bits).sum(axis=1)
        assert assigned == distances.argmin()

    def test_too_few_observations(self):
        binner = PartialSumBinner(n_bins=50)
        with pytest.raises(ValueError):
            binner.fit(np.arange(10))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PartialSumBinner().assign(np.array([1]))

    def test_sample_members_come_from_bin(self):
        binner = PartialSumBinner(n_bins=5).fit(
            self._observed(), rng=np.random.default_rng(3))
        ids = np.array([0, 1, 2, 3, 4] * 10)
        members = binner.sample_members(ids, np.random.default_rng(4))
        # Each sampled value must be one of the exemplars recorded for
        # the requested bin.  (Centroids drift during the single-pass
        # fit, so re-assignment is not guaranteed to be identical.)
        for value, bin_id in zip(members, ids):
            assert value in binner._exemplars[bin_id]

    def test_bin_sizes_cover_observations(self):
        observed = self._observed(3000)
        binner = PartialSumBinner(n_bins=10).fit(
            observed, rng=np.random.default_rng(5))
        # every observation lands in some bin, plus the n_bins seeds
        assert binner.bin_sizes().sum() == observed.size + 10
        assert (binner.bin_sizes() >= 1).all()

    def test_min_bins(self):
        with pytest.raises(ValueError):
            PartialSumBinner(n_bins=1)


class TestBinnedTransitions:
    def test_from_stream_and_sampling(self):
        rng = np.random.default_rng(6)
        stream = rng.integers(-(1 << 20), 1 << 20, 4000)
        binner = PartialSumBinner(n_bins=8).fit(stream, rng=rng)
        binned = BinnedTransitions.from_stream(binner, stream)
        f, t = binned.sample_values(100, rng)
        assert f.shape == t.shape == (100,)
        half = 1 << 21
        assert (np.abs(f) <= half).all() and (np.abs(t) <= half).all()

    def test_size_mismatch_rejected(self):
        rng = np.random.default_rng(7)
        stream = rng.integers(-(1 << 20), 1 << 20, 2000)
        binner = PartialSumBinner(n_bins=8).fit(stream, rng=rng)
        wrong = TransitionDistribution.uniform(9)
        with pytest.raises(ValueError):
            BinnedTransitions(binner, wrong)


def _small_table():
    return WeightPowerTable(
        weights=np.array([-3, -1, 0, 1, 2]),
        power_uw=np.array([900.0, 600.0, 150.0, 610.0, 700.0]),
        dynamic_uw=np.array([890.0, 590.0, 140.0, 600.0, 690.0]),
        leakage_uw=10.0,
        clock_period_ps=180.0,
    )


class TestWeightPowerTable:
    def test_power_lookup(self):
        table = _small_table()
        assert table.power_of(0) == pytest.approx(150.0)
        with pytest.raises(KeyError):
            table.power_of(5)

    def test_dynamic_interpolation(self):
        table = _small_table()
        with pytest.raises(KeyError):
            table.dynamic_of(-2)
        interp = table.dynamic_of(-2, interpolate=True)
        assert 590.0 < interp < 890.0

    def test_select_below_keeps_zero(self):
        table = _small_table()
        selected = table.select_below(100.0)
        np.testing.assert_array_equal(selected, [0])

    def test_select_below_threshold(self):
        table = _small_table()
        selected = table.select_below(650.0)
        np.testing.assert_array_equal(selected, [-1, 0, 1])

    def test_count_below(self):
        assert _small_table().count_below(650.0) == 3

    def test_roundtrip_save_load(self, tmp_path):
        table = _small_table()
        path = tmp_path / "table.json"
        table.save(path)
        loaded = WeightPowerTable.load(path)
        np.testing.assert_array_equal(loaded.weights, table.weights)
        np.testing.assert_allclose(loaded.power_uw, table.power_uw)
        assert loaded.leakage_uw == table.leakage_uw

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            WeightPowerTable(
                weights=np.array([0, 1]),
                power_uw=np.array([1.0]),
                dynamic_uw=np.array([1.0]),
                leakage_uw=0.0,
                clock_period_ps=180.0,
            )


@pytest.fixture(scope="module")
def ci_characterization():
    """Small but real characterization shared across tests."""
    mac = build_mac_unit()
    lib = default_library()
    rng = np.random.default_rng(0)
    act_dist = TransitionDistribution.diagonal(256)
    stream = rng.integers(-(1 << 18), 1 << 18, 4000)
    binner = PartialSumBinner(n_bins=10).fit(stream, rng=rng)
    binned = BinnedTransitions.from_stream(binner, stream)
    char = WeightPowerCharacterizer(
        mac, lib, act_dist, binned, n_samples=400)
    table = char.characterize([-105, -64, -2, 0, 2, 5, 64, 105, 127])
    return table


class TestCharacterization:
    def test_zero_weight_is_cheapest(self, ci_characterization):
        table = ci_characterization
        assert table.power_of(0) == table.power_uw.min()

    def test_calibration_anchor(self, ci_characterization):
        """The most expensive weight is pinned to the Fig. 2 peak."""
        assert ci_characterization.power_uw.max() == pytest.approx(1066.0)

    def test_digit_dense_weights_expensive(self, ci_characterization):
        """Fig. 2 anchor ordering: -105 costs much more than -2."""
        table = ci_characterization
        assert table.power_of(-105) > table.power_of(-2)
        assert table.power_of(105) > table.power_of(64)

    def test_powers_positive_and_bounded(self, ci_characterization):
        table = ci_characterization
        assert (table.power_uw > 0).all()
        assert (table.power_uw <= 1066.0 + 1e-6).all()

    def test_energy_scale_recorded(self, ci_characterization):
        assert ci_characterization.energy_scale > 0
