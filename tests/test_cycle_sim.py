"""Tests for the cycle-accurate systolic-array reference simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.systolic import SystolicArray, SystolicConfig
from repro.systolic.cycle_sim import CycleAccurateArray


class TestCycleAccurateArray:
    def test_matches_matmul(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-127, 128, (8, 5))
        acts = rng.integers(-128, 128, (8, 12))
        outputs, __ = CycleAccurateArray().run_tile(weights, acts)
        np.testing.assert_array_equal(outputs, weights.T @ acts)

    def test_matches_fast_model(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(-127, 128, (16, 10))
        acts = rng.integers(-128, 128, (16, 30))
        slow, __ = CycleAccurateArray().run_tile(weights, acts)
        fast = SystolicArray().run_layer(weights, acts)
        np.testing.assert_array_equal(slow, fast)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 12), st.integers(1, 25),
           st.integers(0, 2 ** 31 - 1))
    def test_matmul_property(self, rows, cols, m, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, (rows, cols))
        acts = rng.integers(-128, 128, (rows, m))
        outputs, __ = CycleAccurateArray().run_tile(weights, acts)
        np.testing.assert_array_equal(outputs, weights.T @ acts)

    def test_tile_larger_than_array_rejected(self):
        array = CycleAccurateArray(SystolicConfig(rows=4, cols=4))
        with pytest.raises(ValueError, match="exceeds"):
            array.run_tile(np.zeros((8, 2)), np.zeros((8, 3)))

    def test_row_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            CycleAccurateArray().run_tile(np.zeros((4, 2)),
                                          np.zeros((5, 3)))

    def test_traced_activation_stream_is_skewed_input(self):
        rng = np.random.default_rng(2)
        weights = rng.integers(-127, 128, (4, 3))
        acts = rng.integers(-128, 128, (4, 6))
        __, traces = CycleAccurateArray().run_tile(
            weights, acts, trace_pes=((2, 1),))
        trace = traces[0]
        seen = [a for a in trace.activations if a != 0]
        # Row 2 sees exactly its activation stream (idle cycles are 0;
        # zero-valued operands inside the stream are legitimate, so only
        # verify the non-zero subsequence).
        expected = [a for a in acts[2].tolist() if a != 0]
        assert seen == expected

    def test_traced_psums_match_column_prefix_sums(self):
        rng = np.random.default_rng(3)
        weights = rng.integers(1, 50, (3, 2))      # nonzero operands
        acts = rng.integers(1, 50, (3, 5))
        __, traces = CycleAccurateArray().run_tile(
            weights, acts, trace_pes=((2, 0),))
        trace = traces[0]
        # PE (2, 0) receives, for each stream position t, the partial sum
        # of rows 0..1: w[0,0]*a[0,t] + w[1,0]*a[1,t].
        expected = (weights[0, 0] * acts[0] + weights[1, 0] * acts[1])
        nonzero = [p for p in trace.psums_in if p != 0]
        assert nonzero == expected.tolist()

    def test_fast_model_stats_streams_match_cycle_reference(self):
        """The tile-level stats collector feeds the same psum sequences a
        literal cycle simulation produces."""
        from repro.systolic.stats import TransitionStatsCollector

        rng = np.random.default_rng(4)
        weights = rng.integers(1, 30, (4, 1))
        acts = rng.integers(1, 30, (4, 8))

        # fast path: cumulative sums per column
        fast = np.cumsum(weights[:, 0:1] * acts, axis=0)
        # slow path: psum *inputs* of each PE in rows 1..n, plus the
        # bottom output row equal the same prefix sums
        __, traces = CycleAccurateArray().run_tile(
            weights, acts,
            trace_pes=tuple((i, 0) for i in range(1, 4)))
        for row, trace in zip(range(1, 4), traces):
            nonzero = [p for p in trace.psums_in if p != 0]
            assert nonzero == fast[row - 1].tolist()
