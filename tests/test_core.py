"""Tests for the PowerPruning core: workloads, pruning, searches,
voltage scaling and reporting."""

import numpy as np
import pytest

from repro.core import (
    LayerWorkload,
    PipelineConfig,
    PowerPruner,
    PowerPruningReport,
    extract_workloads,
    format_table1,
    magnitude_prune,
    power_threshold_search,
    scale_voltage,
)
from repro.core.power_selection import PowerSelectionOutcome
from repro.core.workloads import largest_conv_workloads
from repro.data import cifar10_like
from repro.models import LeNet5
from repro.nn import Tensor, Trainer, TrainingConfig
from repro.power.characterization import WeightPowerTable
from repro.power.estimator import PowerBreakdown
from repro.systolic import SystolicConfig


@pytest.fixture(scope="module")
def trained_lenet():
    dataset = cifar10_like(n_train=300, n_test=120, seed=5)
    model = LeNet5(width_mult=0.5)
    trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=32,
                                            lr=0.05))
    trainer.fit(dataset.x_train, dataset.y_train)
    accuracy = trainer.evaluate(dataset.x_test, dataset.y_test)
    return model, dataset, accuracy


class TestWorkloads:
    def test_extract_all_layers(self, trained_lenet):
        model, dataset, __ = trained_lenet
        workloads = extract_workloads(model, dataset.x_test[:4])
        assert len(workloads) == 5  # 2 convs + 3 dense
        for workload in workloads:
            k, n = workload.weights.shape
            assert workload.schedule.k == k
            assert workload.schedule.n == n

    def test_activation_matrices_align(self, trained_lenet):
        model, dataset, __ = trained_lenet
        workloads = extract_workloads(model, dataset.x_test[:4])
        for workload in workloads:
            assert workload.activations is not None
            assert workload.activations.shape[0] == \
                workload.weights.shape[0]
            assert np.abs(workload.activations).max() <= 128

    def test_capture_can_be_disabled(self, trained_lenet):
        model, dataset, __ = trained_lenet
        workloads = extract_workloads(model, dataset.x_test[:2],
                                      capture_activations=False)
        assert all(w.activations is None for w in workloads)

    def test_weights_are_int8_codes(self, trained_lenet):
        model, dataset, __ = trained_lenet
        workloads = extract_workloads(model, dataset.x_test[:2],
                                      capture_activations=False)
        for workload in workloads:
            assert workload.weights.min() >= -127
            assert workload.weights.max() <= 127

    def test_largest_conv_selection(self, trained_lenet):
        model, dataset, __ = trained_lenet
        workloads = extract_workloads(model, dataset.x_test[:2],
                                      capture_activations=False)
        top = largest_conv_workloads(workloads, top=2)
        assert len(top) == 2
        assert top[0].macs >= top[1].macs
        assert top[0].macs == max(w.macs for w in workloads)


class TestMagnitudePrune:
    def test_sparsity_achieved(self):
        model = LeNet5(width_mult=0.5)
        sparsities = magnitude_prune(model, 0.6)
        assert sparsities  # at least one layer pruned
        for sparsity in sparsities.values():
            assert sparsity == pytest.approx(0.6, abs=0.1)

    def test_last_layer_skipped(self):
        model = LeNet5(width_mult=0.5)
        magnitude_prune(model, 0.5)
        assert model.quantized_layers()[-1].weight_mask is None

    def test_zero_codes_after_pruning(self):
        model = LeNet5(width_mult=0.5)
        magnitude_prune(model, 0.7)
        layer = model.quantized_layers()[0]
        codes, __ = layer.quantized_weights()
        assert (codes == 0).mean() >= 0.6


def _toy_power_table():
    weights = np.arange(-127, 128)
    power = 400.0 + 5.0 * np.abs(weights)
    power[127] = 150.0  # zero weight cheapest
    return WeightPowerTable(
        weights=weights, power_uw=power, dynamic_uw=power - 10.0,
        leakage_uw=10.0, clock_period_ps=180.0)


class TestPowerThresholdSearch:
    def _retrain_stub(self, accuracies):
        """Deterministic retrain function returning queued accuracies."""
        queue = list(accuracies)

        def retrain(model):
            return queue.pop(0) if queue else 0.0

        return retrain

    def test_accepts_until_drop(self):
        model = LeNet5(width_mult=0.25)
        table = _toy_power_table()
        outcome = power_threshold_search(
            model, table, self._retrain_stub([0.90, 0.89, 0.70]),
            baseline_accuracy=0.90,
            thresholds=(900.0, 850.0, 800.0), max_drop=0.03)
        assert outcome.threshold_uw == 850.0
        assert len(outcome.history) == 3
        # the model keeps the accepted restriction
        layer = model.quantized_layers()[0]
        assert layer.weight_restriction is not None
        assert outcome.n_weights == table.select_below(850.0).size

    def test_all_fail_returns_unrestricted(self):
        model = LeNet5(width_mult=0.25)
        table = _toy_power_table()
        outcome = power_threshold_search(
            model, table, self._retrain_stub([0.10]),
            baseline_accuracy=0.90, thresholds=(900.0, 850.0),
            max_drop=0.03)
        assert outcome.threshold_uw is None
        assert outcome.accuracy == 0.90
        assert model.quantized_layers()[0].weight_restriction is None

    def test_history_records_counts(self):
        model = LeNet5(width_mult=0.25)
        table = _toy_power_table()
        outcome = power_threshold_search(
            model, table, self._retrain_stub([0.9, 0.9]),
            baseline_accuracy=0.9, thresholds=(900.0, 800.0),
            max_drop=0.05)
        thresholds = [h[0] for h in outcome.history]
        counts = [h[1] for h in outcome.history]
        assert thresholds == [900.0, 800.0]
        assert counts[0] > counts[1]


class TestVoltageScaling:
    def test_table1_anchor(self):
        outcome = scale_voltage(140.0, 180.0)
        assert outcome.vdd == 0.71
        assert outcome.delay_reduction_ps == pytest.approx(40.0)
        assert outcome.scaling_factor_label == "0.71/0.8"

    def test_no_slack(self):
        outcome = scale_voltage(180.0, 180.0)
        assert outcome.vdd == 0.8
        assert outcome.dynamic_scale == pytest.approx(1.0)

    def test_scales_below_one(self):
        outcome = scale_voltage(150.0, 180.0)
        assert outcome.dynamic_scale < 1.0
        assert outcome.leakage_scale < outcome.dynamic_scale


class TestReport:
    def _report(self):
        def pb(dyn, leak):
            return PowerBreakdown(dynamic_uw=dyn, leakage_uw=leak)

        return PowerPruningReport(
            network="lenet5", dataset="cifar10",
            accuracy_orig=0.807, accuracy_prop=0.784,
            power_std_orig=pb(240_000, 41_600),
            power_std_prop=pb(180_000, 41_600),
            power_std_prop_vs=pb(120_000, 32_100),
            power_opt_orig=pb(270_000, 10_400),
            power_opt_prop=pb(90_000, 10_400),
            power_opt_prop_vs=pb(63_000, 10_100),
            n_selected_weights=32, n_selected_activations=176,
            max_delay_reduction_ps=40.0, voltage_label="0.71/0.8",
        )

    def test_reduction_columns(self):
        report = self._report()
        assert report.reduction_std == pytest.approx(46.0, abs=1.0)
        assert report.reduction_opt == pytest.approx(73.9, abs=1.0)

    def test_vs_contribution_positive(self):
        report = self._report()
        assert report.vs_contribution_std > 0
        assert report.vs_contribution_opt > 0

    def test_format_table(self):
        table = format_table1([self._report()])
        assert "lenet5-cifar10" in table
        assert "0.71/0.8" in table
        assert "Wei." in table

    def test_row_width_matches_header(self):
        from repro.core.report import TABLE1_HEADER
        assert len(self._report().row()) == len(TABLE1_HEADER)


@pytest.mark.slow
class TestPipelineEndToEnd:
    def test_lenet_smoke_run(self):
        config = PipelineConfig(
            network="lenet5", dataset="cifar10", width_mult=0.5,
            n_train=500, n_test=200, baseline_epochs=4, retrain_epochs=1,
            char_weight_step=16, char_samples=400,
            timing_transitions=2000, n_restarts=3,
        )
        report = PowerPruner(config).run()
        # The paper's qualitative claims at any scale:
        assert report.accuracy_orig > 0.5
        assert report.reduction_opt > 20.0
        assert report.reduction_std > 10.0
        assert report.reduction_opt > report.reduction_std
        assert report.power_opt_orig.total_uw < \
            report.power_std_orig.total_uw
        assert report.n_selected_weights >= 1
        assert 0 < report.max_delay_reduction_ps <= 80.0
