"""Tests for the experiment harness (configs, runner, figure modules)."""

import numpy as np
import pytest

from repro.experiments.config import (
    NETWORK_SPECS,
    NETWORK_TRAINING,
    SCALES,
    get_scale,
    pipeline_config,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments import fig2, fig3, fig4, table1


class TestScaleConfig:
    def test_all_scales_defined(self):
        assert set(SCALES) == {"smoke", "ci", "paper"}

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_paper_scale_matches_paper_parameters(self):
        paper = get_scale("paper")
        assert paper.char_weight_step == 1      # all 255 weight values
        assert paper.char_samples == 10000      # Sec. III-A3
        assert paper.timing_transitions is None  # full 2^16 enumeration
        assert paper.n_restarts == 20            # Sec. IV
        assert paper.width_mult == 1.0

    def test_scales_are_ordered_by_fidelity(self):
        smoke, ci, paper = (get_scale(s) for s in ("smoke", "ci",
                                                   "paper"))
        assert smoke.char_samples < ci.char_samples < paper.char_samples
        assert smoke.n_train < ci.n_train < paper.n_train

    def test_four_network_specs(self):
        assert len(NETWORK_SPECS) == 4
        names = [spec.network for spec in NETWORK_SPECS]
        assert names == ["lenet5", "resnet20", "resnet50",
                         "efficientnet-b0-lite"]
        datasets = [spec.dataset for spec in NETWORK_SPECS]
        assert datasets == ["cifar10", "cifar10", "cifar100", "imagenet"]

    def test_pipeline_config_propagates_scale(self):
        config = pipeline_config(NETWORK_SPECS[0], "smoke")
        smoke = get_scale("smoke")
        assert config.n_train == smoke.n_train
        assert config.char_samples == smoke.char_samples
        assert config.network == "lenet5"

    def test_per_network_training_overrides(self):
        assert set(NETWORK_TRAINING) == {spec.network
                                         for spec in NETWORK_SPECS}
        config = pipeline_config(NETWORK_SPECS[1], "smoke")
        assert config.lr == NETWORK_TRAINING["resnet20"]["lr"]


class TestPaperReferenceData:
    def test_table1_reference_rows(self):
        assert set(table1.PAPER_TABLE1) == {spec.label
                                            for spec in NETWORK_SPECS}
        lenet = table1.PAPER_TABLE1["LeNet-5-CIFAR-10"]
        assert lenet["opt_red"] == 73.9  # the headline number
        assert lenet["voltage"] == "0.71/0.8"

    def test_fig2_anchors(self):
        assert fig2.PAPER_ANCHORS_UW[-105] == 1066.0
        assert fig2.PAPER_ANCHORS_UW[-2] == 596.0

    def test_fig3_anchors(self):
        assert fig3.PAPER_MAX_DELAY_PS[-105] == 179.0
        assert fig3.PAPER_MAX_DELAY_PS[64] == 134.0


@pytest.mark.slow
class TestExperimentContext:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(NETWORK_SPECS[0], "smoke", seed=1)

    def test_stages_are_cached(self, context):
        assert context.power_table is context.power_table
        assert context.stats is context.stats
        assert context.model is context.model

    def test_baseline_accuracies_recorded(self, context):
        assert 0.0 <= context.accuracy_orig <= 1.0
        assert 0.0 <= context.accuracy_pruned <= 1.0

    def test_reset_model_clears_restrictions(self, context):
        from repro.nn.restrict import WeightRestriction

        model = context.model
        model.set_weight_restriction(WeightRestriction([0, 1]))
        model = context.reset_model()
        assert all(l.weight_restriction is None
                   for l in model.quantized_layers())

    def test_timing_table_cached_by_candidates(self, context):
        weights = context.power_table.select_below(900.0)
        first = context.timing_table(weights)
        second = context.timing_table(list(weights))
        assert first is second


@pytest.mark.slow
class TestFigureRuns:
    def test_fig3_smoke(self):
        result = fig3.run("smoke")
        delays = result.max_delays()
        assert delays[-105] == pytest.approx(180.0, abs=1.0)
        assert delays[64] < delays[-105]

    def test_fig2_and_fig4_share_context_shape(self):
        result = fig2.run("smoke")
        table = result.table
        assert table.power_of(0) == table.power_uw.min()
        assert table.power_uw.max() == pytest.approx(1066.0)

        result4 = fig4.run("smoke")
        summary = result4.summary()
        assert summary["act_diagonal_mass_16"] > 0.2
        assert result4.psum_binned.distribution.n_codes == 50
