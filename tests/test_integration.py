"""Cross-module integration tests and method-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import default_library
from repro.netlist import build_mac_unit
from repro.power.characterization import WeightPowerTable
from repro.sim.dynamic_timing import (
    dynamic_arrival_times,
    dynamic_delays,
    output_bus_arrivals,
)
from repro.sim.logic import bus_inputs
from repro.sim.static_timing import static_max_delay
from repro.systolic import (
    OPTIMIZED_HW,
    STANDARD_HW,
    ArrayPowerModel,
    MacPowerParams,
    SystolicConfig,
    schedule_matmul,
)
from repro.timing import DelaySelector, WeightDelayProfiler, \
    WeightTimingTable


@pytest.fixture(scope="module")
def mac():
    return build_mac_unit()


@pytest.fixture(scope="module")
def lib():
    return default_library()


class TestTimingComposition:
    """The paper's Fig. 5 split analysis vs ground truth."""

    def test_composition_upper_bounds_full_mac_dta(self, mac, lib):
        """Mult-DTA + adder-STA must never be optimistic.

        The composition replaces the adder's per-transition delay with
        its static worst case, so for any transition the composed delay
        must be at least the true full-MAC dynamic delay.
        """
        profiler = WeightDelayProfiler(mac, lib)
        rng = np.random.default_rng(0)
        n = 400
        act_from = rng.integers(-128, 128, n)
        act_to = rng.integers(-128, 128, n)
        psum = rng.integers(-(1 << 21), 1 << 21, n)

        for weight in (-105, 7, 64):
            composed = profiler.delays(weight, act_from, act_to)
            before = bus_inputs("act", act_from, 8)
            before.update(bus_inputs("w", np.full(n, weight), 8))
            before.update(bus_inputs("psum", psum, 22))
            after = bus_inputs("act", act_to, 8)
            after.update(bus_inputs("w", np.full(n, weight), 8))
            after.update(bus_inputs("psum", psum, 22))
            true_delay = dynamic_delays(mac.full, lib, before, after)
            assert (composed >= true_delay - 1e-9).all()

    def test_composition_below_full_sta(self, mac, lib):
        """Per-weight dynamic delays never exceed the static bound."""
        profiler = WeightDelayProfiler(mac, lib)
        sta = static_max_delay(mac.full, lib)
        rng = np.random.default_rng(1)
        act_from = rng.integers(-128, 128, 500)
        act_to = rng.integers(-128, 128, 500)
        for weight in (-105, 127, 3):
            delays = profiler.delays(weight, act_from, act_to)
            assert delays.max() <= sta + profiler.model.psum_path_ps

    def test_product_stability_for_fixed_point_weights(self, mac, lib):
        """Weight 1 keeps the product equal to the activation: only the
        low product byte can switch, bounding its delay."""
        rng = np.random.default_rng(2)
        act_from = rng.integers(-128, 128, 300)
        act_to = rng.integers(-128, 128, 300)
        before = bus_inputs("act", act_from, 8)
        before.update(bus_inputs("w", np.ones(300, dtype=np.int64), 8))
        after = bus_inputs("act", act_to, 8)
        after.update(bus_inputs("w", np.ones(300, dtype=np.int64), 8))
        arrivals, toggled = dynamic_arrival_times(
            mac.multiplier, lib, before, after)
        nets = mac.multiplier.output_bus("product", 16)
        # product = sign-extended activation: bits 8..15 only follow the
        # sign bit; when both activations have the same sign they are
        # stable.
        same_sign = (act_from < 0) == (act_to < 0)
        high_bits = np.asarray(nets[8:])
        assert not toggled[high_bits][:, same_sign].any()


class TestSelectionInvariants:
    @pytest.fixture(scope="class")
    def table(self, request):
        mac_unit = build_mac_unit()
        library = default_library()
        profiler = WeightDelayProfiler(mac_unit, library)
        act_from, act_to = profiler.all_transitions()
        rng = np.random.default_rng(3)
        chosen = rng.choice(act_from.size, 3000, replace=False)
        return WeightTimingTable.characterize(
            profiler, weights=[-105, -33, -2, 0, 5, 64, 105],
            transitions=(act_from[chosen], act_to[chosen]),
            floor_ps=90.0)

    def test_no_surviving_combo_exceeds_threshold(self, table):
        selector = DelaySelector(table, n_restarts=4)
        for threshold in (170.0, 150.0, 130.0):
            result = selector.select(threshold)
            cw, cf, ct, cd = table.combos_for(result.weights.tolist())
            acts = set(result.activations.tolist())
            alive = np.array([f in acts and t in acts
                              for f, t in zip(cf, ct)])
            if alive.any():
                assert cd[alive].max() <= threshold + 1e-9

    def test_monotone_threshold_monotone_delay(self, table):
        selector = DelaySelector(table, n_restarts=4)
        delays = [selector.select(t).max_delay_ps
                  for t in (170.0, 150.0, 130.0)]
        assert delays == sorted(delays, reverse=True)

    def test_more_restarts_never_worse(self, table):
        few = DelaySelector(table, n_restarts=1).select(140.0)
        many = DelaySelector(table, n_restarts=10).select(140.0)
        assert (many.n_weights + many.n_activations
                >= few.n_weights + few.n_activations)


def _linear_table():
    weights = np.arange(-127, 128)
    dynamic = 200.0 + 4.0 * np.abs(weights)
    dynamic[127] = 30.0
    return WeightPowerTable(
        weights=weights, power_uw=dynamic + 12.0, dynamic_uw=dynamic,
        leakage_uw=12.0, clock_period_ps=180.0)


class TestPowerModelInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 100), st.integers(1, 100), st.integers(1, 500),
           st.integers(0, 2 ** 31 - 1))
    def test_optimized_never_above_standard(self, k, n, m, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, (k, n))
        config = SystolicConfig()
        model = ArrayPowerModel(config,
                                MacPowerParams(table=_linear_table()))
        schedule = schedule_matmul(k, n, m, config)
        std = model.layer_power(schedule, weights, STANDARD_HW)
        opt = model.layer_power(schedule, weights, OPTIMIZED_HW)
        assert opt.total_uw <= std.total_uw + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1),
           st.floats(min_value=0.55, max_value=0.79))
    def test_voltage_scaling_monotone(self, seed, vdd):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, (64, 32))
        config = SystolicConfig()
        model = ArrayPowerModel(config,
                                MacPowerParams(table=_linear_table()))
        schedule = schedule_matmul(64, 32, 200, config)
        nominal = model.layer_power(schedule, weights, OPTIMIZED_HW)
        scaled = model.layer_power(schedule, weights, OPTIMIZED_HW,
                                   vdd=vdd)
        assert scaled.total_uw < nominal.total_uw

    def test_sparser_weights_cheaper_on_optimized(self):
        config = SystolicConfig()
        model = ArrayPowerModel(config,
                                MacPowerParams(table=_linear_table()))
        schedule = schedule_matmul(64, 32, 200, config)
        rng = np.random.default_rng(5)
        weights = rng.integers(1, 128, (64, 32))
        previous = None
        for sparsity in (0.0, 0.3, 0.6, 0.9):
            sparse = weights.copy()
            mask = rng.random(weights.shape) < sparsity
            sparse[mask] = 0
            power = model.layer_power(schedule, sparse, OPTIMIZED_HW)
            if previous is not None:
                assert power.dynamic_uw <= previous + 1e-6
            previous = power.dynamic_uw

    def test_cheap_weight_restriction_reduces_power(self):
        """Restricting a workload to power-selected values cuts power —
        the method's core premise, end to end through the array model."""
        table = _linear_table()
        config = SystolicConfig()
        model = ArrayPowerModel(config, MacPowerParams(table=table))
        schedule = schedule_matmul(64, 32, 200, config)
        rng = np.random.default_rng(6)
        weights = rng.integers(-127, 128, (64, 32))

        allowed = table.select_below(500.0)
        from repro.nn.restrict import WeightRestriction

        restricted = WeightRestriction(allowed)(weights)
        free_power = model.layer_power(schedule, weights, STANDARD_HW)
        restricted_power = model.layer_power(schedule, restricted,
                                             STANDARD_HW)
        assert restricted_power.dynamic_uw < free_power.dynamic_uw
