"""Tests for the CLI entry point, report serialization and the
filtered-activation power refinement extension."""

import json

import numpy as np
import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.core.report import PowerPruningReport
from repro.power.estimator import PowerBreakdown
from repro.power.transitions import TransitionDistribution, value_to_code


class TestCli:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {"table1", "fig2", "fig3", "fig4",
                                    "fig7", "fig8", "fig9", "backends"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig12"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--scale", "galactic"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--backend", "tsmc3"])

    def test_list_backends(self, capsys):
        assert main(["--list-backends"]) == 0
        out = capsys.readouterr().out
        assert "nangate15-booth" in out
        assert "scaled-45nm" in out

    def test_experiment_required_without_list(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "table1" in capsys.readouterr().out

    @pytest.mark.slow
    def test_fig3_runs_via_cli(self, capsys):
        assert main(["fig3", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "delay profiles" in out

    def test_seed_rejected_for_unseeded_experiments(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--seed", "1"])

    @pytest.mark.parametrize("experiment", ["table1", "fig8", "fig9",
                                            "backends"])
    def test_seed_axis_reaches_seeded_experiments(self, experiment,
                                                  monkeypatch):
        calls = {}

        def recorder(**kwargs):
            calls.update(kwargs)

        monkeypatch.setitem(EXPERIMENTS, experiment, recorder)
        assert main([experiment, "--scale", "smoke",
                     "--seed", "0", "--seed", "1"]) == 0
        assert calls["seeds"] == (0, 1)
        assert calls["scale"] == "smoke"

    def test_no_seed_flag_keeps_default_signature(self, monkeypatch):
        calls = {}

        def recorder(**kwargs):
            calls.update(kwargs)

        monkeypatch.setitem(EXPERIMENTS, "table1", recorder)
        assert main(["table1", "--scale", "smoke"]) == 0
        assert "seeds" not in calls


def _report():
    def pb(dyn, leak):
        return PowerBreakdown(dynamic_uw=dyn, leakage_uw=leak)

    return PowerPruningReport(
        network="lenet5", dataset="cifar10",
        accuracy_orig=0.8, accuracy_prop=0.78,
        power_std_orig=pb(250_000, 40_000),
        power_std_prop=pb(170_000, 40_000),
        power_std_prop_vs=pb(130_000, 30_000),
        power_opt_orig=pb(260_000, 12_000),
        power_opt_prop=pb(90_000, 12_000),
        power_opt_prop_vs=pb(65_000, 9_000),
        n_selected_weights=32, n_selected_activations=176,
        max_delay_reduction_ps=40.0, voltage_label="0.71/0.8",
        power_threshold_uw=825.0, delay_threshold_ps=140.0,
    )


class TestReportSerialization:
    def test_as_dict_is_json_serializable(self):
        payload = _report().as_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["network"] == "lenet5"
        assert back["voltage_label"] == "0.71/0.8"
        assert back["n_selected_weights"] == 32

    def test_as_dict_contains_derived_columns(self):
        payload = _report().as_dict()
        assert payload["reduction_std"] == pytest.approx(
            _report().reduction_std)
        assert payload["reduction_opt"] == pytest.approx(
            _report().reduction_opt)
        assert "vs_contribution_std" in payload


class TestRestrictedDistributionRefinement:
    """The extension: activation filtering changes the stimulus."""

    def test_restricted_distribution_reduces_support(self):
        dist = TransitionDistribution.diagonal(256)
        allowed_values = np.arange(-64, 65)
        codes = value_to_code(allowed_values)
        restricted = dist.restricted(codes)
        # removed codes carry no probability
        removed = np.setdiff1d(np.arange(256), codes)
        assert restricted.matrix[removed, :].sum() == 0.0
        assert restricted.matrix[:, removed].sum() == 0.0

    def test_sampling_respects_filter(self):
        dist = TransitionDistribution.diagonal(256)
        codes = value_to_code(np.arange(0, 100))
        restricted = dist.restricted(codes)
        f, t = restricted.sample(500, np.random.default_rng(0))
        assert np.isin(f, codes).all()
        assert np.isin(t, codes).all()

    @pytest.mark.slow
    def test_pipeline_refinement_flag(self):
        """With refinement on, the pipeline produces a filtered table
        whose dynamic power is at most the unfiltered one on average."""
        from repro.core import PipelineConfig, PowerPruner

        config = PipelineConfig(
            network="lenet5", dataset="cifar10", width_mult=0.35,
            n_train=400, n_test=150, baseline_epochs=3, retrain_epochs=1,
            char_weight_step=16, char_samples=300,
            timing_transitions=1500, n_restarts=2,
            refine_power_with_filtered_activations=True,
        )
        pruner = PowerPruner(config)
        report = pruner.run()
        if "power_table_filtered" in pruner.artifacts:
            base = pruner.artifacts["power_table"]
            refined = pruner.artifacts["power_table_filtered"]
            assert refined.dynamic_uw.mean() <= base.dynamic_uw.mean() * 1.1
        assert report.reduction_opt > 0
