"""Golden-result regression suite.

Recomputes smoke-scale reference results — a Table I row, fig8/fig9
curve points per backend, and the accelerator design-space table — and
compares them against the committed JSON files under ``tests/golden/``.  Any refactor that silently drifts the
pipeline's numerics (RNG restructuring, stage reordering, calibration
changes) fails here with a field-level diff instead of shipping wrong
curves.

Tolerances (see ``_assert_close``): integer counts and selected
thresholds must match exactly; accuracies may move by at most three
test samples (smoke scale evaluates 200, so 0.015); remaining floats by
0.5% — wide enough to absorb cross-platform BLAS noise, narrow enough
that any real algorithmic change trips it.

When a numeric change is *intentional*, regenerate the references and
commit them together with the change::

    PYTHONPATH=src python tests/test_golden.py --regenerate
"""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments.sweep import make_sweep_spec, run_sweep

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SCALE = "smoke"
NETWORK = "lenet5"
SEED = 0

FIG8_BACKENDS = ("nangate15-booth", "nangate15-array")
FIG8_THRESHOLDS = (None, 900.0, 825.0)
FIG9_BACKENDS = ("nangate15-booth",)
FIG9_THRESHOLDS = (180.0, 160.0, 150.0)
ACCEL_SHAPES = ("16x16", None)  # None = the backend's own 64x64

#: Accuracy tolerance: three samples of the 200-image smoke test set.
ACCURACY_ATOL = 0.015
#: Relative tolerance for power/delay floats.
FLOAT_RTOL = 5e-3


# ----------------------------------------------------------------------
# reference computation (shared with --regenerate)
# ----------------------------------------------------------------------
def compute_table1(cache_dir):
    """Headline metrics of the smoke-scale LeNet-5 Table I row."""
    sweep = make_sweep_spec("table1", networks=(NETWORK,),
                            seeds=(SEED,), scale=SCALE)
    report = run_sweep(sweep, cache_dir=cache_dir).rows[0].payload
    return {
        "accuracy_orig": report.accuracy_orig,
        "accuracy_prop": report.accuracy_prop,
        "power_std_orig_mw": report.power_std_orig.total_uw / 1000,
        "power_std_prop_vs_mw": report.power_std_prop_vs.total_uw / 1000,
        "power_opt_orig_mw": report.power_opt_orig.total_uw / 1000,
        "power_opt_prop_mw": report.power_opt_prop.total_uw / 1000,
        "power_opt_prop_vs_mw": report.power_opt_prop_vs.total_uw / 1000,
        "reduction_opt_pct": report.reduction_opt,
        "n_weights": report.n_selected_weights,
        "n_activations": report.n_selected_activations,
        "delay_reduction_ps": report.max_delay_reduction_ps,
        "voltage": report.voltage_label,
        "power_threshold_uw": report.power_threshold_uw,
        "delay_threshold_ps": report.delay_threshold_ps,
    }


def _curves(sweep_result):
    """Sweep rows as ``{backend: [point dict, ...]}``."""
    curves = {}
    for row in sweep_result.rows:
        points = curves.setdefault(row.backend_id, [])
        if row.skipped is not None:
            points.append({"threshold": row.threshold,
                           "skipped": row.skipped})
        else:
            points.append({"threshold": row.threshold,
                           **{k: v for k, v in row.metrics.items()}})
    return curves


def compute_fig8(cache_dir):
    """Fig. 8 curve points per backend (smoke-scale LeNet-5)."""
    sweep = make_sweep_spec("fig8", backends=FIG8_BACKENDS,
                            networks=(NETWORK,),
                            thresholds=FIG8_THRESHOLDS,
                            seeds=(SEED,), scale=SCALE)
    return _curves(run_sweep(sweep, cache_dir=cache_dir))


def compute_fig9(cache_dir):
    """Fig. 9 curve points per backend (smoke-scale LeNet-5)."""
    sweep = make_sweep_spec("fig9", backends=FIG9_BACKENDS,
                            networks=(NETWORK,),
                            thresholds=FIG9_THRESHOLDS,
                            seeds=(SEED,), scale=SCALE)
    return _curves(run_sweep(sweep, cache_dir=cache_dir))


def compute_accel(cache_dir):
    """Accelerator design-space table (smoke-scale LeNet-5): one row
    per array shape x hardware variant."""
    sweep = make_sweep_spec("accel", networks=(NETWORK,),
                            seeds=(SEED,), scale=SCALE,
                            array_shapes=ACCEL_SHAPES)
    return {row.accel: {k: v for k, v in row.metrics.items()}
            for row in run_sweep(sweep, cache_dir=cache_dir).rows}


GOLDENS = {
    "table1_lenet5_smoke.json": compute_table1,
    "fig8_lenet5_smoke.json": compute_fig8,
    "fig9_lenet5_smoke.json": compute_fig9,
    "accel_lenet5_smoke.json": compute_accel,
}


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _assert_close(path, got, want):
    field = path.rsplit(".", 1)[-1]
    if want is None or isinstance(want, (str, bool)):
        assert got == want, f"{path}: {got!r} != {want!r}"
    elif field.startswith("n_") or field == "skipped":
        assert got == want, f"{path}: {got!r} != {want!r}"
    elif "accuracy" in field:
        assert got == pytest.approx(want, abs=ACCURACY_ATOL), \
            f"{path}: {got!r} != {want!r} (±{ACCURACY_ATOL})"
    else:
        assert got == pytest.approx(want, rel=FLOAT_RTOL), \
            f"{path}: {got!r} != {want!r} (rel {FLOAT_RTOL})"


def _assert_matches(path, got, want):
    if isinstance(want, dict):
        assert isinstance(got, dict), f"{path}: expected mapping"
        assert sorted(got) == sorted(want), \
            f"{path}: keys {sorted(got)} != {sorted(want)}"
        for key in want:
            _assert_matches(f"{path}.{key}", got[key], want[key])
    elif isinstance(want, list):
        assert isinstance(got, list), f"{path}: expected list"
        assert len(got) == len(want), \
            f"{path}: {len(got)} entries != {len(want)}"
        for index, (g, w) in enumerate(zip(got, want)):
            _assert_matches(f"{path}[{index}]", g, w)
    else:
        _assert_close(path, got, want)


def _load_golden(name):
    path = GOLDEN_DIR / name
    if not path.is_file():
        pytest.fail(
            f"missing golden reference {path}; regenerate with "
            f"'PYTHONPATH=src python tests/test_golden.py --regenerate'")
    return json.loads(path.read_text())


@pytest.mark.slow
class TestGoldenResults:
    def test_table1_row_matches_golden(self, smoke_cache_dir):
        _assert_matches("table1", compute_table1(smoke_cache_dir),
                        _load_golden("table1_lenet5_smoke.json"))

    def test_fig8_curves_match_golden(self, smoke_cache_dir):
        _assert_matches("fig8", compute_fig8(smoke_cache_dir),
                        _load_golden("fig8_lenet5_smoke.json"))

    def test_fig9_curves_match_golden(self, smoke_cache_dir):
        _assert_matches("fig9", compute_fig9(smoke_cache_dir),
                        _load_golden("fig9_lenet5_smoke.json"))

    def test_accel_table_matches_golden(self, smoke_cache_dir):
        _assert_matches("accel", compute_accel(smoke_cache_dir),
                        _load_golden("accel_lenet5_smoke.json"))


def regenerate(cache_dir=None) -> None:
    """Recompute every golden file and write it under tests/golden/."""
    import tempfile

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory() as scratch:
        cache = cache_dir or scratch
        for name, compute in GOLDENS.items():
            payload = compute(cache)
            path = GOLDEN_DIR / name
            path.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
            print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        cache = next((a for a in sys.argv[1:]
                      if not a.startswith("--")), None)
        regenerate(cache)
    else:
        print(__doc__)
        sys.exit(2)
