"""Equivalence suite for the one-launch (megabatch) characterization.

The weight-batched paths — ``evaluate_words_batched`` megabatch
evaluation, ``dynamic_energies_fj_batched`` power characterization and
``delays_batched`` timing profiling — must be *bit-for-bit* equal to
the per-weight loops they replace, which in turn must stay bit-for-bit
equal to the pre-batching (PR 4-era) reference implementations whose
RNG consumption defined the golden results.  That chain is what lets
the pipeline default to the batched paths with zero golden-file
regeneration and zero stage-version bumps.

Hypothesis drives random netlists, awkward non-multiple-of-64 sample
counts, and every chunking of the weight axis; process sharding is
checked to compose with batching on both tables.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import default_library
from repro.netlist import build_mac_unit
from repro.power.binning import BinnedTransitions, PartialSumBinner
from repro.power.characterization import (
    WeightPowerCharacterizer,
    resolve_batch_weights,
    weight_seed_sequence,
)
from repro.power.transitions import TransitionDistribution, code_to_value
from repro.sim import logic as logic_mod
from repro.sim.logic import (
    BatchedPackedValues,
    bus_inputs,
    evaluate_words,
    evaluate_words_batched,
    pack_bits,
    popcount_words_segmented,
    unpack_bits,
)
from repro.sim.switching import (
    paired_toggle_rates_words,
    paired_toggle_rates_words_batched,
)
from repro.timing.profile import (
    WeightDelayProfiler,
    WeightTimingTable,
)

from test_sim_kernel import random_netlists

#: Sample counts hostile to 64-bit word packing.
AWKWARD_SAMPLES = (1, 3, 63, 64, 65, 127, 129)


# ----------------------------------------------------------------------
# megabatch kernel
# ----------------------------------------------------------------------
class TestEvaluateWordsBatched:
    @settings(max_examples=40, deadline=None)
    @given(netlist=random_netlists(),
           n_segments=st.integers(1, 5),
           batch=st.sampled_from(AWKWARD_SAMPLES),
           seed=st.integers(0, 2**32 - 1))
    def test_segments_equal_standalone_evaluations(self, netlist,
                                                   n_segments, batch,
                                                   seed):
        rng = np.random.default_rng(seed)
        feeds = [{name: rng.random(batch) < 0.5
                  for name in netlist.input_names}
                 for __ in range(n_segments)]
        stacked = {name: np.stack([feed[name] for feed in feeds])
                   for name in netlist.input_names}

        values = evaluate_words_batched(netlist, stacked)
        assert isinstance(values, BatchedPackedValues)
        assert values.n_segments == n_segments
        for k, feed in enumerate(feeds):
            solo = evaluate_words(netlist, feed)
            np.testing.assert_array_equal(values.segment(k).words,
                                          solo.words)

    @settings(max_examples=40, deadline=None)
    @given(netlist=random_netlists(),
           n_segments=st.integers(1, 4),
           half=st.sampled_from(AWKWARD_SAMPLES),
           seed=st.integers(0, 2**32 - 1))
    def test_paired_toggle_counts_equal_per_segment(self, netlist,
                                                    n_segments, half,
                                                    seed):
        rng = np.random.default_rng(seed)
        batch = 2 * half
        feeds = [{name: rng.random(batch) < 0.5
                  for name in netlist.input_names}
                 for __ in range(n_segments)]
        stacked = {name: np.stack([feed[name] for feed in feeds])
                   for name in netlist.input_names}

        values = evaluate_words_batched(netlist, stacked,
                                        pair_halves=True)
        rates = paired_toggle_rates_words_batched(values)
        assert rates.shape == (n_segments, len(values.words))
        for k, feed in enumerate(feeds):
            solo = evaluate_words(netlist, feed, pair_halves=True)
            np.testing.assert_array_equal(
                rates[k], paired_toggle_rates_words(solo))

    def test_broadcast_input_forms(self):
        netlist = build_mac_unit().multiplier
        rng = np.random.default_rng(3)
        n_segments, batch = 3, 65
        acts = rng.integers(-128, 128, (n_segments, batch))
        weights = np.array([-7, 0, 99])[:, None]      # frozen column
        feed = bus_inputs("act", acts, 8)
        feed.update(bus_inputs("w", weights, 8))

        values = evaluate_words_batched(netlist, feed)
        for k in range(n_segments):
            solo_feed = bus_inputs("act", acts[k], 8)
            solo_feed.update(bus_inputs(
                "w", np.full(batch, weights[k, 0]), 8))
            solo = evaluate_words(netlist, solo_feed)
            np.testing.assert_array_equal(values.segment(k).words,
                                          solo.words)
            np.testing.assert_array_equal(
                unpack_bits(values.segment(k).words, batch),
                unpack_bits(solo.words, batch))

    def test_shape_inference_requires_a_matrix_input(self):
        netlist = build_mac_unit().multiplier
        feed = bus_inputs("act", np.int64(3), 8)
        feed.update(bus_inputs("w", np.int64(5), 8))
        with pytest.raises(ValueError, match="n_segments"):
            evaluate_words_batched(netlist, feed)


class TestSegmentedPopcount:
    @settings(max_examples=40, deadline=None)
    @given(n_words=st.integers(1, 40), n_segments=st.integers(1, 6),
           seed=st.integers(0, 2**32 - 1))
    def test_matches_per_segment_popcounts(self, n_words, n_segments,
                                           seed):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 1 << 64, (3, n_words),
                             dtype=np.uint64)
        n_segments = min(n_segments, n_words)
        starts = np.sort(rng.choice(n_words, size=n_segments,
                                    replace=False))
        starts[0] = 0
        counts = popcount_words_segmented(words, starts)
        bounds = list(starts) + [n_words]
        for k in range(n_segments):
            expected = logic_mod.popcount_words(
                words[:, bounds[k]:bounds[k + 1]])
            np.testing.assert_array_equal(counts[:, k], expected)

    def test_fallback_equals_native(self, monkeypatch):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 1 << 64, (4, 12), dtype=np.uint64)
        starts = np.array([0, 5, 6])
        native = popcount_words_segmented(words, starts)
        monkeypatch.setattr(logic_mod, "_popcount_per_word_impl",
                            logic_mod._popcount_per_word_lookup)
        np.testing.assert_array_equal(
            popcount_words_segmented(words, starts), native)


# ----------------------------------------------------------------------
# stimulus sampling vs the pre-batching reference implementations
# ----------------------------------------------------------------------
class TestSamplingReferenceEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(n_codes=st.sampled_from((3, 25, 70)),
           n_samples=st.integers(1, 400),
           seed=st.integers(0, 2**32 - 1))
    def test_distribution_sample_matches_rng_choice(self, n_codes,
                                                    n_samples, seed):
        rng = np.random.default_rng(seed)
        dist = TransitionDistribution(
            rng.random((n_codes, n_codes)) + 1e-9)
        r1 = np.random.default_rng(seed)
        code_from, code_to = dist.sample(n_samples, r1)
        r2 = np.random.default_rng(seed)
        drawn = r2.choice(dist.matrix.size, size=n_samples,
                          p=dist.matrix.ravel())
        np.testing.assert_array_equal(code_from, drawn // n_codes)
        np.testing.assert_array_equal(code_to, drawn % n_codes)
        assert r1.bit_generator.state == r2.bit_generator.state

    def test_large_cdf_sorted_path_matches_rng_choice(self):
        # 256 codes -> 65536-entry CDF, exercising the sorted-keys
        # searchsorted branch.
        dist = TransitionDistribution.diagonal(256)
        r1 = np.random.default_rng(11)
        code_from, code_to = dist.sample(999, r1)
        r2 = np.random.default_rng(11)
        drawn = r2.choice(dist.matrix.size, size=999,
                          p=dist.matrix.ravel())
        np.testing.assert_array_equal(code_from, drawn // 256)
        np.testing.assert_array_equal(code_to, drawn % 256)
        assert r1.bit_generator.state == r2.bit_generator.state

    @settings(max_examples=20, deadline=None)
    @given(n_bins=st.sampled_from((2, 8, 50)),
           n_samples=st.integers(1, 300),
           seed=st.integers(0, 2**32 - 1))
    def test_sample_members_matches_per_bin_choice(self, n_bins,
                                                   n_samples, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(-(1 << 18), 1 << 18,
                              max(40 * n_bins, 400))
        binner = PartialSumBinner(n_bins=n_bins).fit(stream, rng=rng)
        bin_ids = rng.integers(0, n_bins, n_samples)

        r1 = np.random.default_rng(seed)
        fast = binner.sample_members(bin_ids, r1)
        r2 = np.random.default_rng(seed)
        out = np.empty(bin_ids.size, dtype=np.int64)
        for b in range(n_bins):
            mask = bin_ids == b
            count = int(mask.sum())
            if not count:
                continue
            out[mask] = r2.choice(binner._exemplars[b], size=count)
        np.testing.assert_array_equal(fast, out)
        assert r1.bit_generator.state == r2.bit_generator.state


# ----------------------------------------------------------------------
# power characterization
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def characterizer_factory():
    mac = build_mac_unit()
    lib = default_library()
    rng = np.random.default_rng(0)
    act_dist = TransitionDistribution.diagonal(256)
    stream = rng.integers(-(1 << 18), 1 << 18, 3000)
    binner = PartialSumBinner(n_bins=8).fit(stream, rng=rng)
    binned = BinnedTransitions.from_stream(binner, stream)

    def build(n_samples):
        return WeightPowerCharacterizer(mac, lib, act_dist, binned,
                                        n_samples=n_samples)
    return build


def _pr4_reference_energies(char, weights, seed):
    """The pre-batching (PR 4-era) characterization, frozen.

    ``rng.choice``-based stimulus sampling plus a dense per-weight
    weight bus — the RNG consumption that defined the golden tables.
    """
    energies = []
    for weight in weights:
        rng = np.random.default_rng(
            weight_seed_sequence(seed, int(weight)))
        n = char.n_samples
        act = char.act_transitions
        drawn = rng.choice(act.matrix.size, size=n, p=act.matrix.ravel())
        acts = code_to_value(
            np.concatenate([drawn // act.n_codes, drawn % act.n_codes]),
            char.mac.act_bits)
        bt = char.psum_transitions
        dist = bt.distribution
        drawn = rng.choice(dist.matrix.size, size=n,
                           p=dist.matrix.ravel())
        halves = []
        for bin_ids in (drawn // dist.n_codes, drawn % dist.n_codes):
            out = np.empty(n, dtype=np.int64)
            for b in range(bt.binner.n_bins):
                mask = bin_ids == b
                count = int(mask.sum())
                if count:
                    out[mask] = rng.choice(bt.binner._exemplars[b],
                                           size=count)
            halves.append(out)
        psums = np.concatenate(halves)

        feed = bus_inputs("act", acts, char.mac.act_bits)
        feed.update(bus_inputs(
            "w", np.full(2 * n, int(weight), dtype=np.int64),
            char.mac.weight_bits))
        feed.update(bus_inputs("psum", psums, char.mac.psum_bits))
        values = evaluate_words(char._packed, feed, pair_halves=True)
        rates = paired_toggle_rates_words(values)
        energies.append(float(np.dot(rates, char._energies)))
    return np.array(energies)


class TestPowerBatchedEquivalence:
    WEIGHTS = list(range(-127, 128, 24))

    @pytest.mark.parametrize("n_samples", [64, 65, 127, 150])
    def test_batched_equals_per_weight_equals_reference(
            self, characterizer_factory, n_samples):
        char = characterizer_factory(n_samples)
        per = char.dynamic_energies_fj(self.WEIGHTS, seed=5)
        reference = _pr4_reference_energies(char, self.WEIGHTS, seed=5)
        np.testing.assert_array_equal(per, reference)
        for batch_weights in (None, 1, 2, 3, len(self.WEIGHTS)):
            batched = char.dynamic_energies_fj_batched(
                self.WEIGHTS, seed=5, batch_weights=batch_weights)
            np.testing.assert_array_equal(batched, per)

    def test_characterize_batched_equals_per_weight_table(
            self, characterizer_factory):
        char = characterizer_factory(150)
        loop = char.characterize(self.WEIGHTS, seed=5, batch_weights=1)
        batched = char.characterize(self.WEIGHTS, seed=5)
        np.testing.assert_array_equal(loop.power_uw, batched.power_uw)
        np.testing.assert_array_equal(loop.dynamic_uw,
                                      batched.dynamic_uw)
        assert loop.energy_scale == batched.energy_scale

    def test_sharding_composes_with_batching(self,
                                             characterizer_factory):
        char = characterizer_factory(150)
        serial = char.characterize(self.WEIGHTS, seed=5,
                                   batch_weights=1)
        sharded = char.characterize(self.WEIGHTS, seed=5, jobs=3,
                                    batch_weights=2)
        np.testing.assert_array_equal(serial.power_uw,
                                      sharded.power_uw)
        assert serial.energy_scale == sharded.energy_scale

    def test_resolve_batch_weights_policy(self):
        # Explicit knob wins, clamped to the weight count and budget.
        assert resolve_batch_weights(7, 255, 1000) == 7
        assert resolve_batch_weights(500, 255, 1000) == 255
        assert resolve_batch_weights(500, 255, 1 << 20,
                                     budget_bytes=4 << 20) == 4
        # Auto targets cache-sized launches.
        assert resolve_batch_weights(0, 255, 1 << 20,
                                     target_bytes=8 << 20) == 8
        assert resolve_batch_weights(None, 255, 1 << 30) == 1
        # Degenerate inputs stay in range.
        assert resolve_batch_weights(0, 1, 0) == 1


# ----------------------------------------------------------------------
# timing characterization
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def profiler():
    return WeightDelayProfiler(build_mac_unit(), default_library())


class TestTimingBatchedEquivalence:
    WEIGHTS = list(range(-127, 128, 32))

    def test_delays_batched_equals_per_weight(self, profiler):
        rng = np.random.default_rng(9)
        sizes = (65, 1, 127)
        weights = (-3, 0, 91)
        per_weight = []
        for weight, size in zip(weights, sizes):
            act_from = rng.integers(-128, 128, size)
            act_to = rng.integers(-128, 128, size)
            per_weight.append((weight, act_from, act_to))
        flat_w = np.concatenate(
            [np.full(af.size, w) for w, af, __ in per_weight])
        flat_from = np.concatenate([af for __, af, __ in per_weight])
        flat_to = np.concatenate([at for __, __, at in per_weight])

        flat = profiler.delays_batched(flat_w, flat_from, flat_to)
        offset = 0
        for weight, act_from, act_to in per_weight:
            solo = profiler.delays(weight, act_from, act_to)
            np.testing.assert_array_equal(
                flat[offset:offset + act_from.size], solo)
            offset += act_from.size

    def test_delays_batched_chunking_is_neutral(self, profiler):
        rng = np.random.default_rng(2)
        n = 300
        flat_w = rng.integers(-128, 128, n)
        act_from = rng.integers(-128, 128, n)
        act_to = rng.integers(-128, 128, n)
        baseline = profiler.delays_batched(flat_w, act_from, act_to)
        small = WeightDelayProfiler(profiler.mac, profiler.library,
                                    chunk=64)
        np.testing.assert_array_equal(
            small.delays_batched(flat_w, act_from, act_to), baseline)

    @pytest.mark.parametrize("batch_weights", [None, 2, 1000])
    def test_characterize_batched_equals_per_weight(self, profiler,
                                                    batch_weights):
        loop = WeightTimingTable.characterize(
            profiler, self.WEIGHTS, n_transitions=60, seed=7,
            batch_weights=1)
        batched = WeightTimingTable.characterize(
            profiler, self.WEIGHTS, n_transitions=60, seed=7,
            batch_weights=batch_weights)
        np.testing.assert_array_equal(loop.max_delay_ps,
                                      batched.max_delay_ps)
        np.testing.assert_array_equal(loop.combo_weight,
                                      batched.combo_weight)
        np.testing.assert_array_equal(loop.combo_act_from,
                                      batched.combo_act_from)
        np.testing.assert_array_equal(loop.combo_act_to,
                                      batched.combo_act_to)
        np.testing.assert_array_equal(loop.combo_delay_ps,
                                      batched.combo_delay_ps)
        assert loop.time_scale == batched.time_scale

    def test_sharding_composes_with_batching(self, profiler):
        serial = WeightTimingTable.characterize(
            profiler, self.WEIGHTS, n_transitions=60, seed=7,
            batch_weights=1)
        sharded = WeightTimingTable.characterize(
            profiler, self.WEIGHTS, n_transitions=60, seed=7, jobs=3,
            batch_weights=2)
        np.testing.assert_array_equal(serial.max_delay_ps,
                                      sharded.max_delay_ps)
        np.testing.assert_array_equal(serial.combo_delay_ps,
                                      sharded.combo_delay_ps)
        assert serial.time_scale == sharded.time_scale

    def test_shared_explicit_transitions_batch(self, profiler):
        rng = np.random.default_rng(4)
        transitions = (rng.integers(-128, 128, 40),
                       rng.integers(-128, 128, 40))
        loop = WeightTimingTable.characterize(
            profiler, self.WEIGHTS, transitions=transitions,
            batch_weights=1)
        batched = WeightTimingTable.characterize(
            profiler, self.WEIGHTS, transitions=transitions)
        np.testing.assert_array_equal(loop.max_delay_ps,
                                      batched.max_delay_ps)
        np.testing.assert_array_equal(loop.combo_delay_ps,
                                      batched.combo_delay_ps)
