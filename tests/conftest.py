"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture(scope="session")
def smoke_cache_dir(tmp_path_factory):
    """One on-disk artifact cache shared by every smoke-scale test.

    The golden-regression and sweep-engine suites all run the same
    LeNet-5 smoke pipeline; pointing them at a session-wide cache
    directory makes the expensive training/characterization prefix run
    once for the whole session instead of once per test module.
    """
    return tmp_path_factory.mktemp("smoke-artifact-cache")
