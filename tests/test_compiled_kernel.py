"""Equivalence suite for the compiled level-program kernel.

The compiled backend (:mod:`repro.sim.program` +
:mod:`repro.sim.compiled`) must be *bit-for-bit* equal to the packed
group walk — which itself is property-tested against the per-gate
reference — on every netlist, every batch size and both program
executors.  That equivalence is what lets the pipeline default to the
compiled kernel with zero golden-file regeneration, zero stage-version
bumps and no kernel field in any cache key.

The JIT executor needs the optional numba extra (the CI ``jit`` leg);
in a plain environment both the auto-detected path and the
``REPRO_SIM_JIT=0`` forced path run the vectorized numpy executor, so
this suite always covers the executor that actually ships.
"""

import os
import pickle
from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import default_library
from repro.netlist import NetlistBuilder, build_mac_unit
from repro.netlist.gates import GateType, SOURCE_TYPES
from repro.sim import compiled as compiled_mod
from repro.sim.compiled import (
    JIT_ENV,
    KERNEL_ENV,
    active_executor,
    default_kernel,
    jit_status,
    resolve_kernel,
    set_process_kernel,
)
from repro.sim.dynamic_timing import (
    dynamic_arrival_times_reference,
    dynamic_bus_arrivals,
)
from repro.sim.logic import (
    WORD_DTYPE,
    bus_inputs,
    evaluate,
    evaluate_words,
    evaluate_words_batched,
)
from repro.sim.program import LevelProgram

#: Batch sizes hostile to 64-bit word packing.
AWKWARD_BATCHES = (1, 3, 63, 64, 65, 127, 128, 129, 200)

_CELL_TYPES = tuple(t for t in GateType if t not in SOURCE_TYPES)


@st.composite
def random_netlists(draw):
    """A random topologically ordered DAG over all gate types."""
    builder = NetlistBuilder("random")
    n_inputs = draw(st.integers(1, 6))
    nets = [builder.netlist.add_input(f"in[{i}]")
            for i in range(n_inputs)]
    if draw(st.booleans()):
        nets.append(builder.const(False))
    if draw(st.booleans()):
        nets.append(builder.const(True))
    n_gates = draw(st.integers(1, 40))
    for __ in range(n_gates):
        gtype = draw(st.sampled_from(_CELL_TYPES))
        fanins = [nets[draw(st.integers(0, len(nets) - 1))]
                  for __ in range(
                      {GateType.INV: 1, GateType.BUF: 1,
                       GateType.MUX2: 3}.get(gtype, 2))]
        nets.append(builder.netlist.add_gate(gtype, *fanins))
    builder.netlist.mark_output("y", nets[-1])
    builder.netlist.mark_output("z", nets[len(nets) // 2])
    return builder.build()


def _random_feed(netlist, batch, seed):
    rng = np.random.default_rng(seed)
    return {name: rng.random(batch) < 0.5
            for name in netlist.input_names}


def _mult_feed(batch, seed=0, pair_halves=False):
    rng = np.random.default_rng(seed)
    feed = bus_inputs("act", rng.integers(-128, 128, batch), 8)
    weights = np.full(batch, -105) if pair_halves \
        else rng.integers(-128, 128, batch)
    feed.update(bus_inputs("w", weights, 8))
    return feed


class TestCompiledEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(netlist=random_netlists(), batch=st.integers(1, 200),
           seed=st.integers(0, 2**32 - 1))
    def test_compiled_matches_reference_and_packed(self, netlist,
                                                   batch, seed):
        feed = _random_feed(netlist, batch, seed)
        reference = evaluate(netlist, feed, kernel="reference")
        np.testing.assert_array_equal(
            reference, evaluate(netlist, feed, kernel="compiled"))
        # Word-level equality is stronger than unpacked equality: even
        # the garbage padding bits must agree with the packed oracle.
        packed_words = evaluate_words(netlist, feed, kernel="packed")
        compiled_words = evaluate_words(netlist, feed, kernel="compiled")
        np.testing.assert_array_equal(packed_words.words,
                                      compiled_words.words)

    @settings(max_examples=30, deadline=None)
    @given(netlist=random_netlists(), batch=st.integers(1, 200),
           seed=st.integers(0, 2**32 - 1))
    def test_numpy_executor_forced(self, netlist, batch, seed):
        """``REPRO_SIM_JIT=0`` pins the numpy executor explicitly."""
        with mock.patch.dict(os.environ, {JIT_ENV: "0"}):
            assert active_executor() == "numpy"
            feed = _random_feed(netlist, batch, seed)
            np.testing.assert_array_equal(
                evaluate_words(netlist, feed, kernel="packed").words,
                evaluate_words(netlist, feed, kernel="compiled").words)

    @pytest.mark.parametrize("batch", AWKWARD_BATCHES)
    def test_mac_multiplier_awkward_batches(self, batch):
        mac = build_mac_unit()
        feed = _mult_feed(batch, seed=batch)
        np.testing.assert_array_equal(
            evaluate_words(mac.multiplier, feed, kernel="packed").words,
            evaluate_words(mac.multiplier, feed,
                           kernel="compiled").words)

    def test_mux_and_const_corners(self):
        """MUX2 select polarity and shared constants survive the
        XOR-select identity and the level reordering."""
        builder = NetlistBuilder()
        sel = builder.netlist.add_input("sel")
        a = builder.netlist.add_input("a")
        zero = builder.const(False)
        one = builder.const(True)
        builder.netlist.mark_output("m", builder.mux2(sel, a, one))
        builder.netlist.mark_output("n", builder.mux2(a, zero, sel))
        builder.netlist.mark_output("z", zero)
        builder.netlist.mark_output("o", one)
        netlist = builder.build()
        feed = {"sel": np.array([False, False, True, True] * 17),
                "a": np.array([False, True, False, True] * 17)}
        np.testing.assert_array_equal(
            evaluate(netlist, feed, kernel="reference"),
            evaluate(netlist, feed, kernel="compiled"))

    def test_batched_segments_match_packed(self):
        """The one-launch characterization layout (paired megabatch,
        per-segment frozen weight) is kernel-independent, including the
        fused toggle counts."""
        mac = build_mac_unit()
        rng = np.random.default_rng(9)
        n_segments, half = 5, 100
        weights = rng.integers(-128, 128, (n_segments, 1))
        feed = bus_inputs("act",
                          rng.integers(-128, 128, 2 * half), 8)
        feed.update(bus_inputs("w", weights, 8))
        feed.update(bus_inputs(
            "psum", rng.integers(-(1 << 21), 1 << 21, 2 * half), 22))
        packed = evaluate_words_batched(
            mac.full, feed, n_segments=n_segments, batch=2 * half,
            pair_halves=True, kernel="packed")
        comp = evaluate_words_batched(
            mac.full, feed, n_segments=n_segments, batch=2 * half,
            pair_halves=True, kernel="compiled")
        np.testing.assert_array_equal(packed.words, comp.words)
        np.testing.assert_array_equal(packed.paired_toggle_counts(),
                                      comp.paired_toggle_counts())

    def test_words_out_reuse_is_exact(self):
        """A poisoned reused buffer (dirty CONST/padding rows) cannot
        leak into the compiled evaluation."""
        mac = build_mac_unit()
        packed = mac.multiplier.packed()
        feed = _mult_feed(130, seed=2)
        fresh = evaluate_words(packed, feed, kernel="compiled")
        buf = np.full_like(fresh.words, ~np.uint64(0))  # all-ones poison
        reused = evaluate_words(packed, feed, kernel="compiled",
                                words_out=buf)
        assert reused.words is buf
        np.testing.assert_array_equal(fresh.words, reused.words)

    def test_program_pickles_warm(self):
        """Workers receive packed views with the program already built."""
        packed = build_mac_unit().multiplier.packed()
        packed.schedule
        program = packed.program
        clone = pickle.loads(pickle.dumps(packed))
        assert clone._program is not None  # no rebuild in the worker
        np.testing.assert_array_equal(program.dst, clone.program.dst)
        feed = _mult_feed(65, seed=7)
        np.testing.assert_array_equal(
            evaluate(packed, feed, kernel="compiled"),
            evaluate(clone, feed, kernel="compiled"))


class TestLevelProgram:
    @settings(max_examples=40, deadline=None)
    @given(netlist=random_netlists())
    def test_program_invariants(self, netlist):
        packed = netlist.packed()
        schedule = packed.schedule
        program = packed.program
        # Every scheduled gate appears exactly once, sources never.
        gates = [net for net, __, __ in netlist.iter_gates()]
        assert sorted(program.dst.tolist()) == gates
        assert program.n_gates == len(gates)
        levels = schedule.levels
        for start, stop, mux_start, g0, g1, has_inv, runs \
                in program.level_plan:
            dst = program.dst[start:stop]
            # Level-major: one level per plan entry, deps strictly
            # earlier (the reordering freedom the executor relies on).
            assert np.unique(levels[dst]).size == 1
            for src, live in (
                    (program.src0[start:stop],
                     program.arity[start:stop] >= 1),
                    (program.src1[start:stop],
                     program.arity[start:stop] >= 2),
                    (program.src2[start:stop],
                     program.arity[start:stop] >= 3)):
                assert (levels[src[live]] < levels[dst[live]]).all()
            # MUX2 is exactly the tail run.
            ops = program.ops[start:stop]
            assert (ops[mux_start - start:] == GateType.MUX2).all()
            assert not (ops[:mux_start - start] == GateType.MUX2).any()
            # Invert mask is all-ones exactly on the inverting types.
            inverting = np.isin(ops, (GateType.NAND2, GateType.NOR2,
                                      GateType.XNOR2, GateType.INV))
            np.testing.assert_array_equal(
                program.inv_mask[start:stop] == ~np.uint64(0), inverting)
            assert has_inv == bool(inverting.any())
            # The merged gather is [src0 | src1_safe | mux src2].
            n = stop - start
            gather = program.gather_idx[g0:g1]
            assert g1 - g0 == 2 * n + (stop - mux_start)
            np.testing.assert_array_equal(gather[:n],
                                          program.src0[start:stop])
            np.testing.assert_array_equal(
                gather[n:2 * n], program.src1_safe[start:stop])
            np.testing.assert_array_equal(
                gather[2 * n:], program.src2[mux_start:stop])
            # Binop runs tile exactly the two-input non-MUX gates, with
            # the right ufunc family.
            families = {0: (GateType.AND2, GateType.NAND2),
                        1: (GateType.OR2, GateType.NOR2),
                        2: (GateType.XOR2, GateType.XNOR2)}
            covered = np.zeros(n, dtype=bool)
            for family, r0, r1 in runs:
                assert not covered[r0:r1].any()
                covered[r0:r1] = True
                assert np.isin(ops[r0:r1], families[family]).all()
            assert (covered == np.isin(ops, sum(families.values(), ())))\
                .all()

    def test_stats_shape(self):
        program = build_mac_unit().multiplier.packed().program
        assert program.n_gates > 0
        stats = program.stats()
        assert stats["n_gates"] == program.n_gates
        assert stats["n_levels"] == program.n_levels > 2
        assert stats["n_binop_runs"] > 0

    def test_source_only_netlist(self):
        builder = NetlistBuilder("sources")
        builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.netlist.mark_output("y", b)
        packed = builder.build().packed()
        program = packed.program
        assert program.n_gates == 0
        assert program.level_plan == ()
        feed = {"a": np.ones(70, bool), "b": np.zeros(70, bool)}
        np.testing.assert_array_equal(
            evaluate(packed, feed, kernel="reference"),
            evaluate(packed, feed, kernel="compiled"))


class TestKernelSelection:
    @pytest.fixture(autouse=True)
    def _reset_process_kernel(self):
        yield
        set_process_kernel(None)

    def test_default_prefers_compiled(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        set_process_kernel(None)
        assert default_kernel() == "compiled"
        assert resolve_kernel(None) == "compiled"
        assert resolve_kernel("auto") == "compiled"
        assert resolve_kernel("packed") == "packed"

    def test_process_kernel_from_config(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        set_process_kernel("packed")
        assert default_kernel() == "packed"
        set_process_kernel("auto")  # config 'auto' resets
        assert default_kernel() == "compiled"

    def test_env_override_beats_process_kernel(self, monkeypatch):
        set_process_kernel("compiled")
        monkeypatch.setenv(KERNEL_ENV, "packed")
        assert default_kernel() == "packed"
        monkeypatch.setenv(KERNEL_ENV, "auto")  # env 'auto' defers
        assert default_kernel() == "compiled"

    def test_invalid_kernel_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown sim kernel"):
            resolve_kernel("quantum")
        with pytest.raises(ValueError, match="unknown sim kernel"):
            set_process_kernel("quantum")
        monkeypatch.setenv(KERNEL_ENV, "quantum")
        with pytest.raises(ValueError, match="unknown sim kernel"):
            default_kernel()

    def test_evaluate_error_lists_compiled(self):
        builder = NetlistBuilder()
        builder.netlist.add_input("a")
        with pytest.raises(ValueError, match="compiled"):
            evaluate(builder.build(), {"a": True}, kernel="quantum")

    def test_jit_status_reports_kill_switch(self, monkeypatch):
        monkeypatch.setenv(JIT_ENV, "off")
        status = jit_status()
        assert status["active"] is False
        assert "disabled" in status["reason"]
        assert active_executor() == "numpy"
        monkeypatch.delenv(JIT_ENV)
        status = jit_status()
        # With the switch released the decision is the import probe's.
        assert status["active"] == status["available"]
        assert isinstance(status["reason"], str)

    def test_segment_counts_none_without_jit(self, monkeypatch):
        monkeypatch.setenv(JIT_ENV, "0")
        words = np.zeros((3, 4), dtype=WORD_DTYPE)
        assert compiled_mod.segment_toggle_counts(words, 2, 2) is None

    def test_stream_false_without_jit(self, monkeypatch):
        monkeypatch.setenv(JIT_ENV, "0")
        packed = build_mac_unit().multiplier.packed()
        ok = compiled_mod.stream_bus_arrivals(
            packed.program, np.zeros(len(packed)),
            np.zeros((len(packed), 1), dtype=WORD_DTYPE),
            np.array([0], dtype=np.int64), np.zeros((1, 64)))
        assert ok is False


class TestStreamingDTA:
    @settings(max_examples=40, deadline=None)
    @given(netlist=random_netlists(), batch=st.integers(1, 130),
           seed=st.integers(0, 2**32 - 1))
    def test_streaming_matches_reference(self, netlist, batch, seed):
        library = default_library()
        before = _random_feed(netlist, batch, seed)
        after = _random_feed(netlist, batch, seed + 1)
        ref_arrivals, __ = dynamic_arrival_times_reference(
            netlist, library, before, after)
        nets = np.arange(ref_arrivals.shape[0], dtype=np.int64)
        np.testing.assert_array_equal(
            ref_arrivals,
            dynamic_bus_arrivals(netlist, library, before, after, nets))

    def _mult_transition(self, n, seed=3):
        mac = build_mac_unit()
        rng = np.random.default_rng(seed)
        weight_bus = bus_inputs("w", np.full(n, -105), 8)
        before = bus_inputs("act", rng.integers(-128, 128, n), 8)
        before.update(weight_bus)
        after = bus_inputs("act", rng.integers(-128, 128, n), 8)
        after.update(weight_bus)
        nets = np.asarray(
            mac.multiplier.output_bus("product", mac.product_bits),
            dtype=np.int64)
        return mac.multiplier.packed(), before, after, nets

    @pytest.mark.parametrize("batch", (63, 64, 129, 200))
    def test_windowing_is_invisible(self, batch):
        """Slab boundaries (and a tail window) cannot perturb a bit."""
        library = default_library()
        packed, before, after, nets = self._mult_transition(batch)
        whole = dynamic_bus_arrivals(packed, library, before, after,
                                     nets)
        windowed = dynamic_bus_arrivals(packed, library, before, after,
                                        nets, window=64)
        np.testing.assert_array_equal(whole, windowed)
        ref_arrivals, __ = dynamic_arrival_times_reference(
            packed, library, before, after)
        np.testing.assert_array_equal(whole, ref_arrivals[nets])

    def test_packed_kernel_is_the_oracle_path(self):
        library = default_library()
        packed, before, after, nets = self._mult_transition(100)
        np.testing.assert_array_equal(
            dynamic_bus_arrivals(packed, library, before, after, nets),
            dynamic_bus_arrivals(packed, library, before, after, nets,
                                 kernel="packed"))

    def test_arrivals_out_reuse_is_exact(self):
        library = default_library()
        packed, before, after, nets = self._mult_transition(190)
        fresh = dynamic_bus_arrivals(packed, library, before, after,
                                     nets, window=128)
        buf = np.full((len(packed), 128), np.nan)  # poisoned
        reused = dynamic_bus_arrivals(packed, library, before, after,
                                      nets, window=128,
                                      arrivals_out=buf)
        np.testing.assert_array_equal(fresh, reused)

    def test_window_and_buffer_validation(self):
        library = default_library()
        packed, before, after, nets = self._mult_transition(70)
        with pytest.raises(ValueError, match="multiple of 64"):
            dynamic_bus_arrivals(packed, library, before, after, nets,
                                 window=100)
        with pytest.raises(ValueError, match="arrivals_out"):
            dynamic_bus_arrivals(packed, library, before, after, nets,
                                 window=64,
                                 arrivals_out=np.zeros((3, 64)))

    def test_profiler_is_kernel_independent(self, monkeypatch):
        """The full profiler path (chunking, buffer reuse, compose) is
        bit-for-bit identical under either kernel."""
        from repro.timing.profile import WeightDelayProfiler

        mac = build_mac_unit()
        library = default_library()
        rng = np.random.default_rng(5)
        act_from = rng.integers(-128, 128, 230)
        act_to = rng.integers(-128, 128, 230)
        monkeypatch.setenv(KERNEL_ENV, "compiled")
        compiled = WeightDelayProfiler(mac, library, chunk=64).delays(
            -105, act_from, act_to)
        monkeypatch.setenv(KERNEL_ENV, "packed")
        packed = WeightDelayProfiler(mac, library, chunk=64).delays(
            -105, act_from, act_to)
        np.testing.assert_array_equal(compiled, packed)
