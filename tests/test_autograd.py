"""Numerical-gradient and semantics tests for the autograd engine."""

import numpy as np
import pytest

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn wrt x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        out[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=2e-2, scale=1.0):
    """Compare autograd and numerical gradients of ``sum(build(x))``."""
    rng = np.random.default_rng(seed)
    x = (rng.normal(0, 1, shape) * scale).astype(np.float64)

    def scalar(values):
        t = Tensor(values.astype(np.float32))
        return float(build(t).sum().data)

    t = Tensor(x.astype(np.float32), requires_grad=True)
    build(t).sum().backward()
    got = t.grad.astype(np.float64)
    want = numerical_grad(scalar, x.copy())
    np.testing.assert_allclose(got, want, atol=atol, rtol=2e-2)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda x: x + 3.0, (4, 5))

    def test_mul_broadcast(self):
        w = Tensor(np.array([2.0, -1.0, 0.5], dtype=np.float32))
        check_gradient(lambda x: x * w, (4, 3))

    def test_sub_and_neg(self):
        check_gradient(lambda x: (5.0 - x) - (-x) * 0.5, (3, 3))

    def test_div(self):
        check_gradient(lambda x: 2.0 / (x * x + 2.0), (4,))

    def test_pow(self):
        check_gradient(lambda x: (x * x + 1.0) ** 1.5, (5,))

    def test_exp_log(self):
        check_gradient(lambda x: ag.log(ag.exp(x) + 1.0), (6,))

    def test_relu(self):
        check_gradient(lambda x: ag.relu(x), (10,))

    def test_relu6(self):
        check_gradient(lambda x: ag.relu6(x * 4.0), (10,))

    def test_clip(self):
        check_gradient(lambda x: ag.clip(x, -0.5, 0.5), (10,))


class TestShapeOps:
    def test_reshape_gradient(self):
        check_gradient(lambda x: (x.reshape(2, 6) * 2.0), (3, 4))

    def test_transpose_gradient(self):
        w = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        check_gradient(lambda x: ag.transpose(x, (1, 0)) * w, (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=1) ** 2.0, (3, 4))

    def test_mean_axes(self):
        check_gradient(lambda x: x.mean(axis=(0, 2), keepdims=True),
                       (2, 3, 4))

    def test_matmul(self):
        w = Tensor(np.random.default_rng(1).normal(0, 1, (4, 3))
                   .astype(np.float32))
        check_gradient(lambda x: x @ w, (5, 4))

    def test_matmul_rejects_nd(self):
        a = Tensor(np.zeros((2, 3, 4)))
        b = Tensor(np.zeros((4, 5)))
        with pytest.raises(ValueError):
            ag.matmul(a, b)


class TestConvGradients:
    def test_conv2d_forward_matches_direct(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, (2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(0, 1, (4, 3, 3, 3)).astype(np.float32)
        out = ag.conv2d(Tensor(x), Tensor(w), stride=1, pad=1)
        # direct correlation reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        want = np.zeros((2, 4, 6, 6), dtype=np.float64)
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        want[n, o, i, j] = (
                            xp[n, :, i:i + 3, j:j + 3] * w[o]
                        ).sum()
        np.testing.assert_allclose(out.data, want, atol=1e-4)

    def test_conv2d_input_gradient(self):
        w = Tensor(np.random.default_rng(3).normal(0, 0.5, (2, 3, 3, 3))
                   .astype(np.float32))
        check_gradient(lambda x: ag.conv2d(x, w, stride=1, pad=1),
                       (2, 3, 5, 5))

    def test_conv2d_weight_gradient(self):
        rng = np.random.default_rng(4)
        x_data = rng.normal(0, 1, (2, 3, 5, 5)).astype(np.float64)
        x = Tensor(x_data.astype(np.float32))

        def build(w):
            return ag.conv2d(x, w, stride=2, pad=1)

        check_gradient(build, (2, 3, 3, 3), seed=5, scale=0.5)

    def test_conv2d_bias_gradient(self):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(0, 1, (2, 3, 4, 4)).astype(np.float32))
        w = Tensor(rng.normal(0, 0.5, (2, 3, 3, 3)).astype(np.float32))
        b = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        ag.conv2d(x, w, b, pad=1).sum().backward()
        np.testing.assert_allclose(b.grad, [32.0, 32.0], atol=1e-4)

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(ValueError):
            ag.conv2d(Tensor(np.zeros((1, 3, 4, 4))),
                      Tensor(np.zeros((2, 4, 3, 3))))

    def test_depthwise_forward(self):
        rng = np.random.default_rng(7)
        x = rng.normal(0, 1, (2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(0, 1, (3, 1, 3, 3)).astype(np.float32)
        out = ag.depthwise_conv2d(Tensor(x), Tensor(w), pad=1)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        want = np.zeros((2, 3, 6, 6))
        for n in range(2):
            for c in range(3):
                for i in range(6):
                    for j in range(6):
                        want[n, c, i, j] = (
                            xp[n, c, i:i + 3, j:j + 3] * w[c, 0]
                        ).sum()
        np.testing.assert_allclose(out.data, want, atol=1e-4)

    def test_depthwise_gradients(self):
        w = Tensor(np.random.default_rng(8).normal(0, 0.5, (3, 1, 3, 3))
                   .astype(np.float32))
        check_gradient(
            lambda x: ag.depthwise_conv2d(x, w, stride=1, pad=1),
            (2, 3, 5, 5))

    def test_depthwise_shape_validation(self):
        with pytest.raises(ValueError):
            ag.depthwise_conv2d(Tensor(np.zeros((1, 3, 4, 4))),
                                Tensor(np.zeros((3, 2, 3, 3))))


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = ag.max_pool2d(Tensor(x), 2)
        np.testing.assert_array_equal(
            out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient(self):
        check_gradient(lambda x: ag.max_pool2d(x, 2), (2, 2, 4, 4))

    def test_avg_pool_gradient(self):
        check_gradient(lambda x: ag.avg_pool2d(x, 2), (2, 2, 4, 4))

    def test_global_avg_pool(self):
        check_gradient(lambda x: ag.global_avg_pool2d(x) ** 2.0,
                       (2, 3, 4, 4))

    def test_pool_divisibility(self):
        with pytest.raises(ValueError):
            ag.max_pool2d(Tensor(np.zeros((1, 1, 5, 4))), 2)


class TestSTE:
    def test_ste_round_passes_gradient(self):
        x = Tensor(np.array([0.2, 1.7, -0.6], dtype=np.float32),
                   requires_grad=True)
        ag.ste_round(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_ste_round_forward(self):
        x = Tensor(np.array([0.2, 1.7, -0.6], dtype=np.float32))
        np.testing.assert_array_equal(ag.ste_round(x).data, [0, 2, -1])

    def test_project_ste(self):
        x = Tensor(np.array([1.1, 2.9], dtype=np.float32),
                   requires_grad=True)
        out = ag.project_ste(x, lambda v: np.floor(v))
        np.testing.assert_array_equal(out.data, [1.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_project_must_preserve_shape(self):
        x = Tensor(np.zeros(3))
        with pytest.raises(ValueError):
            ag.project_ste(x, lambda v: v[:2])


class TestEngineSemantics:
    def test_backward_needs_scalar(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_blocks_tape(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x.detach() * 2.0
        assert not y.requires_grad

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        (a * b).backward()  # d/dx 10x^2 = 20x = 60
        np.testing.assert_allclose(x.grad, [60.0])

    def test_deep_chain_no_recursion_limit(self):
        x = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        y = x
        for __ in range(3000):
            y = y + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])
