"""Tests for the stage-graph pipeline engine and the artifact cache."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.artifacts import ArtifactStore, hash_key
from repro.core.pipeline import POWER_PRUNING_GRAPH, PipelineConfig, \
    PowerPruner
from repro.core.stages import (
    POWER_PRUNING_STAGES,
    Stage,
    StageGraph,
    StageRunner,
)


class TestHashKey:
    def test_stable_under_dict_ordering(self):
        assert hash_key({"a": 1, "b": 2}) == hash_key({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert hash_key({"a": 1}) != hash_key({"a": 2})

    def test_handles_nested_and_numpy(self):
        key = hash_key({"t": (1, 2.5, None), "n": np.int64(3),
                        "arr": np.arange(3)})
        assert key == hash_key({"t": [1, 2.5, None], "n": 3,
                                "arr": [0, 1, 2]})

    def test_int_float_distinct(self):
        assert hash_key({"x": 825}) != hash_key({"x": 825.0})

    def test_rejects_unhashable_payloads(self):
        with pytest.raises(TypeError):
            hash_key({"fn": object()})


class TestArtifactStore:
    def test_get_or_compute_computes_once(self):
        store = ArtifactStore()
        calls = []
        for __ in range(3):
            value = store.get_or_compute("k", lambda: calls.append(1)
                                         or "v")
        assert value == "v"
        assert len(calls) == 1
        assert store.hits == 2 and store.misses == 1

    def test_memory_layer_returns_same_object(self):
        store = ArtifactStore()
        first = store.get_or_compute("k", lambda: {"payload": 1})
        second = store.get_or_compute("k", lambda: {"payload": 2})
        assert first is second

    def test_disk_roundtrip_across_stores(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        writer.put("k", {"arr": np.arange(4)})
        reader = ArtifactStore(tmp_path)
        value = reader.get_or_compute(
            "k", lambda: pytest.fail("must hit disk"))
        assert np.array_equal(value["arr"], np.arange(4))
        assert reader.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        (tmp_path / "k.pkl").write_bytes(b"not a pickle")
        store = ArtifactStore(tmp_path)
        assert store.get_or_compute("k", lambda: "recomputed") == \
            "recomputed"

    def test_cache_dir_must_not_be_a_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("")
        with pytest.raises(ValueError):
            ArtifactStore(target)

    def test_unpersisted_artifacts_stay_off_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_compute("k", lambda: "v", persist=False)
        assert store.get_or_compute("k", lambda: "other",
                                    persist=False) == "v"
        assert not (tmp_path / "k.pkl").exists()
        assert ArtifactStore(tmp_path).get("k") is None


def _counting_graph(counts):
    """a -> b -> c toy graph that tallies stage executions."""
    graph = StageGraph()
    graph.add(Stage("a", lambda ops, inp: counts.update(
        a=counts["a"] + 1) or ops.config.x, fields=("x",)))
    graph.add(Stage("b", lambda ops, inp: counts.update(
        b=counts["b"] + 1) or inp["a"] * 10, deps=("a",)))
    graph.add(Stage("c", lambda ops, inp: counts.update(
        c=counts["c"] + 1) or inp["b"] + ops.config.y,
        deps=("b",), fields=("y",)))
    return graph


def _ops(x=1, y=2):
    return SimpleNamespace(config=SimpleNamespace(x=x, y=y),
                           log=lambda message: None)


class TestStageRunner:
    def test_each_stage_computed_once(self):
        counts = {"a": 0, "b": 0, "c": 0}
        runner = StageRunner(_counting_graph(counts), _ops())
        assert runner.get("c") == 12
        assert runner.get("c") == 12
        assert runner.get("a") == 1
        assert counts == {"a": 1, "b": 1, "c": 1}

    def test_shared_store_skips_all_stages(self):
        counts = {"a": 0, "b": 0, "c": 0}
        graph = _counting_graph(counts)
        store = ArtifactStore()
        StageRunner(graph, _ops(), store).get("c")
        assert StageRunner(graph, _ops(), store).get("c") == 12
        assert counts == {"a": 1, "b": 1, "c": 1}
        assert store.misses == 3

    def test_changed_field_invalidates_only_downstream(self):
        counts = {"a": 0, "b": 0, "c": 0}
        graph = _counting_graph(counts)
        store = ArtifactStore()
        StageRunner(graph, _ops(y=2), store).get("c")
        assert StageRunner(graph, _ops(y=5), store).get("c") == 15
        # a and b were reused; only c recomputed
        assert counts == {"a": 1, "b": 1, "c": 2}

    def test_dependencies_must_exist(self):
        graph = StageGraph()
        with pytest.raises(ValueError):
            graph.add(Stage("b", lambda ops, inp: None, deps=("a",)))

    def test_duplicate_stage_rejected(self):
        graph = StageGraph()
        graph.add(Stage("a", lambda ops, inp: None))
        with pytest.raises(ValueError):
            graph.add(Stage("a", lambda ops, inp: None))


class TestPowerPruningGraphKeys:
    """Selective invalidation over the real pipeline graph."""

    def _keys(self, **overrides):
        config = PipelineConfig()
        for name, value in overrides.items():
            setattr(config, name, value)
        return POWER_PRUNING_GRAPH.keys(config)

    def test_covers_all_declared_stages(self):
        assert tuple(POWER_PRUNING_GRAPH.names()) == POWER_PRUNING_STAGES

    def test_same_config_same_keys(self):
        assert self._keys() == self._keys()

    def test_seed_invalidates_everything_but_the_dataset(self):
        base, changed = self._keys(), self._keys(seed=7)
        assert changed["dataset"] == base["dataset"]
        for name in POWER_PRUNING_STAGES:
            if name != "dataset":
                assert changed[name] != base[name], name

    def test_prune_fraction_keeps_training_and_power_prefix(self):
        base, changed = self._keys(), self._keys(prune_fraction=0.7)
        unchanged = ("dataset", "baseline", "operand_stats",
                     "power_table")
        for name in unchanged:
            assert changed[name] == base[name], name
        for name in set(POWER_PRUNING_STAGES) - set(unchanged):
            assert changed[name] != base[name], name

    def test_char_samples_keeps_training_prefix(self):
        base, changed = self._keys(), self._keys(char_samples=999)
        for name in ("dataset", "baseline", "pruned", "operand_stats"):
            assert changed[name] == base[name], name
        for name in ("power_table", "power_selection", "timing_table",
                     "delay_selection", "power_measurement", "report"):
            assert changed[name] != base[name], name


class TestCharWeights:
    def test_anchors_deduplicated(self):
        weights = PipelineConfig(char_weight_step=4).char_weights()
        assert len(weights) == len(set(weights))
        for anchor in (-127, -105, -2, 0, 2, 105, 127):
            assert anchor in weights

    def test_cached_tuple_identity(self):
        config = PipelineConfig()
        assert config.char_weights() is config.char_weights()

    def test_cache_tracks_step_changes(self):
        config = PipelineConfig(char_weight_step=4)
        coarse = config.char_weights()
        config.char_weight_step = 16
        finer_step = config.char_weights()
        assert finer_step is config.char_weights()
        assert len(finer_step) < len(coarse)


def _tiny_config(**overrides) -> PipelineConfig:
    config = PipelineConfig(
        network="lenet5", dataset="cifar10", width_mult=0.25,
        n_train=160, n_test=80, baseline_epochs=1, retrain_epochs=1,
        char_weight_step=32, char_samples=120, timing_transitions=600,
        n_restarts=1, stats_batch=4,
        power_thresholds_uw=(900.0,), delay_thresholds_ps=(170.0,),
    )
    for name, value in overrides.items():
        setattr(config, name, value)
    return config


@pytest.mark.slow
class TestPipelineCacheDeterminism:
    def test_cached_resume_reproduces_report_bitwise(self, tmp_path):
        uncached = PowerPruner(_tiny_config()).run()

        cache = tmp_path / "artifact-cache"
        cold = PowerPruner(_tiny_config(), cache_dir=cache)
        cold_report = cold.run()
        assert cold.store.misses > 0

        warm = PowerPruner(_tiny_config(), cache_dir=cache)
        warm_report = warm.run()
        assert warm.store.misses == 0  # every stage resumed from disk

        for report in (cold_report, warm_report):
            assert json.dumps(report.as_dict(), sort_keys=True) == \
                json.dumps(uncached.as_dict(), sort_keys=True)
            pruned = report.extras["pruned"]
            reference = uncached.extras["pruned"]
            assert pruned["accuracy"] == reference["accuracy"]
            assert pruned["power_opt"].total_uw == \
                reference["power_opt"].total_uw

    def test_upstream_change_recomputes_only_downstream(self, tmp_path):
        cache = tmp_path / "artifact-cache"
        PowerPruner(_tiny_config(), cache_dir=cache).run()

        changed = PowerPruner(_tiny_config(prune_fraction=0.6),
                              cache_dir=cache)
        changed.run()
        # baseline/operand_stats/power_table come from the disk cache;
        # pruning and everything after it recompute, plus the dataset,
        # which is deliberately memory-only (persist=False).
        assert changed.store.hits >= 3
        recomputed = {"dataset", "pruned", "power_selection",
                      "timing_table", "delay_selection",
                      "voltage_scaling", "power_measurement", "report"}
        assert changed.store.misses == len(recomputed)
