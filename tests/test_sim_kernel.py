"""Property tests for the levelized / bit-packed simulation kernels.

The packed and levelized kernels must be *bit-for-bit* equal to the
reference per-gate walk on every netlist and every batch size — that
equivalence is what lets the pipeline adopt them with zero golden-file
regeneration and zero stage-version bumps.  Hypothesis drives random
DAGs (all gate types, shared constants, random fanins) and random batch
sizes, including the awkward non-multiple-of-64 ones where packed-word
padding bugs would live.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import default_library
from repro.netlist import NetlistBuilder, build_mac_unit
from repro.netlist.gates import GateType, SOURCE_TYPES
from repro.sim import logic as logic_mod
from repro.sim.dynamic_timing import (
    dynamic_arrival_times,
    dynamic_arrival_times_reference,
)
from repro.sim.logic import (
    bus_inputs,
    evaluate,
    evaluate_words,
    pack_bits,
    popcount_words,
    unpack_bits,
)
from repro.sim.switching import (
    paired_toggle_rates,
    paired_toggle_rates_words,
)

#: Batch sizes hostile to 64-bit word packing.
AWKWARD_BATCHES = (1, 3, 63, 64, 65, 127, 128, 129, 200)

_CELL_TYPES = tuple(t for t in GateType if t not in SOURCE_TYPES)


@st.composite
def random_netlists(draw):
    """A random topologically ordered DAG over all gate types."""
    builder = NetlistBuilder("random")
    n_inputs = draw(st.integers(1, 6))
    nets = [builder.netlist.add_input(f"in[{i}]")
            for i in range(n_inputs)]
    if draw(st.booleans()):
        nets.append(builder.const(False))
    if draw(st.booleans()):
        nets.append(builder.const(True))
    n_gates = draw(st.integers(1, 40))
    for __ in range(n_gates):
        gtype = draw(st.sampled_from(_CELL_TYPES))
        fanins = [nets[draw(st.integers(0, len(nets) - 1))]
                  for __ in range(
                      {GateType.INV: 1, GateType.BUF: 1,
                       GateType.MUX2: 3}.get(gtype, 2))]
        nets.append(builder.netlist.add_gate(gtype, *fanins))
    builder.netlist.mark_output("y", nets[-1])
    builder.netlist.mark_output("z", nets[len(nets) // 2])
    return builder.build()


def _random_feed(netlist, batch, seed):
    rng = np.random.default_rng(seed)
    return {name: rng.random(batch) < 0.5
            for name in netlist.input_names}


class TestKernelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(netlist=random_netlists(), batch=st.integers(1, 200),
           seed=st.integers(0, 2**32 - 1))
    def test_all_kernels_bit_identical(self, netlist, batch, seed):
        feed = _random_feed(netlist, batch, seed)
        reference = evaluate(netlist, feed, kernel="reference")
        levelized = evaluate(netlist, feed, kernel="levelized")
        packed = evaluate(netlist, feed, kernel="packed")
        np.testing.assert_array_equal(reference, levelized)
        np.testing.assert_array_equal(reference, packed)

    @settings(max_examples=30, deadline=None)
    @given(netlist=random_netlists(), half=st.integers(1, 130),
           seed=st.integers(0, 2**32 - 1))
    def test_paired_words_match_reference(self, netlist, half, seed):
        """Word-aligned halves reproduce the stacked boolean layout."""
        feed = _random_feed(netlist, 2 * half, seed)
        reference = evaluate(netlist, feed, kernel="reference")
        paired = evaluate_words(netlist, feed, pair_halves=True)
        assert paired.half_batch == half
        np.testing.assert_array_equal(reference, paired.unpack())
        np.testing.assert_array_equal(
            paired_toggle_rates(reference),
            paired_toggle_rates_words(paired))

    @pytest.mark.parametrize("batch", AWKWARD_BATCHES)
    def test_mac_multiplier_awkward_batches(self, batch):
        mac = build_mac_unit()
        rng = np.random.default_rng(batch)
        feed = bus_inputs("act", rng.integers(-128, 128, batch), 8)
        feed.update(bus_inputs("w", rng.integers(-128, 128, batch), 8))
        reference = evaluate(mac.multiplier, feed, kernel="reference")
        np.testing.assert_array_equal(
            reference, evaluate(mac.multiplier, feed))

    @pytest.mark.parametrize("kernel", ["packed", "levelized"])
    def test_mux_and_const_corners(self, kernel):
        """MUX2 select polarity and shared constants survive packing."""
        builder = NetlistBuilder()
        sel = builder.netlist.add_input("sel")
        a = builder.netlist.add_input("a")
        zero = builder.const(False)
        one = builder.const(True)
        builder.netlist.mark_output("m", builder.mux2(sel, a, one))
        builder.netlist.mark_output("n", builder.mux2(a, zero, sel))
        builder.netlist.mark_output("z", zero)
        builder.netlist.mark_output("o", one)
        netlist = builder.build()
        feed = {"sel": np.array([False, False, True, True] * 17),
                "a": np.array([False, True, False, True] * 17)}
        np.testing.assert_array_equal(
            evaluate(netlist, feed, kernel="reference"),
            evaluate(netlist, feed, kernel=kernel))

    def test_unknown_kernel_rejected(self):
        builder = NetlistBuilder()
        builder.netlist.add_input("a")
        with pytest.raises(ValueError, match="unknown kernel"):
            evaluate(builder.build(), {"a": True}, kernel="quantum")

    def test_missing_input_message_matches_reference(self):
        builder = NetlistBuilder()
        builder.netlist.add_input("a")
        builder.netlist.add_input("b")
        for kernel in ("packed", "levelized", "reference"):
            with pytest.raises(ValueError, match="missing"):
                evaluate(builder.build(), {"a": True}, kernel=kernel)

    def test_odd_stacked_batch_rejected(self):
        builder = NetlistBuilder()
        builder.netlist.add_input("a")
        with pytest.raises(ValueError, match="before/after"):
            evaluate_words(builder.build(), {"a": np.zeros(3, bool)},
                           pair_halves=True)

    def test_packed_netlist_survives_pickling(self):
        """Workers receive packed views with a warm cached schedule."""
        packed = build_mac_unit().multiplier.packed()
        packed.schedule  # build + cache
        clone = pickle.loads(pickle.dumps(packed))
        rng = np.random.default_rng(7)
        feed = bus_inputs("act", rng.integers(-128, 128, 65), 8)
        feed.update(bus_inputs("w", rng.integers(-128, 128, 65), 8))
        np.testing.assert_array_equal(
            evaluate(packed, feed), evaluate(clone, feed))


class TestPackingPrimitives:
    @settings(max_examples=40, deadline=None)
    @given(batch=st.integers(1, 300), seed=st.integers(0, 2**32 - 1))
    def test_pack_unpack_roundtrip(self, batch, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random((5, batch)) < 0.5
        words = pack_bits(bits)
        assert words.shape == (5, -(-batch // 64))
        np.testing.assert_array_equal(unpack_bits(words, batch), bits)

    def test_pack_pads_tail_with_zeros(self):
        words = pack_bits(np.ones((1, 3), dtype=bool))
        assert int(words[0, 0]) == 0b111

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=64))
    def test_popcount_fallback_matches_native(self, raw):
        words = np.asarray(raw, dtype=np.uint64).reshape(1, -1)
        expected = sum(int(w).bit_count() for w in raw)
        assert logic_mod._popcount_lookup(words)[0] == expected
        if hasattr(np, "bitwise_count"):
            assert logic_mod._popcount_native(words)[0] == expected

    def test_popcount_batch_masks_garbage_padding(self):
        """Inverting gates set padding bits; ``batch=`` masks them."""
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        builder.netlist.mark_output("y", builder.inv(a))
        netlist = builder.build()
        batch = 10  # 54 garbage tail bits in the INV row
        values = evaluate_words(netlist, {"a": np.zeros(batch, bool)})
        inv_row = values.words[1:2]
        assert popcount_words(inv_row)[0] > batch  # raw counts lie
        assert popcount_words(inv_row, batch=batch)[0] == batch

    @pytest.mark.parametrize("pair_halves", [False, True])
    def test_read_output_bus_accepts_packed_values(self, pair_halves):
        from repro.sim.logic import read_output_bus

        mac = build_mac_unit()
        rng = np.random.default_rng(21)
        batch = 130
        acts = rng.integers(-128, 128, batch)
        weights = rng.integers(-128, 128, batch)
        feed = bus_inputs("act", acts, 8)
        feed.update(bus_inputs("w", weights, 8))
        values = evaluate_words(mac.multiplier, feed,
                                pair_halves=pair_halves)
        products = read_output_bus(mac.multiplier, values, "product", 16)
        np.testing.assert_array_equal(products, acts * weights)

    def test_popcount_words_uses_active_impl(self, monkeypatch):
        calls = []

        def spy(words):
            calls.append(words.shape)
            return logic_mod._popcount_lookup(words)

        monkeypatch.setattr(logic_mod, "_popcount_impl", spy)
        words = pack_bits(np.ones((2, 70), dtype=bool))
        np.testing.assert_array_equal(popcount_words(words), [70, 70])
        assert calls

    def test_paired_rates_with_lookup_fallback(self, monkeypatch):
        """The whole toggle-rate path is popcount-impl independent."""
        monkeypatch.setattr(logic_mod, "_popcount_impl",
                            logic_mod._popcount_lookup)
        mac = build_mac_unit()
        rng = np.random.default_rng(11)
        n = 333
        feed = bus_inputs("act", rng.integers(-128, 128, 2 * n), 8)
        feed.update(bus_inputs("w", np.full(2 * n, -105), 8))
        feed.update(bus_inputs(
            "psum", rng.integers(-(1 << 21), 1 << 21, 2 * n), 22))
        reference = paired_toggle_rates(
            evaluate(mac.full, feed, kernel="reference"))
        packed = paired_toggle_rates_words(
            evaluate_words(mac.full, feed, pair_halves=True))
        np.testing.assert_array_equal(reference, packed)


class TestLevelSchedule:
    @settings(max_examples=40, deadline=None)
    @given(netlist=random_netlists())
    def test_schedule_invariants(self, netlist):
        packed = netlist.packed()
        schedule = packed.schedule
        scheduled = np.concatenate(
            [g.dst for g in schedule.groups]) if schedule.groups \
            else np.array([], dtype=np.int32)
        # Every gate appears exactly once; no source is scheduled.
        gates = [net for net, __, __ in netlist.iter_gates()]
        assert sorted(scheduled.tolist()) == gates
        # Dependencies resolve strictly earlier.
        for group in schedule.groups:
            for fanins, live in ((group.f0, group.n_fanins >= 1),
                                 (group.f1, group.n_fanins >= 2),
                                 (group.f2, group.n_fanins >= 3)):
                if live:
                    assert (schedule.levels[fanins]
                            < schedule.levels[group.dst]).all()

    @settings(max_examples=40, deadline=None)
    @given(netlist=random_netlists())
    def test_fanin_groups_cover_same_gates(self, netlist):
        schedule = netlist.packed().schedule
        by_type = sorted(np.concatenate(
            [g.dst for g in schedule.groups]).tolist())
        by_arity = sorted(np.concatenate(
            [g.dst for g in schedule.fanin_groups]).tolist())
        assert by_type == by_arity
        assert all(g.gtype == -1 for g in schedule.fanin_groups)

    def test_stats_shape(self):
        stats = build_mac_unit().full.packed().schedule.stats()
        assert stats["n_gates"] == build_mac_unit().full.num_gates
        assert stats["n_levels"] > 2
        assert stats["n_groups"] >= stats["n_levels"] - 1


class TestDynamicTimingKernel:
    @settings(max_examples=40, deadline=None)
    @given(netlist=random_netlists(), batch=st.integers(1, 130),
           seed=st.integers(0, 2**32 - 1))
    def test_fused_dta_matches_reference(self, netlist, batch, seed):
        library = default_library()
        before = _random_feed(netlist, batch, seed)
        after = _random_feed(netlist, batch, seed + 1)
        ref_arrivals, ref_toggled = dynamic_arrival_times_reference(
            netlist, library, before, after)
        arrivals, toggled = dynamic_arrival_times(
            netlist, library, before, after)
        np.testing.assert_array_equal(ref_toggled, toggled)
        np.testing.assert_array_equal(ref_arrivals, arrivals)

    def test_fused_dta_multiplier_with_out_buffer(self):
        mac = build_mac_unit()
        library = default_library()
        rng = np.random.default_rng(3)
        n = 129
        weight_bus = bus_inputs("w", np.full(n, -105), 8)
        before = bus_inputs("act", rng.integers(-128, 128, n), 8)
        before.update(weight_bus)
        after = bus_inputs("act", rng.integers(-128, 128, n), 8)
        after.update(weight_bus)
        packed = mac.multiplier.packed()
        ref_arrivals, __ = dynamic_arrival_times_reference(
            packed, library, before, after)
        buf = np.full((len(packed), n), np.nan)  # poisoned
        arrivals, __ = dynamic_arrival_times(
            packed, library, before, after, out=buf)
        assert arrivals is buf
        np.testing.assert_array_equal(ref_arrivals, arrivals)

    def test_out_buffer_validated(self):
        mac = build_mac_unit()
        library = default_library()
        feed = bus_inputs("act", np.array([1]), 8)
        feed.update(bus_inputs("w", np.array([2]), 8))
        with pytest.raises(ValueError, match="C-contiguous float64"):
            dynamic_arrival_times(mac.multiplier, library, feed, feed,
                                  out=np.zeros((3, 1)))

    def test_profiler_chunking_reuses_buffer_bit_for_bit(self):
        """Chunked profiling (buffer reuse + tail chunk) is exact."""
        from repro.timing.profile import WeightDelayProfiler

        mac = build_mac_unit()
        library = default_library()
        rng = np.random.default_rng(5)
        act_from = rng.integers(-128, 128, 230)
        act_to = rng.integers(-128, 128, 230)
        chunked = WeightDelayProfiler(mac, library, chunk=64)
        whole = WeightDelayProfiler(mac, library, chunk=4096)
        np.testing.assert_array_equal(
            chunked.delays(-105, act_from, act_to),
            whole.delays(-105, act_from, act_to))

    def test_profiler_pickles_without_buffer(self):
        from repro.timing.profile import WeightDelayProfiler

        mac = build_mac_unit()
        profiler = WeightDelayProfiler(mac, default_library(), chunk=32)
        profiler.delays(-3, np.arange(40), np.arange(40) - 7)
        assert profiler._arrivals_buf is not None
        clone = pickle.loads(pickle.dumps(profiler))
        assert clone._arrivals_buf is None
        np.testing.assert_array_equal(
            clone.delays(-3, np.arange(40), np.arange(40) - 7),
            profiler.delays(-3, np.arange(40), np.arange(40) - 7))


class TestStaticTimingEquivalence:
    """The levelized static-timing passes must be bit-for-bit equal to
    the per-net reference walks on every netlist — that equivalence is
    what let them land with zero golden regeneration and zero stage
    version bumps."""

    @settings(max_examples=60, deadline=None)
    @given(netlist=random_netlists())
    def test_static_arrival_times_bit_identical(self, netlist):
        from repro.sim.static_timing import (
            static_arrival_times,
            static_arrival_times_reference,
        )

        library = default_library()
        np.testing.assert_array_equal(
            static_arrival_times_reference(netlist, library),
            static_arrival_times(netlist, library))

    @settings(max_examples=60, deadline=None)
    @given(netlist=random_netlists())
    def test_time_to_outputs_bit_identical(self, netlist):
        """Includes the -inf (output-unreachable) nets the random DAGs
        produce in abundance."""
        from repro.sim.static_timing import (
            time_to_outputs,
            time_to_outputs_reference,
        )

        library = default_library()
        reference = time_to_outputs_reference(netlist, library)
        np.testing.assert_array_equal(reference,
                                      time_to_outputs(netlist, library))

    @pytest.mark.parametrize("block", ["full", "multiplier", "adder"])
    def test_mac_blocks_bit_identical(self, block):
        from repro.sim.static_timing import (
            static_arrival_times,
            static_arrival_times_reference,
            time_to_outputs,
            time_to_outputs_reference,
        )

        netlist = getattr(build_mac_unit(), block)
        library = default_library()
        np.testing.assert_array_equal(
            static_arrival_times_reference(netlist, library),
            static_arrival_times(netlist, library))
        np.testing.assert_array_equal(
            time_to_outputs_reference(netlist, library),
            time_to_outputs(netlist, library))

    def test_source_only_netlist(self):
        """No gates at all: arrivals all zero, only outputs reach."""
        from repro.sim.static_timing import (
            static_arrival_times,
            time_to_outputs,
        )

        builder = NetlistBuilder("sources")
        builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.netlist.mark_output("y", b)
        netlist = builder.build()
        library = default_library()
        np.testing.assert_array_equal(
            static_arrival_times(netlist, library), [0.0, 0.0])
        np.testing.assert_array_equal(
            time_to_outputs(netlist, library), [-np.inf, 0.0])
