"""Tests for the logic, switching and timing simulation engines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import default_library
from repro.netlist import NetlistBuilder, build_mac_unit
from repro.sim import (
    bits_to_int,
    dynamic_delays,
    evaluate,
    int_to_bits,
    static_arrival_times,
    static_max_delay,
    time_to_outputs,
    toggle_matrix,
    toggle_rates,
)
from repro.sim.dynamic_timing import dynamic_arrival_times
from repro.sim.logic import bus_inputs, read_output_bus
from repro.sim.static_timing import input_bus_delays
from repro.sim.switching import stream_toggle_counts


class TestBitCodecs:
    def test_roundtrip_signed(self):
        values = np.arange(-128, 128)
        np.testing.assert_array_equal(
            bits_to_int(int_to_bits(values, 8)), values
        )

    def test_roundtrip_unsigned(self):
        values = np.arange(0, 256)
        np.testing.assert_array_equal(
            bits_to_int(int_to_bits(values, 8), signed=False), values
        )

    def test_lsb_first(self):
        bits = int_to_bits(np.array([1]), 8)
        assert bits[0, 0] and not bits[0, 1:].any()

    def test_negative_encoding(self):
        bits = int_to_bits(np.array([-1]), 4)
        assert bits.all()

    @given(st.lists(st.integers(-(1 << 21), (1 << 21) - 1), min_size=1,
                    max_size=50))
    def test_roundtrip_property(self, values):
        arr = np.asarray(values)
        np.testing.assert_array_equal(
            bits_to_int(int_to_bits(arr, 22)), arr
        )


class TestEvaluate:
    def test_missing_input_raises(self):
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.netlist.mark_output("y", builder.and2(a, b))
        with pytest.raises(ValueError, match="missing"):
            evaluate(builder.build(), {"a": np.array([True])})

    def test_scalar_broadcast(self):
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.netlist.mark_output("y", builder.or2(a, b))
        netlist = builder.build()
        values = evaluate(netlist,
                          {"a": True, "b": np.array([False, True])})
        np.testing.assert_array_equal(
            values[netlist.output_names["y"]], [True, True]
        )

    def test_constants(self):
        builder = NetlistBuilder()
        zero = builder.const(False)
        one = builder.const(True)
        builder.netlist.mark_output("z", zero)
        builder.netlist.mark_output("o", one)
        netlist = builder.build()
        values = evaluate(netlist, {}, batch=3)
        assert not values[netlist.output_names["z"]].any()
        assert values[netlist.output_names["o"]].all()


class TestSwitching:
    def test_toggle_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            toggle_matrix(np.zeros((2, 3), bool), np.zeros((2, 4), bool))

    def test_toggle_rates(self):
        before = np.array([[False, False], [True, True]])
        after = np.array([[True, False], [True, False]])
        np.testing.assert_allclose(
            toggle_rates(before, after), [0.5, 0.5]
        )

    def test_stream_toggle_counts(self):
        stream = np.array([[False, True, True, False]])
        assert stream_toggle_counts(stream)[0] == 2

    def test_stream_too_short(self):
        stream = np.array([[True]])
        assert stream_toggle_counts(stream)[0] == 0


class TestStaticTiming:
    def _chain(self, n):
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        out = a
        for __ in range(n):
            out = builder.inv(out)
        builder.netlist.mark_output("y", out)
        return builder.build()

    def test_inverter_chain_delay(self):
        lib = default_library()
        netlist = self._chain(5)
        assert static_max_delay(netlist, lib) == pytest.approx(
            5 * lib.delay_ps("INV")
        )

    def test_arrival_times_monotone_along_chain(self):
        lib = default_library()
        netlist = self._chain(4)
        arrivals = static_arrival_times(netlist, lib)
        assert (np.diff(arrivals) > 0).all()

    def test_no_outputs_raises(self):
        builder = NetlistBuilder()
        builder.netlist.add_input("a")
        with pytest.raises(ValueError):
            static_max_delay(builder.build(), default_library())

    def test_time_to_outputs_matches_forward(self):
        """Input-to-output longest path agrees between both passes."""
        lib = default_library()
        mac = build_mac_unit()
        forward = static_max_delay(mac.multiplier, lib)
        remaining = time_to_outputs(mac.multiplier, lib)
        inputs = list(mac.multiplier.input_names.values())
        assert remaining[inputs].max() == pytest.approx(forward)

    def test_unconnected_net_reports_minus_inf(self):
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.inv(b)  # dangling
        builder.netlist.mark_output("y", builder.inv(a))
        remaining = time_to_outputs(builder.build(), default_library())
        assert remaining[b] == -np.inf

    def test_input_bus_delays_clamped_to_zero(self):
        builder = NetlistBuilder()
        bus = builder.input_bus("x", 2)
        builder.netlist.mark_output("y", builder.inv(bus[0]))
        delays = input_bus_delays(builder.build(), default_library(),
                                  "x", 2)
        assert delays[0] > 0
        assert delays[1] == 0.0


class TestDynamicTiming:
    def test_stable_inputs_give_zero_delay(self):
        lib = default_library()
        mac = build_mac_unit()
        feed = bus_inputs("act", np.array([17]), 8)
        feed.update(bus_inputs("w", np.array([23]), 8))
        delays = dynamic_delays(mac.multiplier, lib, feed, feed)
        assert delays[0] == 0.0

    def test_dynamic_never_exceeds_static(self):
        lib = default_library()
        mac = build_mac_unit()
        sta = static_max_delay(mac.multiplier, lib)
        rng = np.random.default_rng(3)
        a0 = rng.integers(-128, 128, 500)
        a1 = rng.integers(-128, 128, 500)
        w = rng.integers(-128, 128, 500)
        before = bus_inputs("act", a0, 8)
        before.update(bus_inputs("w", w, 8))
        after = bus_inputs("act", a1, 8)
        after.update(bus_inputs("w", w, 8))
        delays = dynamic_delays(mac.multiplier, lib, before, after)
        assert (delays <= sta + 1e-9).all()

    def test_weight_zero_product_never_switches(self):
        lib = default_library()
        mac = build_mac_unit()
        rng = np.random.default_rng(4)
        a0 = rng.integers(-128, 128, 300)
        a1 = rng.integers(-128, 128, 300)
        zeros = np.zeros(300, dtype=np.int64)
        before = bus_inputs("act", a0, 8)
        before.update(bus_inputs("w", zeros, 8))
        after = bus_inputs("act", a1, 8)
        after.update(bus_inputs("w", zeros, 8))
        arrivals, __ = dynamic_arrival_times(
            mac.multiplier, lib, before, after
        )
        nets = mac.multiplier.output_bus("product", 16)
        assert arrivals[nets].max() == 0.0

    def test_inverter_chain_transition(self):
        lib = default_library()
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        out = a
        for __ in range(3):
            out = builder.inv(out)
        builder.netlist.mark_output("y", out)
        netlist = builder.build()
        delays = dynamic_delays(
            netlist, lib, {"a": np.array([False])}, {"a": np.array([True])}
        )
        assert delays[0] == pytest.approx(3 * lib.delay_ps("INV"))

    def test_masked_transition_is_free(self):
        """A switching input masked by an AND gate costs nothing."""
        lib = default_library()
        builder = NetlistBuilder()
        a = builder.netlist.add_input("a")
        b = builder.netlist.add_input("b")
        builder.netlist.mark_output("y", builder.and2(a, b))
        netlist = builder.build()
        delays = dynamic_delays(
            netlist, lib,
            {"a": np.array([False]), "b": np.array([False])},
            {"a": np.array([True]), "b": np.array([False])},
        )
        assert delays[0] == 0.0
