"""Durability and fleet tests: journal, crash recovery, leases, chaos.

The guarantees these pin down (the whole point of the job store):

* a service ``kill -9``-ed mid-job loses **nothing committed** — on
  restart the job resumes from the journal to a terminal state with
  zero lost completed rows and no point executed twice
  (journal-counted, via the subprocess test below);
* two workers pointed at one store drain one queue with every job
  claimed exactly once and every point done exactly once;
* a worker that stops heartbeating forfeits its lease — the job is
  reclaimed and resumed, exactly like pool breakage is retried;
* the chaos knobs (``crash_after_points``, ``lease_drop``) and
  :class:`ChaosStorage` make all of the above deterministic to drill.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import sweep as sweep_mod
from repro.service import JobManager, JobState, JobStore

SRC = str(Path(__file__).resolve().parents[1] / "src")

SPEC = {"experiment": "fig8", "scale": "smoke",
        "thresholds": [None, 900.0]}


def _echo_runner(point, context):
    value = (point.threshold or 0.0) + point.seed
    return {"payload": {"value": value},
            "metrics": {"accuracy": value, "n_weights": 1,
                        "power_opt_mw": value},
            "skipped": None}


def _slow_runner(point, context):
    time.sleep(0.15)
    return _echo_runner(point, context)


@pytest.fixture()
def echo_experiment(monkeypatch):
    monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8", _echo_runner)


@pytest.fixture()
def slow_experiment(monkeypatch):
    monkeypatch.setitem(sweep_mod._POINT_RUNNERS, "fig8", _slow_runner)


def _wait_done(mgr, job_id, timeout=60.0):
    assert mgr.wait(job_id, timeout=timeout), \
        f"job {job_id} never reached a terminal state"
    return mgr.status(job_id)


class TestJobStore:
    """Unit tests of the SQLite journal + lease table."""

    @pytest.fixture()
    def store(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        yield store
        store.close()

    def test_claim_is_exclusive_until_expiry(self, store):
        store.create_job("j1", 1.0, b"spec", {})
        claim = store.claim_next("w1", lease_s=60.0)
        assert claim.job_id == "j1" and not claim.reclaimed
        # The live lease blocks every other worker.
        assert store.claim_next("w2", lease_s=60.0) is None
        worker, deadline, renewals = store.lease_of("j1")
        assert worker == "w1" and renewals == 0
        assert store.renew_lease("j1", "w1", 60.0)
        assert store.lease_of("j1")[2] == 1

    def test_expired_lease_is_reclaimed(self, store):
        store.create_job("j1", 1.0, b"spec", {})
        store.claim_next("w1", lease_s=0.05)
        time.sleep(0.1)
        claim = store.claim_next("w2", lease_s=60.0)
        assert claim is not None and claim.job_id == "j1"
        assert claim.reclaimed  # stolen from a silent worker
        # ... and the previous owner's heartbeat now fails.
        assert not store.renew_lease("j1", "w1", 60.0)
        assert store.lease_of("j1")[0] == "w2"
        events = [e["event"] for e in store.journal_events("j1")]
        assert events == ["submitted", "claimed", "reclaimed"]

    def test_oldest_claimable_job_wins(self, store):
        store.create_job("late", 2.0, b"s", {})
        store.create_job("early", 1.0, b"s", {})
        assert store.claim_next("w", 60.0).job_id == "early"
        assert store.claim_next("w", 60.0).job_id == "late"

    def test_terminal_jobs_are_not_claimable(self, store):
        store.create_job("j1", 1.0, b"s", {})
        claim = store.claim_next("w1", 60.0)
        store.finish_job("j1", "done", 2.0, None, 0, "w1")
        assert store.claim_next("w2", 60.0) is None
        assert store.lease_of("j1") is None  # released atomically

    def test_record_row_is_idempotent_and_journal_counted(self, store):
        store.create_job("j1", 1.0, b"s", {})
        assert store.record_row("j1", 0, b"row", cached=False)
        assert not store.record_row("j1", 0, b"replay", cached=False)
        assert store.count_events("j1", "point_done") == 1
        blob, cached = store.load_rows("j1")[0]
        assert blob == b"row" and cached is False  # first write wins

    def test_row_supersedes_failure(self, store):
        store.create_job("j1", 1.0, b"s", {})
        store.record_failure("j1", 0, {"kind": "pool"})
        assert store.load_failures("j1") == {0: {"kind": "pool"}}
        store.record_row("j1", 0, b"row", cached=False)
        assert store.load_failures("j1") == {}  # retry succeeded

    def test_lifetime_counters_survive_reopen(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        store = JobStore(path)
        store.create_job("j1", 1.0, b"s", {})
        store.record_row("j1", 0, b"r", cached=True)
        store.record_row("j1", 1, b"r", cached=False)
        store.record_failure("j1", 2, {"kind": "error"})
        store.finish_job("j1", "partial", 2.0, None, 3, "w")
        store.close()
        counters = JobStore(path).lifetime_counters()
        assert counters["jobs_submitted"] == 1
        assert counters["jobs_partial"] == 1
        assert counters["points_done"] == 2
        assert counters["points_cached"] == 1
        assert counters["points_failed"] == 1
        assert counters["point_retries"] == 3


class TestRestartRecovery:
    """In-process restart: terminal jobs served, queued jobs resumed."""

    def test_terminal_jobs_survive_restart(self, tmp_path,
                                           echo_experiment):
        cache = str(tmp_path / "cache")
        mgr = JobManager(cache_dir=cache, retry_backoff_s=0.01)
        job_id = mgr.submit_mapping(SPEC)["job_id"]
        _wait_done(mgr, job_id)
        mgr.shutdown()

        fresh = JobManager(cache_dir=cache, retry_backoff_s=0.01)
        try:
            assert fresh.recovered_jobs == 1
            assert fresh.resumed_jobs == []
            assert fresh.status(job_id)["state"] == JobState.DONE
            result = fresh.result(job_id)
            assert result["n_rows"] == 2
            # The lifetime counters were rebuilt from the store.
            assert fresh.stats()["counters"]["points_done"] == 2
        finally:
            fresh.shutdown()

    def test_queued_job_submitted_to_a_dead_manager_is_resumed(
            self, tmp_path, echo_experiment):
        cache = str(tmp_path / "cache")
        store_path = str(tmp_path / "cache" / "service-jobs.sqlite3")
        # Journal a submission directly (as if the manager died after
        # create_job but before running anything).
        import pickle

        from repro.experiments.sweep import expand, \
            sweep_spec_from_mapping
        spec = sweep_spec_from_mapping(dict(SPEC), source="test")
        points = expand(spec)
        store = JobStore(store_path)
        store.create_job("orphan01", time.time(),
                         pickle.dumps((spec, tuple(points))),
                         {"jobs": 1, "char_jobs": 1, "max_retries": 0})
        store.close()

        mgr = JobManager(cache_dir=cache, retry_backoff_s=0.01,
                         poll_interval_s=0.05)
        try:
            assert mgr.resumed_jobs == ["orphan01"]
            status = _wait_done(mgr, "orphan01")
            assert status["state"] == JobState.DONE
            assert status["points"]["done"] == len(points)
        finally:
            mgr.shutdown()


class TestCrashRecovery:
    """The acceptance drill: SIGKILL mid-job, restart, resume."""

    _CHILD = """
import sys
from repro.experiments import sweep as sweep_mod
from repro.service import JobManager

def _echo(point, context):
    value = (point.threshold or 0.0) + point.seed
    return {"payload": {"value": value},
            "metrics": {"accuracy": value}, "skipped": None}

sweep_mod._POINT_RUNNERS["fig8"] = _echo
mgr = JobManager(cache_dir=sys.argv[1], store_path=sys.argv[2],
                 retry_backoff_s=0.01, lease_s=1.0)
status = mgr.submit_mapping({
    "experiment": "fig8", "scale": "smoke",
    "thresholds": [None, 900.0, 1800.0],
    "crash_after_points": 1,
})
print(status["job_id"], flush=True)
mgr.wait(status["job_id"], timeout=60)
print("UNREACHABLE", flush=True)  # the crash knob SIGKILLs us first
"""

    def test_sigkill_mid_job_resumes_with_no_loss_and_no_rerun(
            self, tmp_path, echo_experiment):
        cache = str(tmp_path / "cache")
        store_path = str(tmp_path / "store" / "jobs.sqlite3")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", self._CHILD, cache, store_path],
            capture_output=True, text=True, timeout=120, env=env)
        # The crash knob killed the child the instant the first row
        # was journaled — the hard way, not an exception.
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "UNREACHABLE" not in proc.stdout
        job_id = proc.stdout.split()[0]

        store = JobStore(store_path)
        rows_before_restart = store.load_rows(job_id)
        assert len(rows_before_restart) == 1  # the journaled row
        assert store.load_job(job_id)["state"] == "running"
        store.close()

        # Restart "the service" on the same store + cache.  The dead
        # child's lease (1 s) expires, the job is reclaimed and
        # resumes from the journal.
        mgr = JobManager(cache_dir=cache, store_path=store_path,
                         retry_backoff_s=0.01, lease_s=1.0,
                         poll_interval_s=0.1)
        try:
            assert job_id in mgr.resumed_jobs
            status = _wait_done(mgr, job_id, timeout=60.0)
            assert status["state"] == JobState.DONE
            assert status["points"]["done"] == 3

            # Zero lost completed rows: the pre-crash row is still the
            # journaled original, never recomputed or re-recorded.
            rows_after = mgr.store.load_rows(job_id)
            assert len(rows_after) == 3
            (index,) = rows_before_restart
            assert rows_after[index][0] == rows_before_restart[index][0]

            # No point executed twice, counted from the journal: one
            # point_done record per grid index, exactly once each.
            done_events = mgr.store.journal_events(job_id,
                                                   event="point_done")
            indices = [event["detail"]["index"]
                       for event in done_events]
            assert sorted(indices) == [0, 1, 2]

            # The recovery itself is journaled.
            events = [e["event"]
                      for e in mgr.store.journal_events(job_id)]
            assert "reclaimed" in events
            assert "resumed" in events
            assert events[-1] == "done"
        finally:
            mgr.shutdown()


class TestWorkerFleet:
    """Two managers on one store drain one queue, exactly once each."""

    def test_two_workers_claim_disjoint_jobs(self, tmp_path,
                                             slow_experiment):
        cache = str(tmp_path / "cache")
        store_path = str(tmp_path / "jobs.sqlite3")
        first = JobManager(cache_dir=cache, store_path=store_path,
                           worker_id="w1", retry_backoff_s=0.01,
                           poll_interval_s=0.05)
        second = JobManager(cache_dir=cache, store_path=store_path,
                            worker_id="w2", retry_backoff_s=0.01,
                            poll_interval_s=0.05)
        try:
            job_ids = [
                first.submit_mapping(dict(SPEC, seeds=[seed]))["job_id"]
                for seed in range(4)
            ]
            for job_id in job_ids:
                status = _wait_done(first, job_id, timeout=60.0)
                assert status["state"] == JobState.DONE

            store = first.store
            claimants = set()
            for job_id in job_ids:
                # Claimed exactly once — never stolen, never doubled.
                claims = store.journal_events(job_id, event="claimed")
                assert len(claims) == 1
                assert store.count_events(job_id, "reclaimed") == 0
                claimants.add(claims[0]["detail"]["worker"])
                # Every point done exactly once (journal-counted).
                done = store.journal_events(job_id, event="point_done")
                indices = [e["detail"]["index"] for e in done]
                assert sorted(indices) == sorted(set(indices))
                assert len(indices) == 2
            # With 4 slow jobs and a 50 ms poll, both workers drained.
            assert claimants == {"w1", "w2"}

            # Both managers see every job through the shared store.
            assert second.status(job_ids[0])["state"] == JobState.DONE
            assert second.result(job_ids[0])["n_rows"] == 2
        finally:
            first.shutdown()
            second.shutdown()


class TestLeaseDropChaos:
    """The lease_drop knob: abandon mid-job, reclaim, resume."""

    def test_dropped_lease_is_reclaimed_and_job_completes(
            self, tmp_path, echo_experiment):
        mgr = JobManager(cache_dir=str(tmp_path / "cache"),
                         retry_backoff_s=0.01, lease_s=30.0,
                         poll_interval_s=0.05)
        try:
            body = dict(SPEC, thresholds=[None, 900.0, 1800.0],
                        lease_drop=1)
            job_id = mgr.submit_mapping(body)["job_id"]
            status = _wait_done(mgr, job_id, timeout=60.0)
            assert status["state"] == JobState.DONE
            assert status["points"]["done"] == 3

            store = mgr.store
            # Dropped exactly once (the knob is journal-bounded) and
            # reclaimed; no point ran twice across the two tenures.
            assert store.count_events(job_id, "lease_dropped") == 1
            assert store.count_events(job_id, "reclaimed") == 1
            done = store.journal_events(job_id, event="point_done")
            indices = [e["detail"]["index"] for e in done]
            assert sorted(indices) == [0, 1, 2]
        finally:
            mgr.shutdown()


class TestChaosCacheEndToEnd:
    """A job over a chaos:// artifact cache still completes."""

    def test_job_completes_over_faulty_storage(self, tmp_path,
                                               echo_experiment):
        cache_url = (f"chaos://{tmp_path}/cache"
                     f"?read=0.3&write=0.3&corrupt=0.2&seed=11")
        mgr = JobManager(cache_dir=cache_url,
                         store_path=str(tmp_path / "jobs.sqlite3"),
                         retry_backoff_s=0.01)
        try:
            body = dict(SPEC, seeds=[0, 1, 2])
            job_id = mgr.submit_mapping(body)["job_id"]
            status = _wait_done(mgr, job_id, timeout=60.0)
            # Storage faults cost recomputation, never correctness.
            assert status["state"] == JobState.DONE
            assert status["points"]["done"] == 6
            assert mgr.result(job_id)["n_rows"] == 6
        finally:
            mgr.shutdown()
