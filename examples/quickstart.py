"""Quickstart: run the full PowerPruning flow on LeNet-5.

Trains an 8-bit quantization-aware LeNet-5 on a synthetic CIFAR-10-like
task, characterizes per-weight MAC power and timing, selects weight and
activation values, retrains, scales the supply voltage, and prints a
Table I style report.

Run:
    python examples/quickstart.py
"""

from repro import PipelineConfig, PowerPruner, format_table1


def main() -> None:
    config = PipelineConfig(
        network="lenet5",
        dataset="cifar10",
        width_mult=0.5,        # reduced-scale model for a fast demo
        n_train=800,
        n_test=300,
        baseline_epochs=5,
        retrain_epochs=2,
        char_weight_step=4,    # characterize every 4th weight value
        char_samples=1500,     # paper uses 10000
        timing_transitions=8000,  # paper enumerates all 65536
        n_restarts=10,         # paper uses 20
        verbose=True,
    )
    pruner = PowerPruner(config)
    report = pruner.run()

    print()
    print(format_table1([report]))
    print()
    print(f"Optimized-HW power reduction: {report.reduction_opt:.1f}% "
          f"(paper: 73.9% for LeNet-5-CIFAR-10)")
    print(f"Standard-HW power reduction:  {report.reduction_std:.1f}% "
          f"(paper: 46.0%)")
    print(f"Supply voltage: {report.voltage_label} "
          f"(paper: 0.71/0.8)")
    print(f"Accuracy: {report.accuracy_orig * 100:.1f}% -> "
          f"{report.accuracy_prop * 100:.1f}%")


if __name__ == "__main__":
    main()
