"""End-to-end smoke test of the experiment service over real HTTP.

Exercises the full job lifecycle against a running ``python -m repro
serve`` instance using nothing but the standard library, so CI (and a
laptop) can drive it without installing a test client:

1. wait for ``GET /healthz``;
2. submit a 2-point smoke sweep and poll it to ``done``;
3. re-submit the same sweep and assert it is served from the warm
   cache (every point precached + cached);
4. submit a poisoned job (the chaos knob fails one point *before* the
   cache) and assert it finishes ``partial`` with the surviving rows
   still retrievable — the graceful-degradation contract.

Exits non-zero on the first violated expectation.

Usage::

    python -m repro serve --port 8123 --cache-dir .service-cache &
    python examples/service_smoke.py --base-url http://127.0.0.1:8123
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

SWEEP = {"experiment": "fig8", "scale": "smoke",
         "thresholds": [None, 900.0]}

TERMINAL = ("done", "partial", "failed")


def request(base_url, path, body=None):
    url = base_url.rstrip("/") + path
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data,
        headers={"content-type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=30) as response:
        return json.loads(response.read().decode())


def wait_for_service(base_url, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            health = request(base_url, "/healthz")
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.5)
            continue
        print(f"service up: {health['status']} "
              f"(cache: {health['cache_dir']})")
        return
    raise SystemExit(f"service never came up at {base_url}")


def poll_to_terminal(base_url, job_id, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = request(base_url, f"/sweeps/{job_id}")
        if status["state"] in TERMINAL:
            return status
        points = status["points"]
        print(f"  job {job_id}: {status['state']} "
              f"({points['done']}/{points['total']} done)")
        time.sleep(1.0)
    raise SystemExit(f"job {job_id} never reached a terminal state")


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--base-url", default="http://127.0.0.1:8123")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job polling budget in seconds")
    args = parser.parse_args(argv)
    base = args.base_url

    wait_for_service(base, timeout_s=60.0)

    print("submitting the smoke sweep (cold cache)...")
    submitted = request(base, "/sweeps", SWEEP)
    check(submitted["state"] in ("queued", "running", "done"),
          f"submission accepted as {submitted['state']}")
    status = poll_to_terminal(base, submitted["job_id"], args.timeout)
    check(status["state"] == "done", "cold job finished done")
    check(status["points"]["done"] == 2, "both points produced rows")

    print("re-submitting the same sweep (warm cache)...")
    resubmitted = request(base, "/sweeps", SWEEP)
    status = poll_to_terminal(base, resubmitted["job_id"], args.timeout)
    check(status["state"] == "done", "warm job finished done")
    check(status["points"]["precached"] == 2,
          "every point was precached")
    check(status["points"]["cached"] == 2,
          "every point was served from the cache")
    result = request(base, f"/sweeps/{resubmitted['job_id']}/result")
    check(result["n_rows"] == 2, "warm result carries both rows")

    print("submitting a poisoned job (chaos knob)...")
    poisoned = request(base, "/sweeps",
                       dict(SWEEP, poison="threshold=900"))
    status = poll_to_terminal(base, poisoned["job_id"], args.timeout)
    check(status["state"] == "partial",
          "poisoned job degraded to partial, not failed")
    check(status["points"]["failed"] == 1, "exactly one point failed")
    result = request(base, f"/sweeps/{poisoned['job_id']}/result")
    check(result["n_rows"] == 1, "the surviving row is retrievable")
    check(result["failures"][0]["kind"] == "error",
          "the failure record is structured")

    health = request(base, "/healthz")
    counters = health["counters"]
    check(counters["jobs_done"] >= 2 and counters["jobs_partial"] >= 1,
          f"service counters add up: {counters}")
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
