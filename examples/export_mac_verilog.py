"""Export the characterized MAC unit as structural Verilog.

Bridges this reproduction back to a real EDA flow: the exact gate-level
MAC whose per-weight power/timing the library characterizes is written
out as synthesizable structural Verilog, ready for an actual NanGate
synthesis + Power Compiler run (the paper's original setup).

Run:
    python examples/export_mac_verilog.py [output.v]
"""

import sys

from repro import build_mac_unit
from repro.netlist.verilog import to_verilog


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "mac_unit.v"
    mac = build_mac_unit()
    print(f"MAC unit: {mac.full.num_gates} cells")
    for name, count in sorted(mac.cell_counts().items()):
        print(f"  {name:6} x {count}")

    with open(output, "w") as handle:
        handle.write(to_verilog(mac.full, module_name="mac_unit"))
    print(f"\nwrote {output}")
    print("ports: act_0..7, w_0..7, psum_0..21 -> product_0..15, "
          "result_0..21")

    # Also export the split views the paper's timing methodology uses.
    for view, netlist in (("multiplier", mac.multiplier),
                          ("adder", mac.adder)):
        path = output.replace(".v", f"_{view}.v")
        with open(path, "w") as handle:
            handle.write(to_verilog(netlist, module_name=f"mac_{view}"))
        print(f"wrote {path} ({netlist.num_gates} cells)")


if __name__ == "__main__":
    main()
