"""Accelerator design-space exploration over the stage graph.

The systolic layer is a first-class sweep axis: one ``accel`` sweep
evaluates array geometry x hardware variant on the *actual pruned
network* (not a synthetic workload mix), reusing the training and
characterization prefix across every design point through the
content-addressed artifact store.  The second run below replays the
same grid against the warm cache and computes nothing — the what-if
loop an accelerator architect iterates on is free after the first
pass.

Run:
    python examples/accelerator_design_space.py
"""

import tempfile
import time

from repro.experiments.accel import run
from repro.experiments.sweep import format_sweep


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="accel-example-") as cache:
        start = time.perf_counter()
        result = run(scale="smoke",
                     array_shapes=("16x16", "32x32", "hw"),
                     cache_dir=cache)
        cold = time.perf_counter() - start
        print(format_sweep(result))

        # Same grid, warm cache: every point is served, none computed.
        start = time.perf_counter()
        rerun = run(scale="smoke",
                    array_shapes=("16x16", "32x32", "hw"),
                    cache_dir=cache)
        warm = time.perf_counter() - start
        assert all(row.cached for row in rerun.rows)
        print(f"\nwarm rerun: {len(rerun.rows)} point(s) all served "
              f"from cache ({cold:.1f}s cold -> {warm:.2f}s warm)")
    print("\nobservation: bigger arrays finish sooner but idle more; "
          "column power gating (Optimized HW) recovers most of the "
          "idle-leakage cost, which is the paper's Standard-vs-Optimized "
          "gap")


if __name__ == "__main__":
    main()
