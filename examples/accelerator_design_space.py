"""Accelerator design-space exploration with the systolic substrate.

Uses the library below the PowerPruning core: sweep array geometry and
hardware gating features for a fixed workload mix and report utilization
and power — the kind of what-if an accelerator architect runs before
committing to a configuration.

Run:
    python examples/accelerator_design_space.py
"""

import numpy as np

from repro import (
    ArrayPowerModel,
    MacPowerParams,
    OPTIMIZED_HW,
    STANDARD_HW,
    SystolicConfig,
    TransitionDistribution,
    WeightPowerCharacterizer,
    build_mac_unit,
    default_library,
)
from repro.power import BinnedTransitions, PartialSumBinner
from repro.systolic import schedule_matmul

#: A small CNN's layer mix: (K, N, M) matmul shapes.
WORKLOADS = (
    (75, 16, 1024),    # stem conv
    (144, 32, 256),    # mid conv
    (288, 64, 64),     # late conv
    (256, 10, 1),      # classifier
)


def characterize(mac, library):
    rng = np.random.default_rng(0)
    act = TransitionDistribution.diagonal(256)
    stream = np.clip(np.cumsum(rng.integers(-(1 << 12), 1 << 12, 20000)),
                     -(1 << 20), 1 << 20)
    binner = PartialSumBinner(n_bins=20).fit(stream, rng=rng)
    characterizer = WeightPowerCharacterizer(
        mac, library, act, BinnedTransitions.from_stream(binner, stream),
        n_samples=800)
    return characterizer.characterize(range(-127, 128, 8))


def main() -> None:
    library = default_library()
    mac = build_mac_unit()
    table = characterize(mac, library)
    rng = np.random.default_rng(1)

    print("array    variant       utilization  power[mW]  "
          "energy/inference[uJ]")
    for size in (16, 32, 64, 128):
        config = SystolicConfig(rows=size, cols=size)
        model = ArrayPowerModel(config, MacPowerParams(table=table))
        layers = []
        for k, n, m in WORKLOADS:
            weights = rng.integers(-127, 128, (k, n))
            weights[rng.random(weights.shape) < 0.5] = 0  # pruned net
            layers.append((schedule_matmul(k, n, m, config), weights))
        total_cycles = sum(s.total_cycles for s, __ in layers)
        total_macs = sum(s.total_macs for s, __ in layers)
        utilization = total_macs / (total_cycles * config.n_pes)
        for variant in (STANDARD_HW, OPTIMIZED_HW):
            power = model.network_power(layers, variant)
            energy_uj = (power.total_uw * total_cycles
                         * config.clock_period_ps * 1e-12)
            print(f"{size:3d}x{size:<3d}  {variant.name:12}  "
                  f"{utilization * 100:10.1f}%  "
                  f"{power.total_uw / 1000:9.1f}  {energy_uj:10.2f}")
    print("\nobservation: bigger arrays finish sooner but idle more; "
          "column power gating (Optimized HW) recovers most of the "
          "idle-leakage cost, which is the paper's Standard-vs-Optimized "
          "gap")


if __name__ == "__main__":
    main()
