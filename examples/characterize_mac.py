"""Characterize a MAC unit's per-weight power and timing, standalone.

This is the hardware-facing half of PowerPruning without any neural
network: build the gate-level MAC, drive it with synthetic operand
transition distributions, and inspect which weight values are expensive
in power and which sensitize slow paths — the raw signal the method
selects on (paper Figs. 2 and 3).

Run:
    python examples/characterize_mac.py
"""

import numpy as np

from repro import (
    DelaySelector,
    TransitionDistribution,
    WeightDelayProfiler,
    WeightPowerCharacterizer,
    WeightTimingTable,
    build_mac_unit,
    default_library,
)
from repro.power import BinnedTransitions, PartialSumBinner


def main() -> None:
    mac = build_mac_unit()
    library = default_library()
    print(f"MAC unit: {mac.full.num_gates} gates "
          f"({mac.cell_counts()})")

    # Synthetic operand statistics (diagonal-heavy, like real traffic).
    act_dist = TransitionDistribution.diagonal(256, bandwidth=12.0)
    rng = np.random.default_rng(0)
    psum_stream = np.clip(
        np.cumsum(rng.integers(-(1 << 12), 1 << 12, 30000)),
        -(1 << 20), 1 << 20)
    binner = PartialSumBinner(n_bins=50).fit(psum_stream, rng=rng)
    psum_binned = BinnedTransitions.from_stream(binner, psum_stream)

    # --- power characterization (Fig. 2) ---
    characterizer = WeightPowerCharacterizer(
        mac, library, act_dist, psum_binned, n_samples=2000)
    weights = sorted(set(range(-127, 128, 8))
                     | {-105, -64, -2, 0, 2, 64, 127})
    table = characterizer.characterize(weights)
    print("\nper-weight power (uW), selected values:")
    for weight in (-105, -64, -2, 0, 2, 64, 127):
        print(f"  w={weight:5d}: {table.power_of(weight):7.1f}")
    print(f"weights at/below 900 uW: {table.count_below(900.0)} "
          f"of {table.weights.size}")

    # --- timing characterization (Fig. 3) + selection (Fig. 6) ---
    profiler = WeightDelayProfiler(mac, library)
    act_from, act_to = profiler.all_transitions()
    chosen = rng.choice(act_from.size, 8000, replace=False)
    timing = WeightTimingTable.characterize(
        profiler, weights=table.select_below(900.0),
        transitions=(act_from[chosen], act_to[chosen]), floor_ps=100.0)
    print(f"\nglobal max sensitized delay: "
          f"{timing.global_max_delay_ps:.0f} ps (calibrated)")

    selector = DelaySelector(timing, n_restarts=20)
    for threshold in (170.0, 150.0, 140.0):
        result = selector.select(threshold)
        print(f"  threshold {threshold:.0f} ps -> "
              f"{result.n_weights} weights, "
              f"{result.n_activations} activations survive "
              f"(max delay {result.max_delay_ps:.0f} ps)")


if __name__ == "__main__":
    main()
