"""Edge-deployment study: power/accuracy frontier for a ResNet-20.

Motivated by the paper's introduction (plant-disease detection, wearable
medical devices): an edge product team wants to know how far the power
of a ResNet-20 classifier can be pushed down before accuracy becomes
unacceptable.  The study sweeps the power threshold, then applies the
timing-aware selection and voltage scaling at the chosen point, and
prints the whole frontier.

Run:
    python examples/edge_deployment_study.py
"""

from repro.experiments.config import NETWORK_SPECS
from repro.experiments.runner import ExperimentContext
from repro.nn.restrict import ActivationFilter, WeightRestriction
from repro.timing.selection import DelaySelector
from repro import scale_voltage


def main() -> None:
    spec = NETWORK_SPECS[1]  # ResNet-20 on the CIFAR-10-like task
    context = ExperimentContext(spec, scale="ci", verbose=True)
    print(f"baseline accuracy:  {context.accuracy_orig * 100:.1f}%")
    print(f"pruned accuracy:    {context.accuracy_pruned * 100:.1f}%")

    table = context.power_table
    print("\n--- power/accuracy frontier (Optimized HW) ---")
    print("threshold[uW]  #weights  accuracy  power[mW]")
    frontier = []
    for threshold in (None, 900.0, 850.0, 800.0):
        model = context.reset_model()
        if threshold is None:
            allowed = table.weights
            accuracy = context.accuracy_pruned
        else:
            allowed = table.select_below(threshold)
            if allowed.size < 2:
                continue
            model.set_weight_restriction(WeightRestriction(allowed))
            accuracy = context.retrain(model)
        __, power_opt = context.measure_power(model)
        frontier.append((threshold, allowed.size, accuracy, power_opt))
        label = "None" if threshold is None else f"{threshold:.0f}"
        print(f"{label:>13}  {allowed.size:8d}  {accuracy * 100:7.1f}%"
              f"  {power_opt.total_uw / 1000:8.1f}")

    # Pick the tightest threshold within 5% absolute accuracy drop, then
    # add the timing-aware stage on top.
    viable = [f for f in frontier
              if f[2] >= context.accuracy_pruned - 0.05 and f[0]]
    if not viable:
        print("no restricted point met the accuracy budget")
        return
    threshold = viable[-1][0]
    print(f"\nchosen power threshold: {threshold:.0f} uW")

    candidates = table.select_below(threshold)
    timing = context.timing_table(candidates)
    selector = DelaySelector(timing,
                             n_restarts=context.config.n_restarts)
    selection = selector.select(160.0, candidate_weights=candidates)
    model = context.reset_model()
    model.set_weight_restriction(WeightRestriction(selection.weights))
    model.set_activation_filter(ActivationFilter(selection.activations))
    accuracy = context.retrain(model)
    scaling = scale_voltage(selection.max_delay_ps, 180.0)
    __, power = context.measure_power(model, vdd=scaling.vdd)
    print(f"after delay selection @160 ps + voltage scaling "
          f"({scaling.scaling_factor_label}):")
    print(f"  accuracy {accuracy * 100:.1f}%, "
          f"power {power.total_uw / 1000:.1f} mW, "
          f"{selection.n_weights} weights / "
          f"{selection.n_activations} activations")


if __name__ == "__main__":
    main()
