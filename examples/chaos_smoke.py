"""Chaos smoke: kill -9 a live service mid-job and watch it recover.

The durability drill the job store exists for, run over real HTTP
against a real ``python -m repro serve`` process that this script
launches itself:

1. start the service on a **fault-injecting artifact cache**
   (``chaos://...?read=&write=&corrupt=`` — reads fail, writes fail,
   and read bytes come back truncated, at the given rates);
2. submit a 3-point sweep armed with ``crash_after_points=1``: the
   service SIGKILLs *itself* the instant the first row is journaled;
3. confirm the process died hard (killed by SIGKILL, mid-grid);
4. restart the service on the same job store + cache and assert, over
   HTTP, that the job resumes and finishes ``done`` with all rows —
   and, via the journal, that no point ran twice and the pre-crash
   row survived.

Everything speaks stdlib ``urllib`` + ``subprocess``; the journal
check imports only the stdlib-only ``repro.service.store``.

Usage::

    python examples/chaos_smoke.py --port 8124
"""

import argparse
import json
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SWEEP = {"experiment": "fig8", "scale": "smoke",
         "thresholds": [None, 900.0, 1800.0],
         "crash_after_points": 1}

TERMINAL = ("done", "partial", "failed")


def request(base_url, path, body=None):
    url = base_url.rstrip("/") + path
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=data,
        headers={"content-type": "application/json"} if data else {})
    with urllib.request.urlopen(req, timeout=30) as response:
        return json.loads(response.read().decode())


def wait_for_service(base_url, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            return request(base_url, "/healthz")
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.5)
    raise SystemExit(f"service never came up at {base_url}")


def poll_to_terminal(base_url, job_id, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = request(base_url, f"/sweeps/{job_id}")
        if status["state"] in TERMINAL:
            return status
        points = status["points"]
        print(f"  job {job_id}: {status['state']} "
              f"({points['done']}/{points['total']} done)")
        time.sleep(1.0)
    raise SystemExit(f"job {job_id} never reached a terminal state")


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def launch_server(port, cache_url, store, lease_s):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--cache-dir", cache_url,
         "--store", store, "--lease", str(lease_s),
         "--log-level", "warning"])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--port", type=int, default=8124)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job polling budget in seconds")
    parser.add_argument("--workdir", default=None,
                        help="store + cache location (default: a "
                             "temp dir, removed afterwards)")
    args = parser.parse_args(argv)
    base = f"http://127.0.0.1:{args.port}"

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    cache_dir = Path(workdir) / "cache"
    store = str(Path(workdir) / "jobs.sqlite3")
    cache_url = (f"chaos://{cache_dir}"
                 f"?read=0.15&write=0.15&corrupt=0.1&seed=5")
    lease_s = 3.0

    print(f"launching service on a faulty cache: {cache_url}")
    server = launch_server(args.port, cache_url, store, lease_s)
    second = None
    try:
        wait_for_service(base, timeout_s=60.0)

        print("submitting a sweep armed to SIGKILL the service "
              "after its first journaled row...")
        submitted = request(base, "/sweeps", SWEEP)
        job_id = submitted["job_id"]
        check(submitted["state"] in ("queued", "running"),
              f"submission accepted as {submitted['state']}")

        returncode = server.wait(timeout=args.timeout)
        check(returncode == -signal.SIGKILL,
              f"service died by SIGKILL mid-grid (rc={returncode})")

        print("restarting the service on the same store + cache...")
        second = launch_server(args.port, cache_url, store, lease_s)
        health = wait_for_service(base, timeout_s=60.0)
        check(health["store"]["recovered_jobs"] >= 1,
              f"restart recovered {health['store']['recovered_jobs']} "
              f"job(s) from the journal")

        status = poll_to_terminal(base, job_id, args.timeout)
        check(status["state"] == "done",
              "interrupted job resumed to done")
        check(status["points"]["done"] == 3,
              "all three points have rows (none lost to the crash)")
        result = request(base, f"/sweeps/{job_id}/result")
        check(result["n_rows"] == 3, "result serves every row")

        # Journal-counted exactly-once: repro.service.store is
        # stdlib-only, so the smoke can open the journal directly.
        from repro.service.store import JobStore
        journal = JobStore(store)
        done_events = journal.journal_events(job_id,
                                             event="point_done")
        indices = sorted(event["detail"]["index"]
                         for event in done_events)
        check(indices == [0, 1, 2],
              f"each point journaled done exactly once: {indices}")
        events = [e["event"] for e in journal.journal_events(job_id)]
        check("reclaimed" in events and "resumed" in events,
              "the crash recovery itself is journaled")
        journal.close()

        health = request(base, "/healthz")
        check(health["status"] == "ok",
              "service healthy after the whole drill")
        print("chaos smoke: all checks passed")
        return 0
    finally:
        for proc in (server, second):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
