"""PowerPruning reproduction (DAC 2023).

Power- and timing-aware selection of weight and activation values for
digital DNN accelerators, reproduced end to end: a gate-level MAC model,
Power-Compiler-style power estimation, split dynamic/static timing
analysis, a weight-stationary systolic-array simulator, a NumPy QAT
training stack, and the full selection + retraining + voltage-scaling
pipeline.

Quickstart::

    from repro import PipelineConfig, PowerPruner, format_table1

    report = PowerPruner(PipelineConfig(network="lenet5")).run()
    print(format_table1([report]))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    PipelineConfig,
    PowerPruner,
    PowerPruningReport,
    delay_threshold_search,
    extract_workloads,
    format_table1,
    magnitude_prune,
    power_threshold_search,
    scale_voltage,
)
from repro.cells import CellLibrary, VoltageModel, default_library
from repro.hw import (
    DEFAULT_BACKEND_ID,
    HardwareBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.netlist import MacUnit, build_mac_unit
from repro.power import (
    PartialSumBinner,
    TransitionDistribution,
    WeightPowerCharacterizer,
    WeightPowerTable,
)
from repro.timing import (
    DelaySelector,
    WeightDelayProfiler,
    WeightTimingTable,
)
from repro.systolic import (
    OPTIMIZED_HW,
    STANDARD_HW,
    AcceleratorSpec,
    ArrayPowerModel,
    MacPowerParams,
    SystolicArray,
    SystolicConfig,
)

__version__ = "1.0.0"

__all__ = [
    "PipelineConfig",
    "PowerPruner",
    "PowerPruningReport",
    "format_table1",
    "magnitude_prune",
    "power_threshold_search",
    "delay_threshold_search",
    "scale_voltage",
    "extract_workloads",
    "CellLibrary",
    "VoltageModel",
    "default_library",
    "HardwareBackend",
    "DEFAULT_BACKEND_ID",
    "register_backend",
    "get_backend",
    "list_backends",
    "MacUnit",
    "build_mac_unit",
    "TransitionDistribution",
    "PartialSumBinner",
    "WeightPowerCharacterizer",
    "WeightPowerTable",
    "WeightDelayProfiler",
    "WeightTimingTable",
    "DelaySelector",
    "SystolicArray",
    "SystolicConfig",
    "AcceleratorSpec",
    "ArrayPowerModel",
    "MacPowerParams",
    "STANDARD_HW",
    "OPTIMIZED_HW",
    "__version__",
]
