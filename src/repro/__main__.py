"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro table1 [--scale ci] [--jobs 4] [--cache-dir .cache]
    python -m repro fig2 [--scale smoke]
    python -m repro fig7 --scale ci --jobs 0 --cache-dir .repro-cache
    ...

``--jobs`` fans independent units (Table I rows, figure panels) out
across processes (``0`` = all cores).  ``--cache-dir`` turns on the
on-disk content-addressed artifact cache: every stage of the pipeline
graph (training, characterization, selection, ...) is stored under a
key derived from the config, so repeated runs — and different
experiments sharing a prefix — skip all unchanged work.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import fig2, fig3, fig4, fig7, fig8, fig9, table1

EXPERIMENTS = {
    "table1": table1.main,
    "fig2": fig2.main,
    "fig3": fig3.main,
    "fig4": fig4.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a table/figure of the PowerPruning "
                    "paper (DAC 2023)",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", default="ci",
                        choices=("smoke", "ci", "paper"),
                        help="experiment scale (default: ci)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="processes for independent rows/panels "
                             "(0 = all cores; default: 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk artifact cache shared across runs "
                             "and workers (default: memory-only)")
    args = parser.parse_args(argv)
    EXPERIMENTS[args.experiment](scale=args.scale, jobs=args.jobs,
                                 cache_dir=args.cache_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
