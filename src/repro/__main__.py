"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro table1 [--scale ci] [--jobs 4] [--cache-dir .cache]
    python -m repro fig2 [--scale smoke]
    python -m repro fig7 --scale ci --jobs 0 --cache-dir .repro-cache
    python -m repro table1 --backend nangate15-array
    python -m repro backends --scale smoke --jobs 2
    python -m repro sweep --experiment fig8 --backend nangate15-booth \
        --backend nangate15-array --scale smoke --jobs 2
    python -m repro accel --scale smoke --shape 16x16 --shape hw
    python -m repro --list-backends
    ...

``--jobs`` fans independent units (Table I rows, figure panels) out
across processes (``0`` = all cores); experiments with a single unit of
work spend it sharding the per-weight characterization stage instead.
``--cache-dir`` turns on the on-disk content-addressed artifact cache:
every stage of the pipeline graph (training, characterization,
selection, ...) is stored under a key derived from the config *and the
hardware backend*, so repeated runs — and different experiments or
backends sharing a prefix — skip all unchanged work without ever
colliding.  ``--backend`` selects the hardware backend (see
``--list-backends``); the ``backends`` experiment runs the Table I flow
on several backends and compares them side by side.

The ``sweep`` subcommand runs a declarative grid over backends x
networks x thresholds x seeds and renders one combined per-backend
table/chart — see ``python -m repro sweep --help``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import (
    backends,
    fig2,
    fig3,
    fig4,
    fig7,
    fig8,
    fig9,
    table1,
)
from repro.hw import DEFAULT_BACKEND_ID, describe_backends, get_backend

EXPERIMENTS = {
    "table1": table1.main,
    "fig2": fig2.main,
    "fig3": fig3.main,
    "fig4": fig4.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "backends": backends.main,
}

#: Experiments whose main() accepts a repeatable seed axis; multi-seed
#: runs report variance-aware mean±std aggregates over the seeds.
SEEDED_EXPERIMENTS = frozenset({"table1", "fig8", "fig9", "backends"})


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sweep":
        # The declarative grid engine carries its own flag set
        # (repeatable --backend/--network/--threshold, --spec files).
        from repro.experiments import sweep

        return sweep.cli_main(argv[1:])
    if argv and argv[0] == "accel":
        # Accelerator design-space exploration: array shapes x
        # hardware variants over the accel sweep grid.
        from repro.experiments import accel

        return accel.cli_main(argv[1:])
    if argv and argv[0] == "serve":
        # The experiment service (HTTP job queue over the sweep
        # engine); needs the optional 'service' extra.
        from repro.service.cli import serve_main

        return serve_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a table/figure of the PowerPruning "
                    "paper (DAC 2023)",
    )
    parser.add_argument("experiment", nargs="?",
                        choices=sorted(EXPERIMENTS) + ["accel",
                                                       "sweep",
                                                       "serve"],
                        help="which table/figure to regenerate "
                             "('backends' compares hardware backends; "
                             "'accel' sweeps accelerator design points; "
                             "'sweep' runs a declarative grid; 'serve' "
                             "runs the HTTP experiment service, see "
                             "'accel --help' / 'sweep --help' / "
                             "'serve --help')")
    parser.add_argument("--scale", default="ci",
                        choices=("smoke", "ci", "paper"),
                        help="experiment scale (default: ci)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="processes for independent rows/panels, or "
                             "for sharding single-unit characterization "
                             "(0 = all cores; default: 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk artifact cache shared across runs, "
                             "workers and backends (default: memory-only)")
    parser.add_argument("--backend", default=None, metavar="ID",
                        help="hardware backend to characterize against "
                             f"(default: {DEFAULT_BACKEND_ID}; see "
                             "--list-backends); for the 'backends' "
                             "experiment, compare the default against "
                             "this one instead of all registered")
    parser.add_argument("--seed", action="append", type=int,
                        default=None, metavar="N",
                        help="pipeline seed; repeatable — several "
                             "seeds report every row as mean±std over "
                             "the seed axis (table1/fig8/fig9/backends "
                             "only; default: 0)")
    parser.add_argument("--sim-kernel", default="auto",
                        choices=("auto", "compiled", "packed"),
                        help="gate-simulation word kernel (bit-for-bit "
                             "identical either way; 'auto' prefers the "
                             "compiled level-program backend, 'packed' "
                             "forces the group-walk oracle; default: "
                             "auto)")
    parser.add_argument("--list-backends", action="store_true",
                        help="list registered hardware backends and exit")
    args = parser.parse_args(argv)

    if args.sim_kernel != "auto":
        # Exported as an environment variable (rather than threaded as
        # a kwarg) so spawn-started worker processes inherit the
        # selection; never part of cache keys.
        from repro.sim.compiled import KERNEL_ENV

        os.environ[KERNEL_ENV] = args.sim_kernel

    if args.list_backends:
        print(describe_backends())
        return 0
    if args.experiment is None:
        parser.error("an experiment is required "
                     "(or use --list-backends)")
    if args.experiment in ("accel", "sweep", "serve"):
        parser.error(f"'{args.experiment}' must come first: "
                     f"python -m repro {args.experiment} [flags]")
    if args.backend is not None:
        try:
            get_backend(args.backend)
        except ValueError as error:
            parser.error(str(error))

    if args.seed is not None \
            and args.experiment not in SEEDED_EXPERIMENTS:
        parser.error(f"--seed is not supported by "
                     f"{args.experiment!r} (only "
                     f"{', '.join(sorted(SEEDED_EXPERIMENTS))})")

    if args.experiment == "backends":
        backend = args.backend  # None = compare all registered
    else:
        backend = args.backend or DEFAULT_BACKEND_ID
    kwargs = {}
    if args.seed is not None:
        kwargs["seeds"] = tuple(args.seed)
    EXPERIMENTS[args.experiment](scale=args.scale, jobs=args.jobs,
                                 cache_dir=args.cache_dir,
                                 backend=backend, **kwargs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
