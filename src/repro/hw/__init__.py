"""Pluggable hardware backends.

A backend bundles everything that makes one MAC implementation point —
cell library variant, multiplier/adder styles, datapath widths, array
operating point, calibration anchors and voltage model — behind a
single registry id.  The pipeline resolves ``PipelineConfig.backend``
here and keys every stage-cache artifact on the full backend spec, so
alternative implementations hang off the same stage graph without ever
colliding in a shared cache.
"""

from repro.hw.backend import (
    ADDER_STYLES,
    MULTIPLIER_STYLES,
    HardwareBackend,
)
from repro.hw.registry import (
    DEFAULT_BACKEND_ID,
    describe_backends,
    ensure_registered,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend_id,
)

__all__ = [
    "HardwareBackend",
    "MULTIPLIER_STYLES",
    "ADDER_STYLES",
    "DEFAULT_BACKEND_ID",
    "register_backend",
    "ensure_registered",
    "resolve_backend_id",
    "get_backend",
    "list_backends",
    "describe_backends",
]
