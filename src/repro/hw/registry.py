"""Named registry of hardware backends.

Backends are registered once at import time (the built-ins below) or by
user code via :func:`register_backend`; the pipeline resolves
``PipelineConfig.backend`` through :func:`get_backend`.  The CLI's
``--backend`` / ``--list-backends`` flags are thin wrappers over the
same registry.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hw.backend import HardwareBackend

#: The paper's baseline implementation; every pre-backend artifact key
#: and default pipeline run maps onto this backend.
DEFAULT_BACKEND_ID = "nangate15-booth"

_REGISTRY: Dict[str, HardwareBackend] = {}


def register_backend(backend: HardwareBackend,
                     replace: bool = False) -> HardwareBackend:
    """Add ``backend`` to the registry under its ``backend_id``.

    Args:
        backend: The spec to register.
        replace: Allow overwriting an existing id (off by default so a
            typo cannot silently shadow a built-in).
    """
    if not replace and backend.backend_id in _REGISTRY:
        raise ValueError(
            f"backend {backend.backend_id!r} already registered; "
            f"pass replace=True to overwrite")
    _REGISTRY[backend.backend_id] = backend
    return backend


def ensure_registered(backend: HardwareBackend) -> HardwareBackend:
    """Idempotently register ``backend``; replace a differing spec.

    Worker processes receive backend *specs* (not just ids) in their
    task payloads and call this before resolving ids, so user-defined
    backends registered only in the parent process keep working under
    spawn-based process pools, where workers re-import the registry
    with built-ins only.
    """
    existing = _REGISTRY.get(backend.backend_id)
    if existing == backend:
        return existing
    return register_backend(backend, replace=existing is not None)


def resolve_backend_id(backend) -> str:
    """Backend id from an id string, a :class:`HardwareBackend`, or
    ``None`` (the default backend).

    String ids are validated against the registry; spec instances are
    idempotently registered first (the spawn-safe path for worker
    processes).
    """
    if backend is None:
        return DEFAULT_BACKEND_ID
    if isinstance(backend, HardwareBackend):
        return ensure_registered(backend).backend_id
    return get_backend(backend).backend_id


def get_backend(backend_id: str) -> HardwareBackend:
    """Look up a registered backend by id."""
    try:
        return _REGISTRY[backend_id]
    except KeyError:
        raise ValueError(
            f"unknown hardware backend {backend_id!r}; "
            f"available: {list_backends()}") from None


def list_backends() -> List[str]:
    """Registered backend ids, sorted, default first."""
    ids = sorted(_REGISTRY)
    if DEFAULT_BACKEND_ID in ids:
        ids.remove(DEFAULT_BACKEND_ID)
        ids.insert(0, DEFAULT_BACKEND_ID)
    return ids


def describe_backends() -> str:
    """One line per registered backend, for ``--list-backends``."""
    width = max(len(b) for b in _REGISTRY)
    lines = []
    for backend_id in list_backends():
        backend = _REGISTRY[backend_id]
        marker = "*" if backend_id == DEFAULT_BACKEND_ID else " "
        lines.append(f"{marker} {backend_id:<{width}}  "
                     f"{backend.description}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------
register_backend(HardwareBackend(
    backend_id="nangate15-booth",
    description="Booth radix-4 multiplier + Kogge-Stone adder on the "
                "NanGate-15nm-calibrated library (paper baseline)",
))

register_backend(HardwareBackend(
    backend_id="nangate15-array",
    description="AND-gated signed array multiplier (subtracted sign "
                "row) + Kogge-Stone adder, same 15 nm library",
    multiplier_style="array",
))

register_backend(HardwareBackend(
    backend_id="nangate15-ripple",
    description="Booth multiplier + ripple-carry partial-sum adder, "
                "same 15 nm library (area-lean, adder-dominated timing)",
    adder_style="ripple",
))

register_backend(HardwareBackend(
    backend_id="scaled-45nm",
    description="45 nm-class voltage/energy point (1.1 V nominal, "
                "scaled cell energies/leakage), delay-normalized to "
                "the 180 ps baseline clock",
    energy_factor=2.2,
    leakage_factor=1.6,
    nominal_voltage=1.1,
    power_anchor_uw=1330.0,
    vth=0.45,
    vdd_min=0.7,
))
