"""Hardware-backend specification.

PowerPruning is implementation-agnostic: the method only consumes the
measured per-weight power/timing characteristics of *some* MAC
implementation in *some* cell library.  A :class:`HardwareBackend` is
the frozen record of one such implementation point — cell-library
variant and scaling factors, multiplier/adder styles, datapath widths,
array operating point, calibration anchors and the voltage-scaling
model — plus builders for the concrete hardware objects every pipeline
stage runs against.

The spec is deliberately a plain frozen dataclass of hashable scalars:
its :meth:`key_payload` feeds the content-addressed stage cache, so two
backends that differ in any field can never share a cached artifact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

#: Styles accepted by :func:`repro.netlist.mac.build_mac_unit`.
MULTIPLIER_STYLES: Tuple[str, ...] = ("booth", "array")
ADDER_STYLES: Tuple[str, ...] = ("kogge_stone", "ripple")


@dataclass(frozen=True)
class HardwareBackend:
    """One MAC implementation point the pipeline can characterize.

    Attributes:
        backend_id: Unique registry name (e.g. ``"nangate15-booth"``).
        description: One-line human-readable summary.
        library_name: Base cell-library name.
        delay_factor / energy_factor / leakage_factor: Uniform cell
            scaling applied to the base library (1.0 = unscaled).
        nominal_voltage: Supply voltage the cell characteristics refer
            to, in volts.
        multiplier_style: ``"booth"`` (radix-4) or ``"array"``.
        adder_style: Partial-sum adder, ``"kogge_stone"`` or
            ``"ripple"``.
        act_bits / weight_bits / product_bits / psum_bits: Datapath
            widths.
        rows / cols: Systolic-array geometry.
        clock_period_ps: Array cycle time.
        power_anchor_uw: Calibration pin for the most expensive weight's
            average power (``None`` keeps raw library energies).
        delay_anchor_ps: Calibration pin for the globally slowest
            sensitized MAC delay (``None`` keeps raw library delays).
        vth / alpha: Alpha-power delay-law parameters.
        leakage_exponent: Exponent of the leakage voltage-scaling law.
        vdd_step / vdd_min: Voltage-search granularity and floor.
    """

    backend_id: str
    description: str
    # cell library
    library_name: str = "synth15"
    delay_factor: float = 1.0
    energy_factor: float = 1.0
    leakage_factor: float = 1.0
    nominal_voltage: float = 0.8
    # MAC netlist
    multiplier_style: str = "booth"
    adder_style: str = "kogge_stone"
    act_bits: int = 8
    weight_bits: int = 8
    product_bits: int = 16
    psum_bits: int = 22
    # array operating point
    rows: int = 64
    cols: int = 64
    clock_period_ps: float = 180.0
    # calibration anchors
    power_anchor_uw: Optional[float] = 1066.0
    delay_anchor_ps: Optional[float] = 180.0
    # voltage model
    vth: float = 0.30
    alpha: float = 1.73
    leakage_exponent: float = 3.0
    vdd_step: float = 0.01
    vdd_min: float = 0.5

    def __post_init__(self) -> None:
        if not self.backend_id:
            raise ValueError("backend_id must be non-empty")
        if self.multiplier_style not in MULTIPLIER_STYLES:
            raise ValueError(
                f"unknown multiplier style {self.multiplier_style!r}; "
                f"choose from {MULTIPLIER_STYLES}")
        if self.adder_style not in ADDER_STYLES:
            raise ValueError(
                f"unknown adder style {self.adder_style!r}; "
                f"choose from {ADDER_STYLES}")
        if min(self.delay_factor, self.energy_factor,
               self.leakage_factor) <= 0:
            raise ValueError("library scaling factors must be positive")

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def build_library(self):
        """The backend's (possibly scaled) cell library.

        ``library_name`` selects the base library; ``"synth15"`` (the
        NanGate-15nm-shaped synthetic set) is the only one shipped, and
        unknown names fail here rather than silently falling back.
        """
        from repro.cells import default_library

        base_libraries = {"synth15": default_library}
        if self.library_name not in base_libraries:
            raise ValueError(
                f"unknown base cell library {self.library_name!r}; "
                f"available: {sorted(base_libraries)}")
        library = base_libraries[self.library_name](self.nominal_voltage)
        if (self.delay_factor, self.energy_factor,
                self.leakage_factor) == (1.0, 1.0, 1.0):
            return library
        return library.scaled(self.delay_factor, self.energy_factor,
                              self.leakage_factor,
                              name_suffix=f"-{self.backend_id}")

    def build_mac(self):
        """The backend's MAC unit (three netlist views)."""
        from repro.netlist import build_mac_unit

        return build_mac_unit(
            act_bits=self.act_bits, weight_bits=self.weight_bits,
            product_bits=self.product_bits, psum_bits=self.psum_bits,
            style=self.multiplier_style, adder_style=self.adder_style,
        )

    def build_systolic_config(self):
        """Array geometry/operating point matching the MAC widths."""
        from repro.systolic import SystolicConfig

        return SystolicConfig(
            rows=self.rows, cols=self.cols,
            act_bits=self.act_bits, weight_bits=self.weight_bits,
            psum_bits=self.psum_bits,
            clock_period_ps=self.clock_period_ps,
        )

    def build_voltage_model(self):
        """Voltage-scaling laws at this backend's operating point."""
        from repro.cells.voltage import VoltageModel

        return VoltageModel(
            vdd_nom=self.nominal_voltage, vth=self.vth,
            alpha=self.alpha, leakage_exponent=self.leakage_exponent,
            step=self.vdd_step, vdd_min=self.vdd_min,
        )

    # ------------------------------------------------------------------
    # cache keying
    # ------------------------------------------------------------------
    def key_payload(self) -> Dict[str, Any]:
        """Hashable record for content-addressed stage keys.

        The full spec (not just the id) participates, so redefining a
        backend id with different parameters also invalidates every
        artifact produced under the old definition.
        """
        return asdict(self)
