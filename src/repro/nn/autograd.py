"""Define-by-run reverse-mode autograd over NumPy arrays.

A compact tape-based engine: every operation returns a new
:class:`Tensor` whose ``_backward`` closure scatters the output gradient
into its parents.  ``backward()`` walks the tape in reverse topological
order.  Only the operations the PowerPruning models need are provided,
and each is covered by a numerical-gradient test.

Straight-through operators (:func:`ste_round`, :func:`project_ste`) are
first-class citizens: their forward applies an arbitrary non-differentiable
mapping while their backward passes gradients through unchanged, which is
exactly how the paper retrains with restricted weights (Sec. III-C,
citing Bengio et al. [15]).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape construction (for inference)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1
                 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """An array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED[-1]
        self._backward: Optional[Callable[[], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        return (f"Tensor(shape={self.shape}, "
                f"requires_grad={self.requires_grad})")

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = grad.astype(np.float32, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self) -> None:
        """Reverse-mode sweep seeding d(self)/d(self) = 1."""
        if self.data.size != 1:
            raise ValueError("backward() requires a scalar loss tensor")
        topo: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in seen:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # operator sugar
    # ------------------------------------------------------------------
    def __add__(self, other):
        return add(self, _ensure(other))

    __radd__ = __add__

    def __sub__(self, other):
        return sub(self, _ensure(other))

    def __rsub__(self, other):
        return sub(_ensure(other), self)

    def __mul__(self, other):
        return mul(self, _ensure(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return div(self, _ensure(other))

    def __rtruediv__(self, other):
        return div(_ensure(other), self)

    def __neg__(self):
        return mul(self, Tensor(-1.0))

    def __matmul__(self, other):
        return matmul(self, _ensure(other))

    def __pow__(self, exponent: float):
        return power(self, exponent)

    def reshape(self, *shape):
        return reshape(self, shape)

    def sum(self, axis=None, keepdims=False):
        return reduce_sum(self, axis, keepdims)

    def mean(self, axis=None, keepdims=False):
        return reduce_mean(self, axis, keepdims)

    def transpose(self, axes: Sequence[int]):
        return transpose(self, axes)


def _ensure(value: Union[Tensor, float, int, np.ndarray]) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _make(data: np.ndarray, parents: Tuple[Tensor, ...],
          backward: Callable[[], None]) -> Tensor:
    out = Tensor(data)
    if _GRAD_ENABLED[-1] and any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = tuple(p for p in parents if p.requires_grad)
        out._backward = backward
    return out


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward():
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad, b.shape))

    out = _make(out_data, (a, b), backward)
    return out


def sub(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data - b.data

    def backward():
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(-out.grad, b.shape))

    out = _make(out_data, (a, b), backward)
    return out


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward():
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * a.data, b.shape))

    out = _make(out_data, (a, b), backward)
    return out


def div(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data / b.data

    def backward():
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad / b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(
                -out.grad * a.data / (b.data * b.data), b.shape))

    out = _make(out_data, (a, b), backward)
    return out


def power(a: Tensor, exponent: float) -> Tensor:
    out_data = a.data ** exponent

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad * exponent * a.data ** (exponent - 1))

    out = _make(out_data, (a,), backward)
    return out


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad * out_data)

    out = _make(out_data, (a,), backward)
    return out


def log(a: Tensor) -> Tensor:
    out_data = np.log(a.data)

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad / a.data)

    out = _make(out_data, (a,), backward)
    return out


def clip(a: Tensor, low: Optional[float], high: Optional[float]) -> Tensor:
    """Clamp with zero gradient outside the active range."""
    out_data = np.clip(a.data, low, high)

    def backward():
        if a.requires_grad:
            mask = np.ones_like(a.data)
            if low is not None:
                mask *= a.data >= low
            if high is not None:
                mask *= a.data <= high
            a._accumulate(out.grad * mask)

    out = _make(out_data, (a,), backward)
    return out


def relu(a: Tensor) -> Tensor:
    return clip(a, 0.0, None)


def relu6(a: Tensor) -> Tensor:
    return clip(a, 0.0, 6.0)


# ----------------------------------------------------------------------
# shape manipulation and reductions
# ----------------------------------------------------------------------
def reshape(a: Tensor, shape) -> Tensor:
    old_shape = a.shape
    out_data = a.data.reshape(shape)

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad.reshape(old_shape))

    out = _make(out_data, (a,), backward)
    return out


def transpose(a: Tensor, axes: Sequence[int]) -> Tensor:
    axes = tuple(axes)
    inverse = tuple(np.argsort(axes))
    out_data = a.data.transpose(axes)

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad.transpose(inverse))

    out = _make(out_data, (a,), backward)
    return out


def reduce_sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward():
        if a.requires_grad:
            grad = out.grad
            if not keepdims and axis is not None:
                grad = np.expand_dims(grad, axis)
            a._accumulate(np.broadcast_to(grad, a.shape).copy())

    out = _make(out_data, (a,), backward)
    return out


def reduce_mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.size
    elif isinstance(axis, int):
        count = a.shape[axis]
    else:
        count = int(np.prod([a.shape[i] for i in axis]))
    return reduce_sum(a, axis, keepdims) * (1.0 / count)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul supports 2-D operands only")
    out_data = a.data @ b.data

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad @ b.data.T)
        if b.requires_grad:
            b._accumulate(a.data.T @ out.grad)

    out = _make(out_data, (a, b), backward)
    return out


# ----------------------------------------------------------------------
# straight-through operators
# ----------------------------------------------------------------------
def ste_round(a: Tensor) -> Tensor:
    """Round in the forward pass, identity in the backward pass."""
    out_data = np.round(a.data)

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad)

    out = _make(out_data, (a,), backward)
    return out


def project_ste(a: Tensor,
                projection: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Apply an arbitrary projection forward; pass gradients straight
    through backward.

    This is the Sec. III-C restriction operator: the forward pass forces
    values onto the selected set while the backward pass skips the
    non-differentiable mapping (straight-through estimator [15]).
    """
    out_data = np.asarray(projection(a.data), dtype=np.float32)
    if out_data.shape != a.data.shape:
        raise ValueError("projection must preserve the shape")

    def backward():
        if a.requires_grad:
            a._accumulate(out.grad)

    out = _make(out_data, (a,), backward)
    return out


# ----------------------------------------------------------------------
# convolution and pooling
# ----------------------------------------------------------------------
def _im2col(x: np.ndarray, kh: int, kw: int, stride: int,
            pad: int) -> Tuple[np.ndarray, int, int]:
    """(N, C, H, W) -> (N, C*kh*kw, OH*OW) patch matrix."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw),
                                                       axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # (N, C, OH, OW, kh, kw) -> (N, C, kh, kw, OH, OW)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        n, c * kh * kw, oh * ow
    )
    return np.ascontiguousarray(cols), oh, ow


def _col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int,
            stride: int, pad: int, oh: int, ow: int) -> np.ndarray:
    """Adjoint of :func:`_im2col` (scatter-add of patch gradients)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    dx = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i:i + stride * oh:stride,
               j:j + stride * ow:stride] += cols[:, :, i, j]
    if pad:
        dx = dx[:, :, pad:-pad, pad:-pad]
    return dx


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, pad: int = 0) -> Tensor:
    """2-D convolution, NCHW layout, OIHW weights."""
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError("conv2d expects NCHW input and OIHW weights")
    n = x.shape[0]
    out_ch, in_ch, kh, kw = weight.shape
    if in_ch != x.shape[1]:
        raise ValueError(
            f"channel mismatch: input {x.shape[1]}, weight {in_ch}"
        )
    cols, oh, ow = _im2col(x.data, kh, kw, stride, pad)
    w_mat = weight.data.reshape(out_ch, in_ch * kh * kw)
    out_data = np.einsum("ok,nkp->nop", w_mat, cols,
                         optimize=True).reshape(n, out_ch, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, out_ch, 1, 1)

    def backward():
        dout = out.grad.reshape(n, out_ch, oh * ow)
        if weight.requires_grad:
            dw = np.einsum("nop,nkp->ok", dout, cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(out.grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dcols = np.einsum("ok,nop->nkp", w_mat, dout, optimize=True)
            x._accumulate(_col2im(dcols, x.shape, kh, kw, stride, pad,
                                  oh, ow))

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = _make(out_data, parents, backward)
    return out


def depthwise_conv2d(x: Tensor, weight: Tensor,
                     bias: Optional[Tensor] = None, stride: int = 1,
                     pad: int = 0) -> Tensor:
    """Depthwise convolution: one filter per input channel.

    Weights have shape ``(C, 1, kh, kw)``.
    """
    if weight.shape[1] != 1:
        raise ValueError("depthwise weights must have shape (C, 1, kh, kw)")
    c = x.shape[1]
    if weight.shape[0] != c:
        raise ValueError("depthwise channel mismatch")
    n = x.shape[0]
    kh, kw = weight.shape[2], weight.shape[3]
    cols, oh, ow = _im2col(x.data, kh, kw, stride, pad)
    # cols: (N, C*kh*kw, P) -> (N, C, kh*kw, P)
    cols4 = cols.reshape(n, c, kh * kw, oh * ow)
    w_mat = weight.data.reshape(c, kh * kw)
    out_data = np.einsum("ck,nckp->ncp", w_mat, cols4,
                         optimize=True).reshape(n, c, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c, 1, 1)

    def backward():
        dout = out.grad.reshape(n, c, oh * ow)
        if weight.requires_grad:
            dw = np.einsum("ncp,nckp->ck", dout, cols4, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(out.grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dcols = np.einsum("ck,ncp->nckp", w_mat, dout, optimize=True)
            x._accumulate(_col2im(
                dcols.reshape(n, c * kh * kw, oh * ow),
                x.shape, kh, kw, stride, pad, oh, ow))

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = _make(out_data, parents, backward)
    return out


def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling (kernel == stride)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"spatial dims {(h, w)} not divisible by pool kernel {kernel}"
        )
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out_data = view.max(axis=(3, 5))

    def backward():
        expanded = out_data[:, :, :, None, :, None]
        mask = view == expanded
        # Split ties evenly so the gradient mass is conserved.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        grad = (mask / counts) * out.grad[:, :, :, None, :, None]
        x._accumulate(grad.reshape(x.shape))

    out = _make(out_data, (x,), backward)
    return out


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling (kernel == stride)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"spatial dims {(h, w)} not divisible by pool kernel {kernel}"
        )
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out_data = view.mean(axis=(3, 5))

    def backward():
        grad = out.grad[:, :, :, None, :, None] / (kernel * kernel)
        x._accumulate(
            np.broadcast_to(grad, view.shape).reshape(x.shape).copy()
        )

    out = _make(out_data, (x,), backward)
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """(N, C, H, W) -> (N, C) spatial mean."""
    return reduce_mean(x, axis=(2, 3))
