"""Loss and metric functions."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, _make


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy over a batch (fused, numerically stable).

    Args:
        logits: ``(batch, classes)`` scores.
        labels: ``(batch,)`` integer class indices.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, classes)")
    if labels.shape != (logits.shape[0],):
        raise ValueError("labels must be (batch,) integers")
    z = logits.data
    z = z - z.max(axis=1, keepdims=True)
    expz = np.exp(z)
    probs = expz / expz.sum(axis=1, keepdims=True)
    batch = z.shape[0]
    picked = probs[np.arange(batch), labels]
    loss = -np.log(np.maximum(picked, 1e-12)).mean()

    def backward():
        if logits.requires_grad:
            grad = probs.copy()
            grad[np.arange(batch), labels] -= 1.0
            logits._accumulate(grad * (out.grad / batch))

    out = _make(np.asarray(loss, dtype=np.float32), (logits,), backward)
    return out


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of raw scores against integer labels."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError("logits (batch, classes) / labels (batch,)")
    return float((logits.argmax(axis=1) == labels).mean())
