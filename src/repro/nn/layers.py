"""Neural-network layers over the autograd engine.

All layers are :class:`Module` subclasses.  Conv/Linear layers own their
weights and apply the quantization/restriction pipeline in the forward
pass; :class:`QuantReLU` quantizes activations and hosts the activation
filter.  Every layer records the shapes it last processed so the systolic
power model can reconstruct the matmul workloads of a trained network.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor
from repro.nn.quant import (
    QuantConfig,
    fake_quantize_ste,
    to_codes,
    weight_scale,
)
from repro.nn.restrict import ActivationFilter, WeightRestriction


class Module:
    """Base class with parameter discovery and mode switching."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self.children():
            yield from child.modules()

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for module in self.modules():
            for value in module.__dict__.values():
                if isinstance(value, Tensor) and value.requires_grad:
                    params.append(value)
        return params

    # ------------------------------------------------------------------
    # modes and utilities
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # state snapshot / restore
    # ------------------------------------------------------------------
    _STATE_ARRAYS = ("running_mean", "running_var", "weight_mask")
    _STATE_SCALARS = ("running_max",)

    def state_dict(self) -> dict:
        """Deep copy of all parameters and buffers, keyed by path."""
        state = {}
        for index, module in enumerate(self.modules()):
            for key, value in module.__dict__.items():
                path = f"{index}.{key}"
                if isinstance(value, Tensor):
                    state[path] = value.data.copy()
                elif key in self._STATE_ARRAYS:
                    state[path] = (value.copy()
                                   if isinstance(value, np.ndarray)
                                   else None)
                elif key in self._STATE_SCALARS:
                    state[path] = value
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        for index, module in enumerate(self.modules()):
            for key, value in list(module.__dict__.items()):
                path = f"{index}.{key}"
                if path not in state:
                    continue
                if isinstance(value, Tensor):
                    module.__dict__[key].data = state[path].copy()
                elif isinstance(state[path], np.ndarray):
                    module.__dict__[key] = state[path].copy()
                else:  # plain scalar or an explicitly-None buffer
                    module.__dict__[key] = state[path]

    # ------------------------------------------------------------------
    # PowerPruning hooks
    # ------------------------------------------------------------------
    def set_weight_restriction(
            self, restriction: Optional[WeightRestriction]) -> None:
        """Install (or clear) the weight restriction on every layer."""
        for module in self.modules():
            if isinstance(module, (Conv2d, DepthwiseConv2d, Linear)):
                module.weight_restriction = restriction

    def set_activation_filter(
            self, act_filter: Optional[ActivationFilter]) -> None:
        """Install (or clear) the activation filter on every QuantReLU."""
        for module in self.modules():
            if isinstance(module, QuantReLU):
                module.activation_filter = act_filter

    def apply_weight_masks(self) -> None:
        """Re-apply pruning masks (keeps pruned weights at zero)."""
        for module in self.modules():
            mask = getattr(module, "weight_mask", None)
            if mask is not None:
                module.weight.data *= mask

    def quantized_layers(self) -> List["_WeightLayer"]:
        """All conv/dense layers, in traversal order."""
        return [m for m in self.modules()
                if isinstance(m, (Conv2d, DepthwiseConv2d, Linear))]


class Sequential(Module):
    """Chains submodules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class _WeightLayer(Module):
    """Shared machinery of layers owning a quantizable weight tensor."""

    def __init__(self, quant: Optional[QuantConfig]) -> None:
        super().__init__()
        self.quant = quant or QuantConfig()
        self.weight_restriction: Optional[WeightRestriction] = None
        self.weight_mask: Optional[np.ndarray] = None
        self.weight: Tensor
        self.name: str = type(self).__name__
        # Workload capture for the systolic power/stats models.
        self.capture_input = False
        self.last_input: Optional[np.ndarray] = None

    def _maybe_capture(self, x: Tensor) -> None:
        if self.capture_input:
            self.last_input = x.data.copy()

    def _effective_weight(self) -> Tensor:
        """Weight as the hardware sees it: quantized and restricted."""
        if not self.quant.enabled:
            return self.weight
        qmax = self.quant.weight_qmax
        scale = weight_scale(self.weight.data, qmax)
        if self.weight_restriction is None:
            return fake_quantize_ste(self.weight, scale, -qmax, qmax)
        restriction = self.weight_restriction

        def project(values: np.ndarray) -> np.ndarray:
            codes = to_codes(values, scale, -qmax, qmax)
            return restriction(codes) * scale

        return ag.project_ste(self.weight, project)

    def quantized_weights(self) -> Tuple[np.ndarray, float]:
        """Integer weight codes and their scale, post restriction."""
        qmax = self.quant.weight_qmax
        scale = weight_scale(self.weight.data, qmax)
        codes = to_codes(self.weight.data, scale, -qmax, qmax)
        if self.weight_restriction is not None:
            codes = self.weight_restriction(codes)
        return codes, scale

    def prune_smallest(self, fraction: float) -> float:
        """Magnitude-prune a fraction of the weights (sets a mask).

        Returns the achieved sparsity.  Conventional pruning, the first
        step of the paper's flow.
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError("pruning fraction must be in [0, 1)")
        magnitudes = np.abs(self.weight.data).ravel()
        if fraction > 0.0:
            cutoff = np.quantile(magnitudes, fraction)
            mask = (np.abs(self.weight.data) > cutoff).astype(np.float32)
        else:
            mask = np.ones_like(self.weight.data)
        self.weight_mask = mask
        self.weight.data *= mask
        return float(1.0 - mask.mean())

    def matmul_weight(self) -> np.ndarray:
        """Integer weights in the systolic ``(K, N)`` layout."""
        codes, __ = self.quantized_weights()
        return self._to_matmul_layout(codes)

    def _to_matmul_layout(self, codes: np.ndarray) -> np.ndarray:
        raise NotImplementedError


def _he_init(shape: Tuple[int, ...], fan_in: int,
             rng: np.random.Generator) -> np.ndarray:
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


_INIT_RNG = np.random.default_rng(1234)


def seed_init(seed: int) -> None:
    """Reset the weight-initialization stream.

    Layer weights draw from a shared module-level generator, so a model's
    exact initialization depends on how many layers were created earlier
    in the process.  Call this before building a model whenever bitwise
    reproducibility of the initialization matters (tests, experiment
    baselines).
    """
    global _INIT_RNG
    _INIT_RNG = np.random.default_rng(seed)


class Conv2d(_WeightLayer):
    """2-D convolution (NCHW / OIHW) with QAT and restriction hooks."""

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int, stride: int = 1, pad: int = 0,
                 bias: bool = True,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__(quant)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            _he_init((out_channels, in_channels, kernel_size, kernel_size),
                     fan_in, _INIT_RNG),
            requires_grad=True,
        )
        self.bias = (Tensor(np.zeros(out_channels, dtype=np.float32),
                            requires_grad=True) if bias else None)
        self.last_input_hw: Optional[Tuple[int, int]] = None
        self.last_output_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: Tensor) -> Tensor:
        self._maybe_capture(x)
        out = ag.conv2d(x, self._effective_weight(), self.bias,
                        stride=self.stride, pad=self.pad)
        self.last_input_hw = (x.shape[2], x.shape[3])
        self.last_output_hw = (out.shape[2], out.shape[3])
        return out

    def _to_matmul_layout(self, codes: np.ndarray) -> np.ndarray:
        out_ch = codes.shape[0]
        return codes.reshape(out_ch, -1).T  # (K, N)


class DepthwiseConv2d(_WeightLayer):
    """Depthwise convolution (one filter per channel), QAT-capable."""

    def __init__(self, channels: int, kernel_size: int, stride: int = 1,
                 pad: int = 0, bias: bool = True,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__(quant)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        fan_in = kernel_size * kernel_size
        self.weight = Tensor(
            _he_init((channels, 1, kernel_size, kernel_size), fan_in,
                     _INIT_RNG),
            requires_grad=True,
        )
        self.bias = (Tensor(np.zeros(channels, dtype=np.float32),
                            requires_grad=True) if bias else None)
        self.last_input_hw: Optional[Tuple[int, int]] = None
        self.last_output_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: Tensor) -> Tensor:
        self._maybe_capture(x)
        out = ag.depthwise_conv2d(x, self._effective_weight(), self.bias,
                                  stride=self.stride, pad=self.pad)
        self.last_input_hw = (x.shape[2], x.shape[3])
        self.last_output_hw = (out.shape[2], out.shape[3])
        return out

    def _to_matmul_layout(self, codes: np.ndarray) -> np.ndarray:
        # Each channel is an independent (kh*kw, 1) matmul; stack them as
        # columns so the power model sees every filter's weights.
        channels = codes.shape[0]
        return codes.reshape(channels, -1).T  # (kh*kw, C)


class Linear(_WeightLayer):
    """Fully connected layer with QAT and restriction hooks."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True,
                 quant: Optional[QuantConfig] = None) -> None:
        super().__init__(quant)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _he_init((out_features, in_features), in_features, _INIT_RNG),
            requires_grad=True,
        )
        self.bias = (Tensor(np.zeros(out_features, dtype=np.float32),
                            requires_grad=True) if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("Linear expects (batch, features) input")
        self._maybe_capture(x)
        w_eff = self._effective_weight()
        out = ag.matmul(x, ag.transpose(w_eff, (1, 0)))
        if self.bias is not None:
            out = out + self.bias
        return out

    def _to_matmul_layout(self, codes: np.ndarray) -> np.ndarray:
        return codes.T  # (K, N) = (in, out)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel."""

    def __init__(self, channels: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Tensor(np.ones(channels, dtype=np.float32),
                            requires_grad=True)
        self.beta = Tensor(np.zeros(channels, dtype=np.float32),
                           requires_grad=True)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"BatchNorm2d({self.channels}) got input {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.running_mean = ((1 - m) * self.running_mean
                                 + m * mean.data.ravel())
            self.running_var = ((1 - m) * self.running_var
                                + m * var.data.ravel())
            xhat = centered * ((var + self.eps) ** -0.5)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            std_inv = Tensor(
                1.0 / np.sqrt(self.running_var + self.eps)
            ).reshape(1, -1, 1, 1)
            xhat = (x - mean) * std_inv
        gamma = self.gamma.reshape(1, -1, 1, 1)
        beta = self.beta.reshape(1, -1, 1, 1)
        return xhat * gamma + beta


class QuantReLU(Module):
    """ReLU/ReLU6 with activation fake quantization and filtering.

    Hosts the Sec. III-C activation filter: after the nonlinearity the
    activation is quantized to its 8-bit code and, when a filter is
    installed, projected onto the nearest selected activation value.
    """

    def __init__(self, quant: Optional[QuantConfig] = None,
                 six: bool = False) -> None:
        super().__init__()
        self.quant = quant or QuantConfig()
        self.six = six
        self.running_max: float = 0.0
        self.activation_filter: Optional[ActivationFilter] = None
        self.capture_codes = False
        self.last_codes: Optional[np.ndarray] = None

    def _update_range(self, y: np.ndarray) -> None:
        peak = float(np.abs(y).max()) if y.size else 0.0
        if self.running_max == 0.0:
            self.running_max = peak
        else:
            d = self.quant.ema_decay
            self.running_max = d * self.running_max + (1 - d) * peak

    @property
    def scale(self) -> float:
        """Activation quantization scale (codes -> values)."""
        qmax = self.quant.act_qmax
        if self.running_max <= 0.0:
            return 1.0 / qmax
        return self.running_max / qmax

    def forward(self, x: Tensor) -> Tensor:
        y = ag.relu6(x) if self.six else ag.relu(x)
        if not self.quant.enabled:
            return y
        if self.training:
            self._update_range(y.data)
        qmax = self.quant.act_qmax
        qmin = -(qmax + 1)
        scale = self.scale
        if self.activation_filter is None:
            out = fake_quantize_ste(y, scale, qmin, qmax)
        else:
            act_filter = self.activation_filter

            def project(values: np.ndarray) -> np.ndarray:
                codes = to_codes(values, scale, qmin, qmax)
                return act_filter(codes) * scale

            out = ag.project_ste(y, project)
        if self.capture_codes:
            self.last_codes = to_codes(out.data, scale, qmin, qmax)
        return out


class MaxPool2d(Module):
    """Non-overlapping max pooling."""

    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return ag.max_pool2d(x, self.kernel)


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return ag.avg_pool2d(x, self.kernel)


class GlobalAvgPool2d(Module):
    """Spatial mean: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return ag.global_avg_pool2d(x)


class Flatten(Module):
    """(N, ...) -> (N, features)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
