"""Training loop with quantization-aware training support."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module
from repro.nn.losses import accuracy, softmax_cross_entropy
from repro.nn.optim import SGD, Adam, Optimizer


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run.

    Attributes:
        epochs: Training epochs.
        batch_size: Mini-batch size.
        lr: Initial learning rate.
        momentum: SGD momentum (ignored by Adam).
        weight_decay: L2 penalty.
        optimizer: ``"sgd"`` or ``"adam"``.
        lr_decay_epochs: Epochs at which the LR is divided by 10.
        seed: Shuffling seed.
        verbose: Print per-epoch progress.
    """

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "sgd"
    lr_decay_epochs: tuple = ()
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainingHistory:
    """Per-epoch metrics of a finished run."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else 0.0


class Trainer:
    """Mini-batch trainer driving a :class:`Module`.

    The trainer re-applies pruning masks after every optimizer step so
    that conventionally pruned weights stay at exactly zero, matching how
    the paper combines pruning with QAT retraining.
    """

    def __init__(self, model: Module, config: TrainingConfig) -> None:
        self.model = model
        self.config = config
        params = model.parameters()
        if config.optimizer == "sgd":
            self.optimizer: Optimizer = SGD(
                params, lr=config.lr, momentum=config.momentum,
                weight_decay=config.weight_decay)
        elif config.optimizer == "adam":
            self.optimizer = Adam(params, lr=config.lr,
                                  weight_decay=config.weight_decay)
        else:
            raise ValueError(
                f"unknown optimizer {config.optimizer!r}"
            )

    def fit(self, x_train: np.ndarray, y_train: np.ndarray,
            x_test: Optional[np.ndarray] = None,
            y_test: Optional[np.ndarray] = None) -> TrainingHistory:
        """Train the model; returns the per-epoch history."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        history = TrainingHistory()
        n = x_train.shape[0]
        for epoch in range(config.epochs):
            if epoch in config.lr_decay_epochs:
                self.optimizer.lr /= 10.0
            self.model.train()
            order = rng.permutation(n)
            losses = []
            hits = 0
            for start in range(0, n, config.batch_size):
                batch = order[start:start + config.batch_size]
                loss, logits = self._step(x_train[batch], y_train[batch])
                losses.append(loss)
                hits += int(
                    (logits.argmax(axis=1) == y_train[batch]).sum()
                )
            history.train_loss.append(float(np.mean(losses)))
            history.train_accuracy.append(hits / n)
            if x_test is not None:
                history.test_accuracy.append(
                    self.evaluate(x_test, y_test))
            if config.verbose:
                test = (f" test={history.test_accuracy[-1]:.3f}"
                        if x_test is not None else "")
                print(f"epoch {epoch + 1}/{config.epochs} "
                      f"loss={history.train_loss[-1]:.4f} "
                      f"train={history.train_accuracy[-1]:.3f}{test}")
        return history

    def _step(self, x: np.ndarray, y: np.ndarray):
        self.optimizer.zero_grad()
        logits = self.model(Tensor(x))
        loss = softmax_cross_entropy(logits, y)
        loss.backward()
        self.optimizer.step()
        self.model.apply_weight_masks()
        return loss.item(), logits.data

    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> float:
        """Top-1 accuracy in eval mode."""
        self.model.eval()
        hits = 0
        with no_grad():
            for start in range(0, x.shape[0], batch_size):
                stop = start + batch_size
                logits = self.model(Tensor(x[start:stop]))
                hits += int(
                    (logits.data.argmax(axis=1) == y[start:stop]).sum()
                )
        return hits / x.shape[0]
