"""Optimizers: SGD with momentum and Adam."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.autograd import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: List[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: List[Tensor], lr: float = 0.1,
                 momentum: float = 0.9, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            param.data -= self.lr * velocity


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, params: List[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1 - b1 ** self._t
        correction2 = 1 - b2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
