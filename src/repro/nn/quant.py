"""8-bit symmetric fake quantization with the straight-through estimator.

Follows the integer-arithmetic-only inference recipe of Jacob et al. [5]
as the paper does: weights are quantized per layer to 255 symmetric levels
(-127..127, keeping the distribution symmetric), activations to 8-bit
codes, and training sees the quantized values in the forward pass while
gradients skip the rounding (STE, Bengio et al. [15]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.autograd import Tensor, _make


@dataclass(frozen=True)
class QuantConfig:
    """Quantization settings for a network.

    Attributes:
        weight_bits: Weight width; 8 means symmetric codes -127..127
            (255 values, the TensorFlow-style symmetric grid of the
            paper).
        act_bits: Activation width; 8-bit signed codes.
        ema_decay: Decay of the running activation-range estimate.
        enabled: Master switch (disable for float baselines).
    """

    weight_bits: int = 8
    act_bits: int = 8
    ema_decay: float = 0.95
    enabled: bool = True

    @property
    def weight_qmax(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1

    @property
    def act_qmax(self) -> int:
        return (1 << (self.act_bits - 1)) - 1


def weight_scale(weight_data: np.ndarray, qmax: int) -> float:
    """Symmetric per-tensor scale mapping the max magnitude onto qmax."""
    peak = float(np.abs(weight_data).max())
    if peak == 0.0:
        return 1.0 / qmax
    return peak / qmax


def fake_quantize_ste(x: Tensor, scale: float, qmin: int,
                      qmax: int) -> Tensor:
    """Quantize-dequantize forward, clipped straight-through backward.

    Values whose integer code saturates the ``[qmin, qmax]`` range pass
    no gradient (the standard clipped STE), everything else passes the
    gradient unchanged.
    """
    if scale <= 0:
        raise ValueError("quantization scale must be positive")
    codes = np.clip(np.round(x.data / scale), qmin, qmax)
    out_data = (codes * scale).astype(np.float32)

    def backward():
        if x.requires_grad:
            inside = (x.data >= qmin * scale) & (x.data <= qmax * scale)
            x._accumulate(out.grad * inside)

    out = _make(out_data, (x,), backward)
    return out


def to_codes(values: np.ndarray, scale: float, qmin: int,
             qmax: int) -> np.ndarray:
    """Float values -> integer quantization codes."""
    if scale <= 0:
        raise ValueError("quantization scale must be positive")
    return np.clip(np.round(np.asarray(values) / scale), qmin,
                   qmax).astype(np.int64)


def from_codes(codes: np.ndarray, scale: float) -> np.ndarray:
    """Integer quantization codes -> float values."""
    return np.asarray(codes, dtype=np.float32) * scale
