"""Weight and activation restriction operators (paper Sec. III-C).

After power- and timing-aware selection, the network may only use the
surviving weight values and activation values.  During retraining the
forward pass *forces* operands onto the selected sets (nearest selected
value) while the backward pass skips the projection via the
straight-through estimator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class _NearestValueProjector:
    """Projects integer codes onto the nearest member of an allowed set."""

    def __init__(self, allowed: Sequence[int], what: str) -> None:
        allowed = np.unique(np.asarray(allowed, dtype=np.int64))
        if allowed.size == 0:
            raise ValueError(f"allowed {what} set must not be empty")
        self.allowed = allowed
        self.what = what

    def __call__(self, codes: np.ndarray) -> np.ndarray:
        """Nearest allowed code for every input code (ties go down)."""
        codes = np.asarray(codes)
        allowed = self.allowed
        idx = np.searchsorted(allowed, codes)
        idx = np.clip(idx, 0, allowed.size - 1)
        right = allowed[idx]
        left = allowed[np.maximum(idx - 1, 0)]
        pick_left = np.abs(codes - left) <= np.abs(right - codes)
        return np.where(pick_left, left, right)

    def __contains__(self, code: int) -> bool:
        pos = np.searchsorted(self.allowed, code)
        return bool(pos < self.allowed.size and self.allowed[pos] == code)

    def __len__(self) -> int:
        return int(self.allowed.size)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.what}, "
                f"n={len(self)})")


class WeightRestriction(_NearestValueProjector):
    """Restriction of integer weight codes to the selected values.

    The zero code must always be allowed: conventional pruning and the
    zero-weight clock gating of the Optimized HW both rely on it.
    """

    def __init__(self, allowed: Sequence[int]) -> None:
        super().__init__(allowed, "weights")
        if 0 not in self:
            raise ValueError("weight restriction must allow the zero code")


class ActivationFilter(_NearestValueProjector):
    """Restriction of integer activation codes to the selected values.

    Applied inside the activation function of every layer, as the paper
    prescribes ("the filtering of activations needs to be integrated into
    the activation function after each layer").
    """

    def __init__(self, allowed: Sequence[int]) -> None:
        super().__init__(allowed, "activations")
        if 0 not in self:
            raise ValueError(
                "activation filter must allow the zero code (ReLU output)"
            )
