"""Minimal NumPy neural-network framework with quantization-aware training.

Substitute for the TensorFlow + QAT stack the paper trains with.  The
framework is a small define-by-run autograd engine
(:mod:`repro.nn.autograd`) plus the layers, quantizers and restriction
operators PowerPruning needs:

* 8-bit symmetric fake quantization with the straight-through estimator
  (:mod:`repro.nn.quant`), after Jacob et al. [5] / Bengio et al. [15];
* weight projection onto a selected value set and activation filtering
  (:mod:`repro.nn.restrict`), the Sec. III-C training restrictions;
* conv/dense/batch-norm/pooling layers (:mod:`repro.nn.layers`),
  optimizers (:mod:`repro.nn.optim`) and a training loop
  (:mod:`repro.nn.trainer`).
"""

from repro.nn.autograd import Tensor, no_grad
from repro.nn.quant import QuantConfig, fake_quantize_ste
from repro.nn.restrict import ActivationFilter, WeightRestriction
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    QuantReLU,
    Sequential,
)
from repro.nn.losses import accuracy, softmax_cross_entropy
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import Trainer, TrainingConfig

__all__ = [
    "Tensor",
    "no_grad",
    "QuantConfig",
    "fake_quantize_ste",
    "WeightRestriction",
    "ActivationFilter",
    "Module",
    "Sequential",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "QuantReLU",
    "softmax_cross_entropy",
    "accuracy",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingConfig",
]
