"""Switching-activity extraction.

Power Compiler consumes per-net toggle statistics (SAIF files) produced by
logic simulation; these helpers compute the same quantity from two
batched evaluations of a netlist — the values *before* and *after* each
input transition.
"""

from __future__ import annotations

import numpy as np

from repro.sim.logic import (
    BatchedPackedValues,
    PackedValues,
    popcount_words,
)


def toggle_matrix(values_before: np.ndarray,
                  values_after: np.ndarray) -> np.ndarray:
    """Per-net, per-sample toggle indicators.

    Args:
        values_before: ``evaluate`` output for the pre-transition patterns.
        values_after: ``evaluate`` output for the post-transition patterns,
            same shape.

    Returns:
        Boolean matrix ``toggled[net, sample]``.
    """
    if values_before.shape != values_after.shape:
        raise ValueError(
            f"shape mismatch: {values_before.shape} vs {values_after.shape}"
        )
    return values_before != values_after


def toggle_rates(values_before: np.ndarray,
                 values_after: np.ndarray) -> np.ndarray:
    """Mean toggle probability of each net across the batch."""
    return toggle_matrix(values_before, values_after).mean(axis=1)


def paired_toggle_rates(values: np.ndarray) -> np.ndarray:
    """Mean toggle probability from one stacked before/after evaluation.

    Evaluating the pre- and post-transition patterns as a single batch
    (``[before..., after...]`` along the sample axis) halves the number
    of passes over the netlist; this helper splits that stacked result
    and reduces it to per-net rates without materializing an
    intermediate toggle matrix copy per half.

    Args:
        values: ``evaluate`` output of shape ``(nets, 2 * n_samples)``
            whose first half of the batch axis holds the pre-transition
            values and second half the post-transition values.

    Returns:
        Per-net mean toggle probability over the ``n_samples`` pairs.
    """
    if values.shape[1] % 2 != 0:
        raise ValueError(
            f"stacked batch of {values.shape[1]} samples has no "
            f"before/after halves")
    half = values.shape[1] // 2
    return (values[:, :half] != values[:, half:]).mean(axis=1)


def paired_toggle_rates_words(values: PackedValues) -> np.ndarray:
    """Packed-domain :func:`paired_toggle_rates`: XOR plus popcount.

    Operates directly on the bit-packed words of a paired evaluation
    (``evaluate_words(..., pair_halves=True)``): the word-aligned
    before/after halves XOR word-for-word, and a popcount reduces the
    toggle words straight to per-net counts — 64 samples per machine
    word, no boolean matrix ever materialized.  Padding bits cancel in
    the XOR because both halves compute the same function of identical
    padding inputs.

    Bit-for-bit identical to unpacking and calling
    :func:`paired_toggle_rates`: the popcount is an exact integer, and
    ``count / n`` equals ``np.mean`` over the matching boolean row.

    Args:
        values: Paired packed evaluation of a stacked
            ``[before..., after...]`` batch.

    Returns:
        Per-net mean toggle probability over the pairs.
    """
    before, after = values.halves()
    counts = popcount_words(before ^ after)
    return counts / float(values.half_batch)


def paired_toggle_rates_words_batched(values: BatchedPackedValues
                                      ) -> np.ndarray:
    """Per-segment :func:`paired_toggle_rates_words` of one megabatch.

    Reduces a weight-batched paired evaluation
    (:func:`~repro.sim.logic.evaluate_words_batched` with
    ``pair_halves=True``) straight from packed words to per-segment
    per-net toggle rates: segment halves XOR word-for-word and the
    segmented popcount folds the whole megabatch in one pass.

    Each returned row is C-contiguous and bit-for-bit identical to
    :func:`paired_toggle_rates_words` on the standalone evaluation of
    that segment — same integer counts, same ``count / n`` division.

    Args:
        values: Paired megabatch evaluation.

    Returns:
        ``(n_segments, nets)`` mean toggle probabilities.
    """
    return values.paired_toggle_counts() / float(values.half_batch)


def stream_toggle_counts(values: np.ndarray) -> np.ndarray:
    """Toggle counts of each net over a time-ordered pattern stream.

    Args:
        values: ``evaluate`` output where the batch axis is *time* (the
            consecutive cycles of a simulation).

    Returns:
        Integer vector of toggle counts per net over the stream.
    """
    if values.shape[1] < 2:
        return np.zeros(values.shape[0], dtype=np.int64)
    return (values[:, 1:] != values[:, :-1]).sum(axis=1)
