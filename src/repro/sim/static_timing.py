"""Static timing analysis (the Design Compiler role).

Longest-path analysis over the netlist DAG.  Two directions are needed:

* *arrival times* — the classic forward pass giving the worst-case delay
  at every net, used to time the whole MAC ("post-synthesis" 180 ps).
* *time to outputs* — the backward pass giving, for every net, the longest
  remaining path to any primary output.  The paper's composition (Fig. 5)
  reads the adder's per-product-bit delays from exactly this quantity.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.netlist.gates import Netlist, PackedNetlist


def _packed(netlist: Union[Netlist, PackedNetlist]) -> PackedNetlist:
    return netlist if isinstance(netlist, PackedNetlist) else netlist.packed()


def static_arrival_times(netlist: Union[Netlist, PackedNetlist],
                         library) -> np.ndarray:
    """Worst-case arrival time (ps) at every net, inputs at t=0."""
    packed = _packed(netlist)
    delays = packed.gate_delays(library)
    arrivals = np.zeros(len(packed), dtype=np.float64)
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    for net in range(len(packed)):
        if delays[net] == 0.0 and f0[net] < 0:
            continue  # source node
        worst = 0.0
        for fanin in (f0[net], f1[net], f2[net]):
            if fanin >= 0 and arrivals[fanin] > worst:
                worst = arrivals[fanin]
        arrivals[net] = worst + delays[net]
    return arrivals


def static_max_delay(netlist: Union[Netlist, PackedNetlist],
                     library) -> float:
    """Critical-path delay (ps) from any input to any output."""
    packed = _packed(netlist)
    arrivals = static_arrival_times(packed, library)
    outputs = list(packed.netlist.output_names.values())
    if not outputs:
        raise ValueError("netlist has no outputs to time")
    return float(arrivals[outputs].max())


def time_to_outputs(netlist: Union[Netlist, PackedNetlist],
                    library) -> np.ndarray:
    """Longest remaining delay (ps) from every net to any primary output.

    A net that cannot reach an output gets ``-inf``; primary-output nets
    themselves get at least 0.  For a primary input, the returned value is
    the STA delay of the whole input-to-output cone — the per-bit numbers
    the paper adds on top of the multiplier's dynamic delays.
    """
    packed = _packed(netlist)
    delays = packed.gate_delays(library)
    remaining = np.full(len(packed), -np.inf, dtype=np.float64)
    for net in packed.netlist.output_names.values():
        remaining[net] = max(remaining[net], 0.0)
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    # Walk in reverse topological order, relaxing fanins through each gate:
    # reaching this gate's output costs the gate's own delay.
    for net in range(len(packed) - 1, -1, -1):
        if remaining[net] == -np.inf:
            continue
        through = remaining[net] + delays[net]
        for fanin in (f0[net], f1[net], f2[net]):
            if fanin >= 0 and through > remaining[fanin]:
                remaining[fanin] = through
    return remaining


def input_bus_delays(netlist: Union[Netlist, PackedNetlist], library,
                     prefix: str, width: int) -> np.ndarray:
    """STA delay from each bit of an input bus to any output.

    Bits that reach no output (possible for unused wires) report 0.
    """
    packed = _packed(netlist)
    remaining = time_to_outputs(packed, library)
    nets = packed.netlist.input_bus(prefix, width)
    values = remaining[nets]
    return np.where(np.isfinite(values), values, 0.0)
