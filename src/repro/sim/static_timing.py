"""Static timing analysis (the Design Compiler role).

Longest-path analysis over the netlist DAG.  Two directions are needed:

* *arrival times* — the classic forward pass giving the worst-case delay
  at every net, used to time the whole MAC ("post-synthesis" 180 ps).
* *time to outputs* — the backward pass giving, for every net, the longest
  remaining path to any primary output.  The paper's composition (Fig. 5)
  reads the adder's per-product-bit delays from exactly this quantity.

Both passes run levelized over the netlist's cached
:class:`~repro.netlist.gates.LevelSchedule` (the same execution plan the
logic and dynamic-timing kernels use): per level, the max-reduction over
fanins is one batched numpy gather instead of a per-net Python walk.
The results are bit-for-bit identical to the original walks — float max
is exact, and every net's single ``+ delay`` happens in the same order —
so adopting the kernels required no golden regeneration and no stage
version bumps.  The walks are kept as ``*_reference`` executable
specifications and property-test oracles.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.netlist.gates import Netlist, PackedNetlist


def _packed(netlist: Union[Netlist, PackedNetlist]) -> PackedNetlist:
    return netlist if isinstance(netlist, PackedNetlist) else netlist.packed()


def static_arrival_times(netlist: Union[Netlist, PackedNetlist],
                         library) -> np.ndarray:
    """Worst-case arrival time (ps) at every net, inputs at t=0.

    Levelized forward pass: sources stay at 0, and each level's gates
    take the max over their fanins' arrivals (all on strictly earlier
    levels) plus their own delay in one batched operation per
    fanin-arity group.
    """
    packed = _packed(netlist)
    delays = packed.gate_delays(library)
    arrivals = np.zeros(len(packed), dtype=np.float64)
    for group in packed.schedule.fanin_groups:
        # Fancy indexing copies, so the in-place maxes never alias.
        latest = arrivals[group.f0]
        if group.n_fanins >= 2:
            np.maximum(latest, arrivals[group.f1], out=latest)
        if group.n_fanins >= 3:
            np.maximum(latest, arrivals[group.f2], out=latest)
        arrivals[group.dst] = latest + delays[group.dst]
    return arrivals


def static_arrival_times_reference(
        netlist: Union[Netlist, PackedNetlist], library) -> np.ndarray:
    """The original per-net walk (executable specification).

    Kept as the oracle :func:`static_arrival_times` is property-tested
    against for bit-for-bit equality.
    """
    packed = _packed(netlist)
    delays = packed.gate_delays(library)
    arrivals = np.zeros(len(packed), dtype=np.float64)
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    for net in range(len(packed)):
        if delays[net] == 0.0 and f0[net] < 0:
            continue  # source node
        worst = 0.0
        for fanin in (f0[net], f1[net], f2[net]):
            if fanin >= 0 and arrivals[fanin] > worst:
                worst = arrivals[fanin]
        arrivals[net] = worst + delays[net]
    return arrivals


def static_max_delay(netlist: Union[Netlist, PackedNetlist],
                     library) -> float:
    """Critical-path delay (ps) from any input to any output."""
    packed = _packed(netlist)
    arrivals = static_arrival_times(packed, library)
    outputs = list(packed.netlist.output_names.values())
    if not outputs:
        raise ValueError("netlist has no outputs to time")
    return float(arrivals[outputs].max())


def time_to_outputs(netlist: Union[Netlist, PackedNetlist],
                    library) -> np.ndarray:
    """Longest remaining delay (ps) from every net to any primary output.

    A net that cannot reach an output gets ``-inf``; primary-output nets
    themselves get at least 0.  For a primary input, the returned value is
    the STA delay of the whole input-to-output cone — the per-bit numbers
    the paper adds on top of the multiplier's dynamic delays.

    Levelized backward pass over the schedule in reverse level order:
    a gate's own remaining time is final before its level runs (every
    fanout lives on a strictly later level, already processed), so each
    group relaxes its fanins with one unbuffered scatter-max
    (``np.maximum.at`` — duplicate fanins within a group are safe).
    Unreachable gates carry ``-inf`` through the adds and relax nothing,
    exactly like the reference walk's skip.
    """
    packed = _packed(netlist)
    delays = packed.gate_delays(library)
    remaining = np.full(len(packed), -np.inf, dtype=np.float64)
    for net in packed.netlist.output_names.values():
        remaining[net] = max(remaining[net], 0.0)
    for group in reversed(packed.schedule.fanin_groups):
        through = remaining[group.dst] + delays[group.dst]
        np.maximum.at(remaining, group.f0, through)
        if group.n_fanins >= 2:
            np.maximum.at(remaining, group.f1, through)
        if group.n_fanins >= 3:
            np.maximum.at(remaining, group.f2, through)
    return remaining


def time_to_outputs_reference(
        netlist: Union[Netlist, PackedNetlist], library) -> np.ndarray:
    """The original reverse-order per-net walk (executable
    specification and property-test oracle)."""
    packed = _packed(netlist)
    delays = packed.gate_delays(library)
    remaining = np.full(len(packed), -np.inf, dtype=np.float64)
    for net in packed.netlist.output_names.values():
        remaining[net] = max(remaining[net], 0.0)
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    # Walk in reverse topological order, relaxing fanins through each gate:
    # reaching this gate's output costs the gate's own delay.
    for net in range(len(packed) - 1, -1, -1):
        if remaining[net] == -np.inf:
            continue
        through = remaining[net] + delays[net]
        for fanin in (f0[net], f1[net], f2[net]):
            if fanin >= 0 and through > remaining[fanin]:
                remaining[fanin] = through
    return remaining


def input_bus_delays(netlist: Union[Netlist, PackedNetlist], library,
                     prefix: str, width: int) -> np.ndarray:
    """STA delay from each bit of an input bus to any output.

    Bits that reach no output (possible for unused wires) report 0.
    """
    packed = _packed(netlist)
    remaining = time_to_outputs(packed, library)
    nets = packed.netlist.input_bus(prefix, width)
    values = remaining[nets]
    return np.where(np.isfinite(values), values, 0.0)
