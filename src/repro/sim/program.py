"""Level-program compiler: flatten a :class:`LevelSchedule` to opcodes.

The levelized schedule (:class:`~repro.netlist.gates.LevelSchedule`) is
a tuple of per-(level, type) :class:`~repro.netlist.gates.GateGroup`
objects — ideal for numpy fancy indexing, but still a Python object
walk (~100–150 groups per netlist per launch, most only a handful of
gates wide) and opaque to compiled backends.  A :class:`LevelProgram`
flattens that schedule into one contiguous set of typed ``int32``
arrays — per-gate opcode, fanin net indices, output net index, level
boundaries, arity — the *instruction stream* a compiled interpreter
(:mod:`repro.sim.compiled`) executes gate by gate.

The program additionally reorders gates *within* each level (any
within-level order is valid — levels only read strictly earlier
levels) to make the vectorized numpy executor cheap:

* the three binary ufunc families form contiguous runs
  (``AND2|NAND2``, ``OR2|NOR2``, ``XOR2|XNOR2``), so each level needs
  at most three batched binary ops regardless of how many (level, type)
  groups the schedule had;
* all inverting types (``NAND2``/``NOR2``/``XNOR2``/``INV``) fold into
  one per-gate ``inv_mask`` word (all-ones where the result must be
  complemented), applied as a single broadcast XOR per level — ``INV``
  and ``BUF`` never need an op of their own (``BUF`` is the bare
  gathered fanin, ``INV`` the gathered fanin XOR all-ones);
* ``MUX2`` is always the level's tail run, with its third fanin
  appended to the level's single merged gather index
  (``[src0 | src1 | mux src2]``), so one fancy-index load fetches every
  operand of the level.

``level_plan`` precomputes the per-level slice arithmetic as plain
Python ints, keeping numpy scalar extraction out of the executor loop.

The program is a pure function of the netlist; it is built once,
cached on :class:`~repro.netlist.gates.PackedNetlist` alongside the
schedule, and pickles warm to characterization workers (no per-shard
rebuild).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.netlist.gates import GateGroup, GateType, LevelSchedule

#: Within-level execution order of the program: binary ufunc families
#: first (paired with their inverting twins so each family is one
#: contiguous run), then the op-free unary types, MUX2 last.
_TYPE_PRIORITY: Dict[int, int] = {
    GateType.AND2: 0, GateType.NAND2: 1,
    GateType.OR2: 2, GateType.NOR2: 3,
    GateType.XOR2: 4, GateType.XNOR2: 5,
    GateType.INV: 6, GateType.BUF: 7,
    GateType.MUX2: 8,
}

#: Types whose result is complemented via the broadcast invert mask.
_INVERTING = frozenset({GateType.NAND2, GateType.NOR2,
                        GateType.XNOR2, GateType.INV})

#: Binary ufunc family of each two-input type (index into the
#: executor's ``(bitwise_and, bitwise_or, bitwise_xor)`` table).
_BINOP_FAMILY: Dict[int, int] = {
    GateType.AND2: 0, GateType.NAND2: 0,
    GateType.OR2: 1, GateType.NOR2: 1,
    GateType.XOR2: 2, GateType.XNOR2: 2,
}


class LevelProgram:
    """Flattened, typed opcode-array view of a :class:`LevelSchedule`.

    All per-gate arrays are aligned, length ``n_gates``, in *program*
    order: level-major like the schedule, but within a level sorted by
    :data:`_TYPE_PRIORITY` — executing gates in array order still
    respects every data dependency.

    Attributes:
        n_nets: Number of nets (rows of the value matrix).
        n_gates: Number of scheduled gate instances.
        ops: Per-gate opcode (:class:`GateType` value), ``int32``.
        arity: Per-gate live-fanin count, ``int32``.
        src0 / src1 / src2: Per-gate fanin net indices (-1 unused).
        src1_safe: ``src1`` with unused slots redirected to ``src0`` —
            lets the level-wide blind gather stay in bounds for unary
            gates (the gathered value is never read for them).
        dst: Per-gate output net index.
        inv_mask: Per-gate ``uint64`` complement mask (all ones for the
            inverting types, zero otherwise).
        level_starts: ``(n_levels_used + 1,)`` gate-index boundaries of
            the levels, ``int32``.
        mux_starts: Per level, the gate index where the MUX2 tail
            begins (== the level end when the level has none).
        gather_idx: Flat ``int32`` net indices of every level's merged
            operand gather ``[src0 | src1_safe | mux src2]``;
            per-level extents live in ``level_plan``.
        level_plan: Per level, a plain-int tuple
            ``(start, stop, mux_start, g_start, g_stop, has_invert,
            binop_runs)`` where ``binop_runs`` is a tuple of
            ``(family, rel_start, rel_stop)`` relative to ``start``.
    """

    def __init__(self, schedule: LevelSchedule) -> None:
        groups = schedule.groups
        n_gates = int(sum(g.dst.size for g in groups))
        self.n_nets = int(schedule.levels.size)
        self.n_gates = n_gates

        self.ops = np.empty(n_gates, dtype=np.int32)
        self.arity = np.empty(n_gates, dtype=np.int32)
        self.dst = np.empty(n_gates, dtype=np.int32)
        self.src0 = np.empty(n_gates, dtype=np.int32)
        self.src1 = np.empty(n_gates, dtype=np.int32)
        self.src2 = np.empty(n_gates, dtype=np.int32)
        self.inv_mask = np.zeros(n_gates, dtype=np.uint64)

        # Bucket the schedule's (level, type) groups by level; within a
        # level re-sort them by the executor-friendly priority.
        by_level: Dict[int, List[GateGroup]] = {}
        for group in groups:
            level = int(schedule.levels[group.dst[0]])
            by_level.setdefault(level, []).append(group)

        all_ones = ~np.uint64(0)
        level_starts: List[int] = [0]
        mux_starts: List[int] = []
        gather_parts: List[np.ndarray] = []
        level_plan: List[Tuple] = []
        g_pos = 0
        pos = 0
        for level in sorted(by_level):
            ordered = sorted(by_level[level],
                             key=lambda g: _TYPE_PRIORITY[g.gtype])
            start = pos
            mux_start = None
            binop_runs: List[Tuple[int, int, int]] = []
            has_invert = False
            for group in ordered:
                size = group.dst.size
                span = slice(pos, pos + size)
                self.ops[span] = group.gtype
                self.arity[span] = group.n_fanins
                self.dst[span] = group.dst
                self.src0[span] = group.f0
                self.src1[span] = group.f1
                self.src2[span] = group.f2
                if group.gtype in _INVERTING:
                    self.inv_mask[span] = all_ones
                    has_invert = True
                family = _BINOP_FAMILY.get(group.gtype)
                if family is not None:
                    if binop_runs and binop_runs[-1][0] == family \
                            and binop_runs[-1][2] == pos - start:
                        # Extend the run across the paired twin type.
                        binop_runs[-1] = (family, binop_runs[-1][1],
                                          pos - start + size)
                    else:
                        binop_runs.append((family, pos - start,
                                           pos - start + size))
                if group.gtype == GateType.MUX2 and mux_start is None:
                    mux_start = pos
                pos += size
            stop = pos
            if mux_start is None:
                mux_start = stop
            level_starts.append(stop)
            mux_starts.append(mux_start)

            # One merged operand gather per level: every gate's first
            # and second fanin (src1 redirected to src0 for unary
            # gates, keeping the blind load in bounds), plus the MUX
            # tail's third fanin.
            src1_safe_level = np.where(self.src1[start:stop] >= 0,
                                       self.src1[start:stop],
                                       self.src0[start:stop])
            parts = [self.src0[start:stop], src1_safe_level]
            if mux_start < stop:
                parts.append(self.src2[mux_start:stop])
            gather = np.concatenate(parts).astype(np.int32)
            gather_parts.append(gather)
            level_plan.append((start, stop, mux_start,
                               g_pos, g_pos + gather.size,
                               has_invert, tuple(binop_runs)))
            g_pos += gather.size

        self.src1_safe = np.where(self.src1 >= 0, self.src1,
                                  self.src0).astype(np.int32)
        self.level_starts = np.asarray(level_starts, dtype=np.int32)
        self.mux_starts = np.asarray(mux_starts, dtype=np.int32)
        self.gather_idx = (np.concatenate(gather_parts)
                           if gather_parts
                           else np.empty(0, dtype=np.int32))
        self.level_plan: Tuple[Tuple, ...] = tuple(level_plan)

    @property
    def n_levels(self) -> int:
        """Number of levels that contain at least one gate."""
        return self.level_starts.size - 1

    def stats(self) -> Dict[str, int]:
        """Program shape summary (for benchmarks and logs)."""
        return {
            "n_nets": self.n_nets,
            "n_gates": self.n_gates,
            "n_levels": self.n_levels,
            "n_binop_runs": int(sum(len(plan[6])
                                    for plan in self.level_plan)),
        }
