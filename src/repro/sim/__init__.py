"""Gate-level simulation engines.

Vectorized replacements for the commercial tooling the paper uses:

* :mod:`repro.sim.logic` — batched Boolean evaluation of a netlist
  (the role of Modelsim's functional simulation).
* :mod:`repro.sim.switching` — toggle extraction between input patterns
  (the switching-activity files fed to Power Compiler).
* :mod:`repro.sim.dynamic_timing` — per-transition arrival-time
  propagation (dynamic timing analysis).
* :mod:`repro.sim.static_timing` — longest-path analysis (the role of
  Design Compiler's STA engine).
"""

from repro.sim.compiled import (
    active_executor,
    default_kernel,
    jit_available,
    jit_status,
    set_process_kernel,
)
from repro.sim.logic import (
    PackedValues,
    bits_to_int,
    evaluate,
    evaluate_words,
    int_to_bits,
    pack_bits,
    popcount_words,
    unpack_bits,
)
from repro.sim.program import LevelProgram
from repro.sim.switching import (
    paired_toggle_rates,
    paired_toggle_rates_words,
    toggle_matrix,
    toggle_rates,
)
from repro.sim.dynamic_timing import (
    dynamic_arrival_times,
    dynamic_arrival_times_reference,
    dynamic_bus_arrivals,
    dynamic_delays,
)
from repro.sim.static_timing import (
    static_arrival_times,
    static_arrival_times_reference,
    static_max_delay,
    time_to_outputs,
    time_to_outputs_reference,
)

__all__ = [
    "evaluate",
    "evaluate_words",
    "PackedValues",
    "pack_bits",
    "unpack_bits",
    "popcount_words",
    "int_to_bits",
    "bits_to_int",
    "toggle_matrix",
    "toggle_rates",
    "paired_toggle_rates",
    "paired_toggle_rates_words",
    "dynamic_arrival_times",
    "dynamic_arrival_times_reference",
    "dynamic_bus_arrivals",
    "dynamic_delays",
    "LevelProgram",
    "active_executor",
    "default_kernel",
    "jit_available",
    "jit_status",
    "set_process_kernel",
    "static_arrival_times",
    "static_arrival_times_reference",
    "static_max_delay",
    "time_to_outputs",
    "time_to_outputs_reference",
]
