"""Gate-level simulation engines.

Vectorized replacements for the commercial tooling the paper uses:

* :mod:`repro.sim.logic` — batched Boolean evaluation of a netlist
  (the role of Modelsim's functional simulation).
* :mod:`repro.sim.switching` — toggle extraction between input patterns
  (the switching-activity files fed to Power Compiler).
* :mod:`repro.sim.dynamic_timing` — per-transition arrival-time
  propagation (dynamic timing analysis).
* :mod:`repro.sim.static_timing` — longest-path analysis (the role of
  Design Compiler's STA engine).
"""

from repro.sim.logic import bits_to_int, evaluate, int_to_bits
from repro.sim.switching import (
    paired_toggle_rates,
    toggle_matrix,
    toggle_rates,
)
from repro.sim.dynamic_timing import dynamic_arrival_times, dynamic_delays
from repro.sim.static_timing import (
    static_arrival_times,
    static_max_delay,
    time_to_outputs,
)

__all__ = [
    "evaluate",
    "int_to_bits",
    "bits_to_int",
    "toggle_matrix",
    "toggle_rates",
    "paired_toggle_rates",
    "dynamic_arrival_times",
    "dynamic_delays",
    "static_arrival_times",
    "static_max_delay",
    "time_to_outputs",
]
