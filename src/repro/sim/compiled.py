"""Compiled execution backends for the level program.

Executes a :class:`~repro.sim.program.LevelProgram` (the flattened
opcode-array form of the level schedule, see :mod:`repro.sim.program`)
over the packed ``uint64`` word matrix.  Two executors share one
bit-for-bit contract with the ``packed`` group walk
(:func:`repro.sim.logic._run_schedule_words`, kept as oracle):

* ``jit`` — a Numba ``@njit(cache=True, nogil=True)`` interpreter that
  walks the instruction stream gate by gate in native code (program
  order is topological, so no level synchronization is needed), plus
  fused variants that keep the whole reduction inside the launch:
  segmented toggle popcounts for the one-launch characterization path
  and a streaming dynamic-timing walk that retains only the requested
  output-bus arrivals instead of the dense per-net arrival matrix.
* ``numpy`` — the always-available fallback: per *level*, one merged
  fancy-index load pulls every operand word (``[src0|src1|mux src2]``),
  at most three in-place binary ufunc calls cover the AND/OR/XOR
  families (the program orders inverting twins adjacent), one broadcast
  XOR with the per-gate ``inv_mask`` applies every complement, and one
  scatter writes the level back — no per-group Python dispatch (MUX2
  uses the XOR-select identity ``p ^ (sel & (p ^ q))`` entirely inside
  the gathered block).

numba is an *optional* extra (``pip install .[jit]``); its import is
attempted exactly once per process — the popcount capability-probe
pattern — and the decision is exposed via :func:`jit_status` so
benchmarks and CI log which executor actually ran.  Selection knobs:

* ``REPRO_SIM_KERNEL`` — default word kernel (``compiled``/``packed``),
  overriding the config/CLI default; never part of cache keys.
* ``REPRO_SIM_JIT=0`` — force the numpy executor even when numba is
  importable (the equivalence suite uses this to cover both paths).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.netlist.gates import GateType
from repro.sim.program import LevelProgram

#: Environment variable selecting the default word kernel.
KERNEL_ENV = "REPRO_SIM_KERNEL"

#: Environment variable force-disabling the JIT executor (``0``/``off``/
#: ``false``/``no``/``numpy`` all mean "use the numpy fallback").
JIT_ENV = "REPRO_SIM_JIT"

#: Kernels the packed word evaluators understand.
WORD_KERNELS = ("compiled", "packed")

_FALSEY = frozenset({"0", "false", "off", "no", "numpy"})

#: Process-wide default kernel installed from config (see
#: :func:`set_process_kernel`); ``None`` means auto.
_process_kernel: Optional[str] = None

#: Once-per-process numba import probe (never re-attempted).
_numba_probe: Optional[Dict[str, Any]] = None

#: Lazily built JIT kernel table (only when numba is importable).
_jit_kernels: Optional[Dict[str, Callable]] = None


# ----------------------------------------------------------------------
# capability probe + kernel selection
# ----------------------------------------------------------------------
def _probe_numba() -> Dict[str, Any]:
    """Attempt the numba import at most once per process.

    Mirrors the ``_HAS_NATIVE_POPCOUNT`` pattern in
    :mod:`repro.sim.logic`: the decision is made once, never inside a
    hot loop, and worker processes re-probe on their own import.
    """
    global _numba_probe
    if _numba_probe is None:
        try:
            import numba
            _numba_probe = {
                "available": True,
                "version": getattr(numba, "__version__", "unknown"),
            }
        except ImportError:
            _numba_probe = {"available": False, "version": None}
    return _numba_probe


def _jit_disabled() -> bool:
    return os.environ.get(JIT_ENV, "").strip().lower() in _FALSEY


def jit_available() -> bool:
    """True when the JIT executor can run (importable and not disabled)."""
    return not _jit_disabled() and _probe_numba()["available"]


def active_executor() -> str:
    """``"jit"`` or ``"numpy"`` — the program executor that runs now."""
    return "jit" if jit_available() else "numpy"


def jit_status() -> Dict[str, Any]:
    """JIT availability decision for bench/platform metadata.

    Returns:
        ``{"available", "active", "version", "reason"}`` — ``available``
        reports the import probe, ``active`` whether the JIT executor
        is actually selected (the env kill-switch can veto it).
    """
    probe = _probe_numba()
    if _jit_disabled():
        reason = f"disabled via {JIT_ENV}"
    elif probe["available"]:
        reason = f"numba {probe['version']}"
    else:
        reason = "numba not importable"
    return {
        "available": probe["available"],
        "active": jit_available(),
        "version": probe["version"],
        "reason": reason,
    }


def _validate_kernel(kernel: str) -> str:
    if kernel not in WORD_KERNELS:
        raise ValueError(
            f"unknown sim kernel {kernel!r}; choose from "
            f"{WORD_KERNELS} (or 'auto')")
    return kernel


def set_process_kernel(kernel: Optional[str]) -> None:
    """Install a process-wide default word kernel (config plumbing).

    ``None``/``"auto"`` resets to auto-detection.  The
    ``REPRO_SIM_KERNEL`` environment variable still wins over this —
    an explicit user override beats configuration.  Like ``char_jobs``,
    the choice never enters cache keys: every kernel is bit-for-bit
    identical.
    """
    global _process_kernel
    if kernel is None or kernel == "auto":
        _process_kernel = None
    else:
        _process_kernel = _validate_kernel(kernel)


def default_kernel() -> str:
    """The word kernel used when callers do not pass one explicitly.

    Precedence: ``REPRO_SIM_KERNEL`` env override > process default
    installed from config > ``"compiled"``.
    """
    env = os.environ.get(KERNEL_ENV, "").strip()
    if env and env != "auto":
        return _validate_kernel(env)
    if _process_kernel is not None:
        return _process_kernel
    return "compiled"


def resolve_kernel(kernel: Optional[str]) -> str:
    """Normalize an explicit/auto kernel argument to a concrete one."""
    if kernel is None or kernel == "auto":
        return default_kernel()
    return _validate_kernel(kernel)


# ----------------------------------------------------------------------
# numpy program executor (always available)
# ----------------------------------------------------------------------
#: Binary ufunc family table, indexed by the program's run family ids.
_BINOP_UFUNCS = (np.bitwise_and, np.bitwise_or, np.bitwise_xor)


def _run_program_words_numpy(program: LevelProgram,
                             words: np.ndarray) -> None:
    """Vectorized level-program execution over packed words, in place.

    Per level (all slice arithmetic precomputed as plain ints in
    ``program.level_plan``): one merged fancy-index gather loads every
    operand word, each binary family is one in-place ufunc call on its
    contiguous run, one broadcast XOR with ``inv_mask`` complements the
    NAND/NOR/XNOR/INV results (BUF rides along with a zero mask), the
    MUX2 tail evaluates ``p ^ (sel & (p ^ q))`` inside the gathered
    block, and one scatter writes the level's outputs back.
    """
    dst = program.dst
    gather_idx = program.gather_idx
    inv_mask = program.inv_mask
    for (start, stop, mux_start, g_start, g_stop,
         has_invert, binop_runs) in program.level_plan:
        n = stop - start
        block = words[gather_idx[g_start:g_stop]]
        a = block[:n]
        b = block[n:2 * n]
        for (family, r0, r1) in binop_runs:
            _BINOP_UFUNCS[family](a[r0:r1], b[r0:r1], out=a[r0:r1])
        if has_invert:
            a ^= inv_mask[start:stop, None]
        if mux_start < stop:
            # out = p ^ (sel & (p ^ q)) — p if sel==0 else q — with
            # sel in a's tail, p in b's tail, q in the gathered c
            # block; computed in place, then folded into ``a`` so the
            # level needs a single scatter.
            m = mux_start - start
            c = block[2 * n:]
            bm = b[m:]
            np.bitwise_xor(c, bm, out=c)
            np.bitwise_and(c, a[m:], out=c)
            np.bitwise_xor(c, bm, out=c)
            a[m:] = c
        words[dst[start:stop]] = a


# ----------------------------------------------------------------------
# JIT kernels (built lazily, only when numba is importable)
# ----------------------------------------------------------------------
def _build_jit_kernels() -> Dict[str, Callable]:  # pragma: no cover
    """Compile the numba kernels once per process.

    Exercised only when the optional numba extra is installed (the CI
    jit leg); the numpy executor above is the in-repo tested fallback.
    """
    from numba import njit

    OP_INV = int(GateType.INV)
    OP_BUF = int(GateType.BUF)
    OP_AND2 = int(GateType.AND2)
    OP_OR2 = int(GateType.OR2)
    OP_NAND2 = int(GateType.NAND2)
    OP_NOR2 = int(GateType.NOR2)
    OP_XOR2 = int(GateType.XOR2)
    OP_XNOR2 = int(GateType.XNOR2)
    OP_MUX2 = int(GateType.MUX2)

    # SWAR popcount constants, explicitly uint64 so numba never
    # promotes the masks through int64 (uint64 op int64 -> float64
    # under numpy promotion rules).
    M1 = np.uint64(0x5555555555555555)
    M2 = np.uint64(0x3333333333333333)
    M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    H01 = np.uint64(0x0101010101010101)
    S1 = np.uint64(1)
    S2 = np.uint64(2)
    S4 = np.uint64(4)
    S56 = np.uint64(56)
    ONE = np.uint64(1)
    WORD_SHIFT = 6          # samples-per-word log2
    BIT_MASK = 63

    @njit(cache=True, nogil=True, inline="always")
    def _popcount64(x):
        x = x - ((x >> S1) & M1)
        x = (x & M2) + ((x >> S2) & M2)
        x = (x + (x >> S4)) & M4
        return (x * H01) >> S56

    @njit(cache=True, nogil=True)
    def run_words(ops, src0, src1, src2, dst, words):
        n_words = words.shape[1]
        for g in range(ops.shape[0]):
            op = ops[g]
            d = dst[g]
            s0 = src0[g]
            if op == OP_AND2:
                s1 = src1[g]
                for w in range(n_words):
                    words[d, w] = words[s0, w] & words[s1, w]
            elif op == OP_XOR2:
                s1 = src1[g]
                for w in range(n_words):
                    words[d, w] = words[s0, w] ^ words[s1, w]
            elif op == OP_OR2:
                s1 = src1[g]
                for w in range(n_words):
                    words[d, w] = words[s0, w] | words[s1, w]
            elif op == OP_NAND2:
                s1 = src1[g]
                for w in range(n_words):
                    words[d, w] = ~(words[s0, w] & words[s1, w])
            elif op == OP_NOR2:
                s1 = src1[g]
                for w in range(n_words):
                    words[d, w] = ~(words[s0, w] | words[s1, w])
            elif op == OP_XNOR2:
                s1 = src1[g]
                for w in range(n_words):
                    words[d, w] = ~(words[s0, w] ^ words[s1, w])
            elif op == OP_INV:
                for w in range(n_words):
                    words[d, w] = ~words[s0, w]
            elif op == OP_BUF:
                for w in range(n_words):
                    words[d, w] = words[s0, w]
            elif op == OP_MUX2:
                s1 = src1[g]
                s2 = src2[g]
                for w in range(n_words):
                    sel = words[s0, w]
                    words[d, w] = (words[s2, w] & sel) \
                        | (words[s1, w] & ~sel)

    @njit(cache=True, nogil=True)
    def segment_counts(words, n_segments, words_per_segment, counts):
        half = words_per_segment // 2
        n_nets = words.shape[0]
        for net in range(n_nets):
            for seg in range(n_segments):
                base = seg * words_per_segment
                acc = np.uint64(0)
                for w in range(half):
                    acc += _popcount64(words[net, base + w]
                                       ^ words[net, base + half + w])
                counts[seg, net] = acc

    @njit(cache=True, nogil=True)
    def stream_bus_arrivals(arity, src0, src1, src2, dst, delays,
                            xor_words, out_nets, out):
        n_nets = delays.shape[0]
        n_gates = dst.shape[0]
        batch = out.shape[1]
        arrivals = np.zeros(n_nets, dtype=np.float64)
        for j in range(batch):
            word = j >> WORD_SHIFT
            bit = np.uint64(j & BIT_MASK)
            for g in range(n_gates):
                d = dst[g]
                if (xor_words[d, word] >> bit) & ONE:
                    latest = arrivals[src0[g]]
                    if arity[g] >= 2:
                        other = arrivals[src1[g]]
                        if other > latest:
                            latest = other
                    if arity[g] >= 3:
                        other = arrivals[src2[g]]
                        if other > latest:
                            latest = other
                    arrivals[d] = latest + delays[d]
                else:
                    arrivals[d] = 0.0
            for k in range(out_nets.shape[0]):
                out[k, j] = arrivals[out_nets[k]]

    return {
        "run_words": run_words,
        "segment_counts": segment_counts,
        "stream_bus_arrivals": stream_bus_arrivals,
    }


def _get_jit_kernels() -> Optional[Dict[str, Callable]]:
    """The compiled kernel table, or ``None`` when JIT is unavailable."""
    global _jit_kernels
    if not jit_available():
        return None
    if _jit_kernels is None:  # pragma: no cover - needs numba
        _jit_kernels = _build_jit_kernels()
    return _jit_kernels


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def run_program_words(program: LevelProgram,
                      words: np.ndarray) -> None:
    """Execute the level program over packed words, in place.

    Dispatches to the JIT interpreter when available, else the
    vectorized numpy executor — bit-for-bit identical either way.
    """
    kernels = _get_jit_kernels()
    if kernels is not None:  # pragma: no cover - needs numba
        kernels["run_words"](program.ops, program.src0, program.src1,
                             program.src2, program.dst, words)
        return
    _run_program_words_numpy(program, words)


def segment_toggle_counts(words: np.ndarray, n_segments: int,
                          words_per_segment: int
                          ) -> Optional[np.ndarray]:
    """Fused per-segment paired toggle counts, JIT executor only.

    XORs each segment's word-aligned before/after halves and popcounts
    them inside one native loop — the XOR word matrix is never
    materialized.  Returns ``None`` when the JIT executor is inactive
    (callers fall back to the segmented-popcount numpy reduction, which
    produces identical integer counts).
    """
    kernels = _get_jit_kernels()
    if kernels is None:
        return None
    counts = np.empty((n_segments, words.shape[0]),  # pragma: no cover
                      dtype=np.int64)
    kernels["segment_counts"](  # pragma: no cover - needs numba
        np.ascontiguousarray(words), n_segments, words_per_segment,
        counts)
    return counts  # pragma: no cover - needs numba


def stream_bus_arrivals(program: LevelProgram, delays: np.ndarray,
                        xor_words: np.ndarray, out_nets: np.ndarray,
                        out: np.ndarray) -> bool:
    """Streaming dynamic-arrival walk, JIT executor only.

    Propagates arrival times gate by gate per sample, reading toggle
    bits straight from the XOR word matrix and retaining only the
    ``out_nets`` rows in ``out`` — the dense per-net arrival matrix is
    never built.  Returns ``False`` when the JIT executor is inactive
    (callers fall back to the windowed levelized propagation).
    """
    kernels = _get_jit_kernels()
    if kernels is None:
        return False
    kernels["stream_bus_arrivals"](  # pragma: no cover - needs numba
        program.arity, program.src0, program.src1, program.src2,
        program.dst, delays, np.ascontiguousarray(xor_words),
        np.ascontiguousarray(out_nets, dtype=np.int64), out)
    return True  # pragma: no cover - needs numba
