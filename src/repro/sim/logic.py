"""Batched Boolean evaluation of gate-level netlists.

Three kernels share one contract (bit-for-bit identical results):

* ``reference`` — the original interpreted walk: one Python iteration
  per gate, applying its function to a whole boolean batch.  Kept as
  the executable specification the fast kernels are tested against.
* ``levelized`` — gates are topologically levelized and grouped by
  type at :class:`~repro.netlist.gates.PackedNetlist` build time (see
  :class:`~repro.netlist.gates.LevelSchedule`), so evaluation becomes
  ~``depth x gate-types`` fancy-indexed numpy ops instead of ~N Python
  iterations.
* ``packed`` (default) — the levelized schedule over *bit-packed*
  batches: net values are ``uint64`` words holding 64 samples each, so
  every gate op processes 64 stimuli per machine word and memory
  traffic drops 8x vs ``bool``.  Toggle statistics reduce straight
  from packed words via popcount (:func:`popcount_words`) without ever
  materializing the boolean matrix.

Simulating the 2^16 activation transitions of the paper's timing
characterization is therefore a few hundred word-wide array ops rather
than 65536 separate simulations or even ~1000 per-gate batch ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Union

import numpy as np

from repro.netlist.gates import (
    GateType,
    LevelSchedule,
    Netlist,
    PackedNetlist,
)
from repro.sim import compiled as _compiled

ArrayLike = Union[np.ndarray, int, bool]

#: Samples per machine word in the packed representation.
WORD_BITS = 64

#: Storage dtype of packed words: explicitly little-endian so the
#: byte-level pack/unpack layout is identical on every platform.
WORD_DTYPE = np.dtype("<u8")


def int_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Two's-complement bit decomposition, LSB first.

    Args:
        values: Integer array (any signed/unsigned dtype); negative values
            are encoded in two's complement within ``width`` bits.
        width: Number of bits.

    Returns:
        Boolean array of shape ``values.shape + (width,)``.
    """
    values = np.asarray(values)
    # One C pass through np.unpackbits on the little-endian byte view
    # instead of per-bit shift/mask over int64 temporaries (~3x less
    # memory traffic; the characterization feeds megabatch-sized buses
    # through here).
    unsigned = np.mod(values, 1 << width).astype("<i8")
    raw = unsigned.reshape(unsigned.shape + (1,)).view(np.uint8)
    return np.unpackbits(raw, axis=-1, count=width,
                         bitorder="little").view(bool)


def bits_to_int(bits: np.ndarray, signed: bool = True) -> np.ndarray:
    """Inverse of :func:`int_to_bits` (LSB-first bits on the last axis)."""
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[-1]
    weights = 1 << np.arange(width, dtype=np.int64)
    if signed:
        weights = weights.copy()
        weights[-1] = -weights[-1]
    return (bits * weights).sum(axis=-1)


# ----------------------------------------------------------------------
# bit packing
# ----------------------------------------------------------------------
def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean batch axis into ``uint64`` words, LSB first.

    Args:
        bits: Boolean array whose *last* axis is the sample axis.

    Returns:
        Array of :data:`WORD_DTYPE` words, last axis ``ceil(n / 64)``;
        sample ``i`` lives in bit ``i % 64`` of word ``i // 64``.  Tail
        bits beyond the batch are zero.
    """
    bits = np.ascontiguousarray(bits, dtype=bool)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = (-packed.shape[-1]) % (WORD_BITS // 8)
    if pad:
        pad_widths = [(0, 0)] * (packed.ndim - 1) + [(0, pad)]
        packed = np.pad(packed, pad_widths)
    return packed.view(WORD_DTYPE)


def unpack_bits(words: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first ``batch`` samples."""
    raw = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(raw, axis=-1, count=batch, bitorder="little")
    return bits.view(bool)


#: 8-bit popcount lookup table backing the portable fallback.
_POPCOUNT_TABLE = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)

#: Once-per-process capability decision shared by every popcount
#: reduction (row-wise and per-word): probed exactly once at import,
#: never inside a hot loop.  Worker processes re-probe on their own
#: import, so a heterogeneous pool still picks the right kernel per
#: interpreter.
_HAS_NATIVE_POPCOUNT: bool = hasattr(np, "bitwise_count")


def _popcount_lookup(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts via an 8-bit table (works on any numpy)."""
    raw = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT_TABLE[raw].sum(axis=-1, dtype=np.int64)


def _popcount_native(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts via ``np.bitwise_count`` (numpy >= 2.0)."""
    return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)


def _popcount_per_word_lookup(words: np.ndarray) -> np.ndarray:
    """Set bits of each individual word via the 8-bit table."""
    raw = np.ascontiguousarray(words).view(np.uint8)
    per_byte = _POPCOUNT_TABLE[raw].astype(np.int64)
    return per_byte.reshape(words.shape + (WORD_BITS // 8,)).sum(axis=-1)


def _popcount_per_word_native(words: np.ndarray) -> np.ndarray:
    """Set bits of each individual word via ``np.bitwise_count``."""
    return np.bitwise_count(words).astype(np.int64)


#: Active popcount reductions, selected once per process from the
#: cached capability probe above.  Tests monkeypatch these to cover
#: both implementations.
_popcount_impl: Callable[[np.ndarray], np.ndarray] = (
    _popcount_native if _HAS_NATIVE_POPCOUNT else _popcount_lookup
)
_popcount_per_word_impl: Callable[[np.ndarray], np.ndarray] = (
    _popcount_per_word_native if _HAS_NATIVE_POPCOUNT
    else _popcount_per_word_lookup
)


def popcount_words(words: np.ndarray,
                   batch: Optional[int] = None) -> np.ndarray:
    """Number of set bits per row, summed over the last (word) axis.

    Beware that evaluated words carry *arbitrary* values in the padding
    bits beyond the batch (inverting gates and CONST1 set them), so raw
    counts over :attr:`PackedValues.words` include that garbage.  Two
    safe ways to count:

    * XOR word matrices that computed the same function of identical
      padding (the paired toggle path) — the padding cancels;
    * pass ``batch`` for a single contiguously packed layout and the
      tail word is masked here first (do *not* pass it for the
      two-half ``pair_halves`` layout, whose tails sit mid-row).
    """
    if batch is not None:
        tail = batch % WORD_BITS
        if tail:
            words = words.copy()
            words[..., -1] &= np.uint64((1 << tail) - 1)
    return _popcount_impl(words)


def popcount_words_segmented(words: np.ndarray,
                             starts: np.ndarray) -> np.ndarray:
    """Per-segment set-bit counts along the last (word) axis.

    The segmented reduction of the weight-batched characterization
    path: one megabatch word matrix holds many contiguous per-weight
    segments, and the per-weight toggle counts fall out of a single
    per-word popcount followed by ``np.add.reduceat`` at the segment
    boundaries — no per-segment Python loop, no per-segment copies.

    Args:
        words: Packed word array; the last axis is the word axis.
        starts: Monotonically increasing segment start indices into the
            word axis (``starts[0]`` must be 0); segment ``k`` spans
            ``words[..., starts[k]:starts[k + 1]]``, the last one
            running to the end of the axis.

    Returns:
        ``int64`` counts of shape ``words.shape[:-1] + (len(starts),)``.

    The same padding caveat as :func:`popcount_words` applies: feed it
    XOR-cancelled toggle words (or otherwise padding-clean rows).
    """
    starts = np.asarray(starts, dtype=np.intp)
    per_word = _popcount_per_word_impl(words)
    return np.add.reduceat(per_word, starts, axis=-1)


@dataclass(frozen=True)
class PackedValues:
    """Bit-packed result of :func:`evaluate_words`.

    Attributes:
        words: ``(nets, n_words)`` packed values, :data:`WORD_DTYPE`.
        batch: Number of valid samples.
        half_batch: When set, the batch is two word-aligned halves of
            this many samples each (a stacked before/after pair): words
            ``[:W/2]`` hold samples ``[0, half_batch)`` and words
            ``[W/2:]`` hold samples ``[half_batch, batch)``.  The
            alignment is what lets toggle extraction XOR the halves
            word-for-word even when ``half_batch % 64 != 0``.
    """

    words: np.ndarray
    batch: int
    half_batch: Optional[int] = None

    def unpack(self) -> np.ndarray:
        """Boolean ``values[net, sample]`` matrix (drops padding)."""
        if self.half_batch is None:
            return unpack_bits(self.words, self.batch)
        half_words = self.words.shape[-1] // 2
        return np.concatenate(
            [unpack_bits(self.words[:, :half_words], self.half_batch),
             unpack_bits(self.words[:, half_words:],
                         self.batch - self.half_batch)],
            axis=-1,
        )

    def halves(self) -> "tuple[np.ndarray, np.ndarray]":
        """The (before, after) word matrices of a paired evaluation."""
        if self.half_batch is None:
            raise ValueError(
                "not a paired evaluation; call evaluate_words(..., "
                "pair_halves=True)")
        half_words = self.words.shape[-1] // 2
        return self.words[:, :half_words], self.words[:, half_words:]


@dataclass(frozen=True)
class BatchedPackedValues:
    """Bit-packed result of one :func:`evaluate_words_batched` launch.

    The megabatch stacks ``n_segments`` independent stimulus segments
    (one per characterized weight value, in the hot path) along the
    packed word axis, each laid out exactly as the matching standalone
    :func:`evaluate_words` call would lay it out:

    ``words[:, k * wps : (k + 1) * wps]`` — segment ``k``
    (``wps = words_per_segment``), itself split into word-aligned
    before/after halves when ``half_batch`` is set.

    Consumers reduce straight from the packed words through the
    per-segment *views* below — no dense per-net boolean matrix is ever
    materialized for toggle statistics.

    Attributes:
        words: ``(nets, n_segments * words_per_segment)`` packed values.
        n_segments: Number of stacked segments.
        batch: Valid samples *per segment*.
        half_batch: When set, each segment is a word-aligned stacked
            before/after pair of this many samples (see
            :class:`PackedValues`).
    """

    words: np.ndarray
    n_segments: int
    batch: int
    half_batch: Optional[int] = None

    @property
    def words_per_segment(self) -> int:
        return self.words.shape[-1] // self.n_segments

    def segment(self, k: int) -> PackedValues:
        """Zero-copy :class:`PackedValues` view of segment ``k``.

        Bit-for-bit identical (words, layout and all) to evaluating the
        segment's stimulus through a standalone :func:`evaluate_words`
        call — the equivalence the whole one-launch characterization
        path rests on.
        """
        if not 0 <= k < self.n_segments:
            raise IndexError(
                f"segment {k} out of range [0, {self.n_segments})")
        wps = self.words_per_segment
        return PackedValues(words=self.words[:, k * wps:(k + 1) * wps],
                            batch=self.batch, half_batch=self.half_batch)

    def paired_toggle_counts(self) -> np.ndarray:
        """Per-net toggle counts of every segment, shape
        ``(n_segments, nets)``.

        XORs each segment's word-aligned before/after halves (padding
        bits cancel: both halves compute the same function of identical
        padding) and reduces through the segmented popcount
        (:func:`popcount_words_segmented`) — one fused reduction over
        the whole megabatch.  Row ``k`` is C-contiguous and bit-for-bit
        equal to ``popcount_words(before ^ after)`` of the standalone
        per-segment evaluation.
        """
        if self.half_batch is None:
            raise ValueError(
                "not a paired evaluation; call evaluate_words_batched("
                "..., pair_halves=True)")
        wps = self.words_per_segment
        # The JIT executor fuses XOR + popcount + segment reduction in
        # one native loop (identical integer counts); fall through to
        # the segmented-popcount numpy reduction otherwise.
        fused = _compiled.segment_toggle_counts(
            self.words, self.n_segments, wps)
        if fused is not None:  # pragma: no cover - needs numba
            return fused
        view = self.words.reshape(self.words.shape[0], self.n_segments,
                                  2, wps // 2)
        xor = view[:, :, 0, :] ^ view[:, :, 1, :]
        counts = popcount_words_segmented(
            xor.reshape(xor.shape[0], -1),
            np.arange(self.n_segments, dtype=np.intp) * (wps // 2))
        return np.ascontiguousarray(counts.T)


# ----------------------------------------------------------------------
# shared input plumbing
# ----------------------------------------------------------------------
def _resolve_packed(netlist: Union[Netlist, PackedNetlist]) -> PackedNetlist:
    if isinstance(netlist, PackedNetlist):
        return netlist
    return netlist.packed()


def _infer_batch(inputs: Mapping[str, ArrayLike],
                 batch: Optional[int]) -> int:
    if batch is not None:
        return batch
    for value in inputs.values():
        arr = np.asarray(value)
        if arr.ndim > 0:
            return arr.shape[0]
    return 1


def _input_matrix(packed: PackedNetlist,
                  inputs: Mapping[str, ArrayLike],
                  batch: int) -> "tuple[np.ndarray, np.ndarray]":
    """``(input_nets, bits)`` with one broadcast boolean row per input."""
    names = packed.netlist.input_names
    missing = set(names) - set(inputs)
    if missing:
        raise ValueError(f"missing values for inputs: {sorted(missing)}")
    nets = np.fromiter(names.values(), dtype=np.int64, count=len(names))
    bits = np.empty((len(names), batch), dtype=bool)
    for row, name in enumerate(names):
        arr = np.asarray(inputs[name], dtype=bool)
        bits[row] = np.broadcast_to(arr, (batch,))
    return nets, bits


def _input_matrix_batched(packed: PackedNetlist,
                          inputs: Mapping[str, ArrayLike],
                          n_segments: int, batch: int
                          ) -> "tuple[np.ndarray, np.ndarray]":
    """``(input_nets, bits)`` with bits shaped ``(inputs, segs, batch)``.

    Each input value broadcasts against ``(n_segments, batch)``: a
    scalar fans out everywhere, a ``(batch,)`` row is shared by every
    segment, a ``(n_segments, 1)`` column freezes one value per segment
    (the weight bus of the characterization megabatch), and a full
    ``(n_segments, batch)`` matrix varies freely.
    """
    names = packed.netlist.input_names
    missing = set(names) - set(inputs)
    if missing:
        raise ValueError(f"missing values for inputs: {sorted(missing)}")
    nets = np.fromiter(names.values(), dtype=np.int64, count=len(names))
    bits = np.empty((len(names), n_segments, batch), dtype=bool)
    for row, name in enumerate(names):
        arr = np.asarray(inputs[name], dtype=bool)
        bits[row] = np.broadcast_to(arr, (n_segments, batch))
    return nets, bits


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def _run_schedule_bool(schedule: LevelSchedule,
                       values: np.ndarray) -> None:
    """Levelized evaluation over a boolean ``values`` matrix, in place."""
    for group in schedule.groups:
        gtype = group.gtype
        if gtype == GateType.INV:
            values[group.dst] = ~values[group.f0]
        elif gtype == GateType.BUF:
            values[group.dst] = values[group.f0]
        elif gtype == GateType.AND2:
            values[group.dst] = values[group.f0] & values[group.f1]
        elif gtype == GateType.OR2:
            values[group.dst] = values[group.f0] | values[group.f1]
        elif gtype == GateType.NAND2:
            values[group.dst] = ~(values[group.f0] & values[group.f1])
        elif gtype == GateType.NOR2:
            values[group.dst] = ~(values[group.f0] | values[group.f1])
        elif gtype == GateType.XOR2:
            values[group.dst] = values[group.f0] ^ values[group.f1]
        elif gtype == GateType.XNOR2:
            values[group.dst] = ~(values[group.f0] ^ values[group.f1])
        elif gtype == GateType.MUX2:
            values[group.dst] = np.where(
                values[group.f0], values[group.f2], values[group.f1])
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled gate type {gtype}")


def _run_schedule_words(schedule: LevelSchedule,
                        words: np.ndarray) -> None:
    """Levelized evaluation over packed ``uint64`` words, in place.

    Identical to :func:`_run_schedule_bool` with bitwise word ops;
    padding bits beyond the batch may take arbitrary values (they are
    dropped on unpack and cancel in paired toggle extraction, where
    both halves compute the same function of identical padding).
    """
    for group in schedule.groups:
        gtype = group.gtype
        if gtype == GateType.INV:
            words[group.dst] = ~words[group.f0]
        elif gtype == GateType.BUF:
            words[group.dst] = words[group.f0]
        elif gtype == GateType.AND2:
            words[group.dst] = words[group.f0] & words[group.f1]
        elif gtype == GateType.OR2:
            words[group.dst] = words[group.f0] | words[group.f1]
        elif gtype == GateType.NAND2:
            words[group.dst] = ~(words[group.f0] & words[group.f1])
        elif gtype == GateType.NOR2:
            words[group.dst] = ~(words[group.f0] | words[group.f1])
        elif gtype == GateType.XOR2:
            words[group.dst] = words[group.f0] ^ words[group.f1]
        elif gtype == GateType.XNOR2:
            words[group.dst] = ~(words[group.f0] ^ words[group.f1])
        elif gtype == GateType.MUX2:
            select = words[group.f0]
            words[group.dst] = ((words[group.f2] & select)
                                | (words[group.f1] & ~select))
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled gate type {gtype}")


def _run_words(packed: PackedNetlist, schedule: LevelSchedule,
               words: np.ndarray, kernel: str) -> None:
    """Run the selected word-domain kernel over ``words``, in place."""
    if kernel == "compiled":
        _compiled.run_program_words(packed.program, words)
    else:
        _run_schedule_words(schedule, words)


def _prepare_words(packed: PackedNetlist, n_words: int,
                   words_out: Optional[np.ndarray]) -> np.ndarray:
    """The word matrix a packed evaluation writes into.

    With ``words_out`` the caller's buffer is reused instead of
    allocating a fresh matrix (hot chunked loops pay one page fault per
    written page otherwise).  Every row is fully rewritten *except*
    constant-0 sources, which the fresh-zeros path got for free — so
    those rows are explicitly cleared here.
    """
    if words_out is None:
        return np.zeros((len(packed), n_words), dtype=WORD_DTYPE)
    if words_out.dtype != WORD_DTYPE \
            or words_out.shape != (len(packed), n_words) \
            or not words_out.flags.c_contiguous:
        raise ValueError(
            f"words_out must be a C-contiguous {WORD_DTYPE} array of "
            f"shape ({len(packed)}, {n_words})")
    schedule = packed.schedule
    if schedule.const0.size:
        words_out[schedule.const0] = 0
    return words_out


def evaluate_words(netlist: Union[Netlist, PackedNetlist],
                   inputs: Mapping[str, ArrayLike],
                   batch: Optional[int] = None,
                   pair_halves: bool = False,
                   kernel: Optional[str] = None,
                   words_out: Optional[np.ndarray] = None
                   ) -> PackedValues:
    """Evaluate every net over bit-packed batches; stay packed.

    The packed-domain twin of :func:`evaluate` for consumers that
    reduce values to statistics (toggle rates via popcount) and never
    need the boolean matrix.

    Args:
        netlist: The circuit (or its packed view).
        inputs: Mapping from primary-input name to a boolean batch
            array or a scalar (broadcast over the batch).
        batch: Batch size; inferred from the first array input when
            omitted.
        pair_halves: Treat the batch as a stacked before/after pair
            (``[before..., after...]``, even length) and pack each half
            word-aligned, so the halves can be XORed word-for-word (see
            :meth:`PackedValues.halves`).
        kernel: ``"compiled"`` (level-program executor, the default —
            see :mod:`repro.sim.compiled`) or ``"packed"`` (the group
            walk kept as oracle); ``None``/``"auto"`` defers to
            ``REPRO_SIM_KERNEL`` / config.  Bit-for-bit identical
            either way — the choice never enters cache keys.
        words_out: Optional preallocated C-contiguous word matrix of
            shape ``(nets, n_words)`` to evaluate into (reused across
            chunked launches); contents are overwritten and the
            returned values alias it.

    Returns:
        :class:`PackedValues` with one word row per net.
    """
    packed = _resolve_packed(netlist)
    kernel = _compiled.resolve_kernel(kernel)
    batch = _infer_batch(inputs, batch)
    input_nets, input_bits = _input_matrix(packed, inputs, batch)

    half_batch: Optional[int] = None
    if pair_halves:
        if batch % 2 != 0:
            raise ValueError(
                f"stacked batch of {batch} samples has no before/after "
                f"halves")
        half_batch = batch // 2
        packed_rows = np.concatenate(
            [pack_bits(input_bits[:, :half_batch]),
             pack_bits(input_bits[:, half_batch:])], axis=-1)
    else:
        packed_rows = pack_bits(input_bits)

    words = _prepare_words(packed, packed_rows.shape[-1], words_out)
    words[input_nets] = packed_rows
    schedule = packed.schedule
    if schedule.const1.size:
        words[schedule.const1] = ~np.uint64(0)
    _run_words(packed, schedule, words, kernel)
    return PackedValues(words=words, batch=batch, half_batch=half_batch)


def evaluate_words_batched(netlist: Union[Netlist, PackedNetlist],
                           inputs: Mapping[str, ArrayLike],
                           n_segments: Optional[int] = None,
                           batch: Optional[int] = None,
                           pair_halves: bool = False,
                           kernel: Optional[str] = None
                           ) -> BatchedPackedValues:
    """Evaluate many stimulus segments in **one** kernel launch.

    The one-launch characterization primitive: ``n_segments``
    independent stimulus segments (one per frozen weight value, in the
    hot path) are packed side by side along the word axis and the level
    schedule walks the whole megabatch once — amortizing the ~depth x
    gate-type numpy dispatch overhead of :func:`evaluate_words` across
    every segment instead of paying it per segment.  The layout is flat
    contiguous ``uint64`` words per segment, deliberately
    gather/scatter-friendly for a future compiled or GPU backend.

    Each segment's words are bit-for-bit identical to what a standalone
    :func:`evaluate_words` call on that segment's inputs would produce
    (word ops never mix words, so stacking segments cannot perturb
    results) — see :meth:`BatchedPackedValues.segment`.

    Args:
        netlist: The circuit (or its packed view).
        inputs: Mapping from primary-input name to anything
            broadcastable against ``(n_segments, batch)`` — scalars,
            shared ``(batch,)`` rows, per-segment ``(n_segments, 1)``
            columns, or full ``(n_segments, batch)`` matrices.
        n_segments: Number of segments; inferred from the first 2-D
            input when omitted.
        batch: Samples per segment; inferred alongside ``n_segments``.
        pair_halves: Treat every segment as a stacked before/after pair
            and pack each half word-aligned (the toggle-extraction
            layout; see :func:`evaluate_words`).
        kernel: Word kernel selection, as in :func:`evaluate_words`.

    Returns:
        :class:`BatchedPackedValues` over the whole megabatch.
    """
    packed = _resolve_packed(netlist)
    kernel = _compiled.resolve_kernel(kernel)
    if n_segments is None or batch is None:
        for value in inputs.values():
            arr = np.asarray(value)
            if arr.ndim >= 2:
                n_segments = n_segments or arr.shape[0]
                batch = batch or arr.shape[1]
                break
        else:
            raise ValueError(
                "pass n_segments/batch explicitly when no input is a "
                "(n_segments, batch) matrix")
    input_nets, input_bits = _input_matrix_batched(
        packed, inputs, n_segments, batch)

    half_batch: Optional[int] = None
    if pair_halves:
        if batch % 2 != 0:
            raise ValueError(
                f"stacked batch of {batch} samples has no before/after "
                f"halves")
        half_batch = batch // 2
        # (inputs, segs, batch) is C-contiguous, so splitting the last
        # axis into before/after halves is a plain reshape — each half
        # then packs word-aligned in segment-major order.
        packed_rows = pack_bits(
            input_bits.reshape(len(input_bits), 2 * n_segments,
                               half_batch))
    else:
        packed_rows = pack_bits(input_bits)
    packed_rows = packed_rows.reshape(len(input_bits), -1)

    words = np.zeros((len(packed), packed_rows.shape[-1]),
                     dtype=WORD_DTYPE)
    words[input_nets] = packed_rows
    schedule = packed.schedule
    if schedule.const1.size:
        words[schedule.const1] = ~np.uint64(0)
    _run_words(packed, schedule, words, kernel)
    return BatchedPackedValues(words=words, n_segments=n_segments,
                               batch=batch, half_batch=half_batch)


def evaluate(netlist: Union[Netlist, PackedNetlist],
             inputs: Mapping[str, ArrayLike],
             batch: Optional[int] = None,
             kernel: Optional[str] = None) -> np.ndarray:
    """Evaluate every net of ``netlist`` for a batch of input patterns.

    Args:
        netlist: The circuit (or its packed view).
        inputs: Mapping from primary-input name (``"act[3]"`` style) to a
            boolean batch array or a scalar (broadcast over the batch).
        batch: Batch size; inferred from the first array input when
            omitted.
        kernel: ``"compiled"``, ``"packed"``, ``"levelized"`` or
            ``"reference"`` — all bit-for-bit identical; the slower
            kernels exist as the testing oracle and for benchmarking.
            ``None``/``"auto"`` (default) resolves through
            ``REPRO_SIM_KERNEL`` / config (see
            :mod:`repro.sim.compiled`).

    Returns:
        Boolean matrix ``values[net, sample]`` holding the logic value of
        every net for every pattern.
    """
    packed = _resolve_packed(netlist)
    if kernel is None or kernel == "auto":
        kernel = _compiled.default_kernel()
    if kernel in ("packed", "compiled"):
        return evaluate_words(packed, inputs, batch,
                              kernel=kernel).unpack()
    if kernel == "levelized":
        batch = _infer_batch(inputs, batch)
        input_nets, input_bits = _input_matrix(packed, inputs, batch)
        values = np.zeros((len(packed), batch), dtype=bool)
        values[input_nets] = input_bits
        schedule = packed.schedule
        values[schedule.const1] = True
        _run_schedule_bool(schedule, values)
        return values
    if kernel == "reference":
        return _evaluate_reference(packed, inputs, batch)
    raise ValueError(f"unknown kernel {kernel!r}; choose from "
                     f"('compiled', 'packed', 'levelized', 'reference')")


def _evaluate_reference(packed: PackedNetlist,
                        inputs: Mapping[str, ArrayLike],
                        batch: Optional[int] = None) -> np.ndarray:
    """The original per-gate interpreted walk (executable spec)."""
    names = packed.netlist.input_names
    batch = _infer_batch(inputs, batch)

    missing = set(names) - set(inputs)
    if missing:
        raise ValueError(f"missing values for inputs: {sorted(missing)}")

    values = np.empty((len(packed), batch), dtype=bool)
    for name, net in names.items():
        arr = np.asarray(inputs[name], dtype=bool)
        values[net] = np.broadcast_to(arr, (batch,))

    types = packed.types
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    for net in range(len(packed)):
        gtype = types[net]
        if gtype == GateType.INPUT:
            continue
        if gtype == GateType.CONST0:
            values[net] = False
        elif gtype == GateType.CONST1:
            values[net] = True
        elif gtype == GateType.INV:
            np.logical_not(values[f0[net]], out=values[net])
        elif gtype == GateType.BUF:
            values[net] = values[f0[net]]
        elif gtype == GateType.AND2:
            np.logical_and(values[f0[net]], values[f1[net]],
                           out=values[net])
        elif gtype == GateType.OR2:
            np.logical_or(values[f0[net]], values[f1[net]],
                          out=values[net])
        elif gtype == GateType.NAND2:
            np.logical_and(values[f0[net]], values[f1[net]],
                           out=values[net])
            np.logical_not(values[net], out=values[net])
        elif gtype == GateType.NOR2:
            np.logical_or(values[f0[net]], values[f1[net]],
                          out=values[net])
            np.logical_not(values[net], out=values[net])
        elif gtype == GateType.XOR2:
            np.logical_xor(values[f0[net]], values[f1[net]],
                           out=values[net])
        elif gtype == GateType.XNOR2:
            np.logical_xor(values[f0[net]], values[f1[net]],
                           out=values[net])
            np.logical_not(values[net], out=values[net])
        elif gtype == GateType.MUX2:
            # Write through the preallocated row instead of allocating a
            # fresh np.where result: default to fanin1, overwrite the
            # selected samples with fanin2.
            out = values[net]
            np.copyto(out, values[f1[net]])
            np.copyto(out, values[f2[net]], where=values[f0[net]])
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled gate type {gtype}")
    return values


def read_output_bus(netlist: Union[Netlist, PackedNetlist],
                    values: Union[np.ndarray, PackedValues],
                    prefix: str, width: int,
                    signed: bool = True) -> np.ndarray:
    """Decode an output bus from an :func:`evaluate` result to integers.

    Accepts either the boolean matrix of :func:`evaluate` or the
    :class:`PackedValues` of :func:`evaluate_words`.
    """
    packed = _resolve_packed(netlist)
    nets = packed.netlist.output_bus(prefix, width)
    if isinstance(values, PackedValues):
        # Slice the word rows down to the bus *before* unpacking, so a
        # wide-batch result never materializes the full boolean matrix.
        bits = PackedValues(words=values.words[nets],
                            batch=values.batch,
                            half_batch=values.half_batch).unpack()
    else:
        bits = values[nets]
    return bits_to_int(bits.T, signed=signed)


def bus_inputs(prefix: str, values: np.ndarray, width: int
               ) -> Dict[str, np.ndarray]:
    """Expand integers into per-wire input assignments for ``evaluate``.

    Example:
        >>> feed = bus_inputs("act", np.array([3, -1]), 8)
        >>> sorted(feed)[:2]
        ['act[0]', 'act[1]']
    """
    bits = int_to_bits(np.asarray(values), width)
    return {f"{prefix}[{i}]": bits[..., i] for i in range(width)}
