"""Batched Boolean evaluation of gate-level netlists.

The evaluator walks the (topologically ordered) node list once and applies
each gate's function to whole numpy batches, so simulating the 2^16
activation transitions of the paper's timing characterization is a single
pass over ~1000 gates rather than 65536 separate simulations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.netlist.gates import GateType, Netlist, PackedNetlist

ArrayLike = Union[np.ndarray, int, bool]


def int_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Two's-complement bit decomposition, LSB first.

    Args:
        values: Integer array (any signed/unsigned dtype); negative values
            are encoded in two's complement within ``width`` bits.
        width: Number of bits.

    Returns:
        Boolean array of shape ``values.shape + (width,)``.
    """
    values = np.asarray(values)
    unsigned = np.mod(values, 1 << width).astype(np.int64)
    shifts = np.arange(width, dtype=np.int64)
    return ((unsigned[..., None] >> shifts) & 1).astype(bool)


def bits_to_int(bits: np.ndarray, signed: bool = True) -> np.ndarray:
    """Inverse of :func:`int_to_bits` (LSB-first bits on the last axis)."""
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[-1]
    weights = 1 << np.arange(width, dtype=np.int64)
    if signed:
        weights = weights.copy()
        weights[-1] = -weights[-1]
    return (bits * weights).sum(axis=-1)


def _resolve_packed(netlist: Union[Netlist, PackedNetlist]) -> PackedNetlist:
    if isinstance(netlist, PackedNetlist):
        return netlist
    return netlist.packed()


def evaluate(netlist: Union[Netlist, PackedNetlist],
             inputs: Mapping[str, ArrayLike],
             batch: Optional[int] = None) -> np.ndarray:
    """Evaluate every net of ``netlist`` for a batch of input patterns.

    Args:
        netlist: The circuit (or its packed view).
        inputs: Mapping from primary-input name (``"act[3]"`` style) to a
            boolean batch array or a scalar (broadcast over the batch).
        batch: Batch size; inferred from the first array input when
            omitted.

    Returns:
        Boolean matrix ``values[net, sample]`` holding the logic value of
        every net for every pattern.
    """
    packed = _resolve_packed(netlist)
    names = packed.netlist.input_names

    if batch is None:
        for value in inputs.values():
            arr = np.asarray(value)
            if arr.ndim > 0:
                batch = arr.shape[0]
                break
        else:
            batch = 1

    missing = set(names) - set(inputs)
    if missing:
        raise ValueError(f"missing values for inputs: {sorted(missing)}")

    values = np.empty((len(packed), batch), dtype=bool)
    for name, net in names.items():
        arr = np.asarray(inputs[name], dtype=bool)
        values[net] = np.broadcast_to(arr, (batch,))

    types = packed.types
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    for net in range(len(packed)):
        gtype = types[net]
        if gtype == GateType.INPUT:
            continue
        if gtype == GateType.CONST0:
            values[net] = False
        elif gtype == GateType.CONST1:
            values[net] = True
        elif gtype == GateType.INV:
            np.logical_not(values[f0[net]], out=values[net])
        elif gtype == GateType.BUF:
            values[net] = values[f0[net]]
        elif gtype == GateType.AND2:
            np.logical_and(values[f0[net]], values[f1[net]],
                           out=values[net])
        elif gtype == GateType.OR2:
            np.logical_or(values[f0[net]], values[f1[net]],
                          out=values[net])
        elif gtype == GateType.NAND2:
            np.logical_and(values[f0[net]], values[f1[net]],
                           out=values[net])
            np.logical_not(values[net], out=values[net])
        elif gtype == GateType.NOR2:
            np.logical_or(values[f0[net]], values[f1[net]],
                          out=values[net])
            np.logical_not(values[net], out=values[net])
        elif gtype == GateType.XOR2:
            np.logical_xor(values[f0[net]], values[f1[net]],
                           out=values[net])
        elif gtype == GateType.XNOR2:
            np.logical_xor(values[f0[net]], values[f1[net]],
                           out=values[net])
            np.logical_not(values[net], out=values[net])
        elif gtype == GateType.MUX2:
            # Write through the preallocated row instead of allocating a
            # fresh np.where result: default to fanin1, overwrite the
            # selected samples with fanin2.
            out = values[net]
            np.copyto(out, values[f1[net]])
            np.copyto(out, values[f2[net]], where=values[f0[net]])
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled gate type {gtype}")
    return values


def read_output_bus(netlist: Union[Netlist, PackedNetlist],
                    values: np.ndarray, prefix: str, width: int,
                    signed: bool = True) -> np.ndarray:
    """Decode an output bus from an :func:`evaluate` result to integers."""
    packed = _resolve_packed(netlist)
    nets = packed.netlist.output_bus(prefix, width)
    bits = values[nets].T  # (batch, width)
    return bits_to_int(bits, signed=signed)


def bus_inputs(prefix: str, values: np.ndarray, width: int
               ) -> Dict[str, np.ndarray]:
    """Expand integers into per-wire input assignments for ``evaluate``.

    Example:
        >>> feed = bus_inputs("act", np.array([3, -1]), 8)
        >>> sorted(feed)[:2]
        ['act[0]', 'act[1]']
    """
    bits = int_to_bits(np.asarray(values), width)
    return {f"{prefix}[{i}]": bits[..., i] for i in range(width)}
