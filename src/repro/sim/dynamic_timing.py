"""Dynamic timing analysis: per-transition arrival-time propagation.

For a two-pattern input transition, a net carries a *switching event* when
its logic value differs between the two patterns.  The event's arrival
time is the gate delay plus the latest arrival among the fanins that
switched — exactly the path-sensitization view of Modelsim-style dynamic
simulation the paper uses to time the multiplier per weight value
(Sec. III-B, Fig. 5).  Nets that do not switch have no event and therefore
do not constrain timing.

Everything is vectorized over the batch of transitions, so the full 2^16
activation-transition enumeration for one weight value is a single pass.
"""

from __future__ import annotations

from typing import Mapping, Tuple, Union

import numpy as np

from repro.netlist.gates import GateType, Netlist, PackedNetlist
from repro.sim.logic import evaluate


def _packed(netlist: Union[Netlist, PackedNetlist]) -> PackedNetlist:
    return netlist if isinstance(netlist, PackedNetlist) else netlist.packed()


def dynamic_arrival_times(netlist: Union[Netlist, PackedNetlist], library,
                          inputs_before: Mapping[str, np.ndarray],
                          inputs_after: Mapping[str, np.ndarray],
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Arrival time of the switching event on every net, per transition.

    Args:
        netlist: Circuit to analyze.
        library: Cell library supplying gate delays.
        inputs_before: Input assignment before the transition.
        inputs_after: Input assignment after the transition.

    Returns:
        ``(arrivals, toggled)`` where ``arrivals[net, sample]`` is the
        event arrival time in ps (0 for non-switching nets) and
        ``toggled[net, sample]`` flags whether the net switched at all.
    """
    packed = _packed(netlist)
    before = evaluate(packed, inputs_before)
    after = evaluate(packed, inputs_after)
    toggled = before != after
    delays = packed.gate_delays(library)

    batch = before.shape[1]
    arrivals = np.zeros((len(packed), batch), dtype=np.float64)
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    types = packed.types
    for net in range(len(packed)):
        if types[net] in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        latest = np.zeros(batch, dtype=np.float64)
        for fanin in (f0[net], f1[net], f2[net]):
            if fanin >= 0:
                np.maximum(latest, arrivals[fanin], out=latest)
        # Only nets that actually switch carry an event; their event
        # lags the latest switching fanin by the gate delay.
        arrivals[net] = np.where(toggled[net], latest + delays[net], 0.0)
    return arrivals, toggled


def dynamic_delays(netlist: Union[Netlist, PackedNetlist], library,
                   inputs_before: Mapping[str, np.ndarray],
                   inputs_after: Mapping[str, np.ndarray]) -> np.ndarray:
    """Per-transition sensitized delay to the primary outputs.

    The delay of a transition is the latest switching event observed on
    any primary output; transitions that leave all outputs stable have
    delay 0.
    """
    packed = _packed(netlist)
    arrivals, __ = dynamic_arrival_times(packed, library, inputs_before,
                                         inputs_after)
    outputs = list(packed.netlist.output_names.values())
    if not outputs:
        raise ValueError("netlist has no outputs to time")
    return arrivals[outputs].max(axis=0)


def output_bus_arrivals(netlist: Union[Netlist, PackedNetlist],
                        arrivals: np.ndarray, prefix: str,
                        width: int) -> np.ndarray:
    """Arrival times of a named output bus, shape ``(width, batch)``."""
    packed = _packed(netlist)
    nets = packed.netlist.output_bus(prefix, width)
    return arrivals[nets]
