"""Dynamic timing analysis: per-transition arrival-time propagation.

For a two-pattern input transition, a net carries a *switching event* when
its logic value differs between the two patterns.  The event's arrival
time is the gate delay plus the latest arrival among the fanins that
switched — exactly the path-sensitization view of Modelsim-style dynamic
simulation the paper uses to time the multiplier per weight value
(Sec. III-B, Fig. 5).  Nets that do not switch have no event and therefore
do not constrain timing.

Everything is vectorized over the batch of transitions, and the engine
leans on the same kernel machinery as :mod:`repro.sim.logic`:

* the before/after patterns are evaluated as **one** stacked, bit-packed
  pass over the netlist (half the passes of the naive two-evaluation
  approach), and the toggle matrix falls out of a word-wise XOR of the
  two halves;
* arrival times cannot be bit-packed (they are floats), but the per-net
  + per-fanin Python loops fuse into per-level vectorized max-reductions
  over the :class:`~repro.netlist.gates.LevelSchedule` — ~depth x
  gate-type batched ops instead of ~N x fanin Python iterations.

The result is bit-for-bit identical to the reference walk (kept below as
:func:`dynamic_arrival_times_reference`): float max is exact and
associative, and the adds happen in the same order per net.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple, Union

import numpy as np

from repro.netlist.gates import GateType, Netlist, PackedNetlist
from repro.sim import compiled as _compiled
from repro.sim.logic import (
    _infer_batch,
    evaluate,
    evaluate_words,
    unpack_bits,
)

#: Streaming-DTA window of the numpy fallback, in samples.  Must be a
#: multiple of 64 so every window boundary is word-aligned in the
#: packed XOR matrix.  2048 samples keeps the per-window arrival slab
#: of a MAC-sized netlist (~1k nets x 2k float64 ~= 16 MB) inside the
#: cache-friendly range while amortizing the per-window level walk.
STREAM_WINDOW_SAMPLES = 2048


def _packed(netlist: Union[Netlist, PackedNetlist]) -> PackedNetlist:
    return netlist if isinstance(netlist, PackedNetlist) else netlist.packed()


def _stacked_inputs(packed: PackedNetlist,
                    inputs_before: Mapping[str, np.ndarray],
                    inputs_after: Mapping[str, np.ndarray],
                    ) -> Tuple[Mapping[str, np.ndarray], int]:
    """One ``[before..., after...]`` feed from the two assignments."""
    names = packed.netlist.input_names
    missing = (set(names) - set(inputs_before)) \
        | (set(names) - set(inputs_after))
    if missing:
        raise ValueError(f"missing values for inputs: {sorted(missing)}")
    batch = _infer_batch(inputs_before, None)
    if batch == 1:
        batch = _infer_batch(inputs_after, None)
    stacked = {}
    for name in names:
        before = np.broadcast_to(
            np.asarray(inputs_before[name], dtype=bool), (batch,))
        after = np.broadcast_to(
            np.asarray(inputs_after[name], dtype=bool), (batch,))
        stacked[name] = np.concatenate([before, after])
    return stacked, batch


def dynamic_arrival_times(netlist: Union[Netlist, PackedNetlist], library,
                          inputs_before: Mapping[str, np.ndarray],
                          inputs_after: Mapping[str, np.ndarray],
                          out: Optional[np.ndarray] = None,
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Arrival time of the switching event on every net, per transition.

    Args:
        netlist: Circuit to analyze.
        library: Cell library supplying gate delays.
        inputs_before: Input assignment before the transition.
        inputs_after: Input assignment after the transition.
        out: Optional preallocated C-contiguous ``float64`` array of
            shape ``(nets, batch)`` receiving the arrival times.  A
            fresh matrix of this size costs one page fault per written
            page; callers timing many same-sized batches (the
            per-weight characterization walks hundreds) should reuse
            one buffer.  Contents are overwritten; the returned
            ``arrivals`` *is* ``out``.

    Returns:
        ``(arrivals, toggled)`` where ``arrivals[net, sample]`` is the
        event arrival time in ps (0 for non-switching nets) and
        ``toggled[net, sample]`` flags whether the net switched at all.
    """
    packed = _packed(netlist)
    stacked, batch = _stacked_inputs(packed, inputs_before, inputs_after)
    values = evaluate_words(packed, stacked, batch=2 * batch,
                            pair_halves=True)
    before_words, after_words = values.halves()
    toggled = unpack_bits(before_words ^ after_words, batch)
    delays = packed.gate_delays(library)

    if out is None:
        arrivals = np.zeros((len(packed), batch), dtype=np.float64)
    else:
        if out.shape != (len(packed), batch) \
                or out.dtype != np.float64 \
                or not out.flags.c_contiguous:
            raise ValueError(
                f"out must be a C-contiguous float64 array of shape "
                f"({len(packed)}, {batch})")
        arrivals = out
        # Gate rows are fully overwritten by their group's scatter;
        # only source rows (never scheduled) must be cleared.
        arrivals[packed.schedule.levels == 0] = 0.0
    for group in packed.schedule.fanin_groups:
        # Latest switching-fanin arrival, fused across the whole group:
        # gather each fanin's arrival rows and max-reduce in place.
        latest = arrivals[group.f0]
        if group.n_fanins >= 2:
            np.maximum(latest, arrivals[group.f1], out=latest)
        if group.n_fanins >= 3:
            np.maximum(latest, arrivals[group.f2], out=latest)
        latest += delays[group.dst][:, None]
        # Only nets that actually switch carry an event; their event
        # lags the latest switching fanin by the gate delay.  The
        # boolean mask-multiply is bit-identical to
        # ``np.where(toggled, latest, 0.0)`` — arrivals are finite and
        # non-negative, so ``x * True == x`` and ``x * False == 0.0``
        # exactly — and avoids np.where's much slower select pass.
        latest *= toggled[group.dst]
        arrivals[group.dst] = latest
    return arrivals, toggled


def _propagate_window(packed: PackedNetlist, delays: np.ndarray,
                      arrivals: np.ndarray,
                      toggled: np.ndarray) -> None:
    """One levelized arrival propagation over a sample window.

    Identical op sequence per sample column as
    :func:`dynamic_arrival_times` — sample columns are independent, so
    windowing the batch cannot perturb any value.
    """
    for group in packed.schedule.fanin_groups:
        latest = arrivals[group.f0]
        if group.n_fanins >= 2:
            np.maximum(latest, arrivals[group.f1], out=latest)
        if group.n_fanins >= 3:
            np.maximum(latest, arrivals[group.f2], out=latest)
        latest += delays[group.dst][:, None]
        latest *= toggled[group.dst]
        arrivals[group.dst] = latest


def dynamic_bus_arrivals(netlist: Union[Netlist, PackedNetlist], library,
                         inputs_before: Mapping[str, np.ndarray],
                         inputs_after: Mapping[str, np.ndarray],
                         nets: np.ndarray,
                         window: Optional[int] = None,
                         kernel: Optional[str] = None,
                         words_out: Optional[np.ndarray] = None,
                         arrivals_out: Optional[np.ndarray] = None,
                         ) -> np.ndarray:
    """Streaming DTA: arrival times of ``nets`` only.

    The dense ``(nets, batch)`` arrival matrix of
    :func:`dynamic_arrival_times` is written once and read only at the
    output bus in the hot characterization path.  This entry point
    propagates arrivals level by level but *retains* only the requested
    rows (product bits / output bus), streaming the batch:

    * JIT executor active — one native pass per launch that walks the
      level program sample by sample, reading toggle bits straight from
      the packed XOR words and keeping a single per-net arrival vector
      live (the dense matrix never exists);
    * numpy fallback — the levelized propagation of
      :func:`dynamic_arrival_times` over ``window``-sample slabs of a
      reused ``(all_nets, window)`` buffer, copying out the requested
      rows per slab.

    Both are bit-for-bit identical to the dense engine: max is exact,
    the per-net op order is unchanged, and sample columns are
    independent.

    Args:
        netlist: Circuit to analyze.
        library: Cell library supplying gate delays.
        inputs_before / inputs_after: The transition's two assignments.
        nets: Net indices whose arrival rows to return.
        window: Fallback slab width in samples (multiple of 64);
            defaults to :data:`STREAM_WINDOW_SAMPLES`.
        kernel: Word-kernel selection for the value evaluation (see
            :func:`repro.sim.logic.evaluate_words`); forcing
            ``"packed"`` also forces the windowed fallback walk, giving
            an all-oracle path.
        words_out: Optional reusable word matrix for the stacked value
            evaluation (see :func:`evaluate_words`).
        arrivals_out: Optional reusable C-contiguous ``float64`` buffer
            of shape ``(all_nets, min(window, batch))`` for the
            fallback propagation.  Ignored by the JIT path.

    Returns:
        ``float64`` arrivals of shape ``(len(nets), batch)`` — equal to
        ``dynamic_arrival_times(...)[0][nets]``.
    """
    packed = _packed(netlist)
    kernel = _compiled.resolve_kernel(kernel)
    stacked, batch = _stacked_inputs(packed, inputs_before, inputs_after)
    values = evaluate_words(packed, stacked, batch=2 * batch,
                            pair_halves=True, kernel=kernel,
                            words_out=words_out)
    before_words, after_words = values.halves()
    xor_words = before_words ^ after_words
    delays = packed.gate_delays(library)
    nets = np.ascontiguousarray(nets, dtype=np.int64)
    out = np.empty((nets.size, batch), dtype=np.float64)

    if kernel == "compiled" and _compiled.stream_bus_arrivals(
            packed.program, delays, xor_words, nets, out):
        return out  # pragma: no cover - needs numba

    if window is None:
        window = STREAM_WINDOW_SAMPLES
    if window <= 0 or window % 64:
        raise ValueError(
            f"window must be a positive multiple of 64, got {window}")
    slab = min(window, batch)
    if arrivals_out is None:
        arrivals = np.zeros((len(packed), slab), dtype=np.float64)
    else:
        if arrivals_out.shape != (len(packed), slab) \
                or arrivals_out.dtype != np.float64 \
                or not arrivals_out.flags.c_contiguous:
            raise ValueError(
                f"arrivals_out must be a C-contiguous float64 array of "
                f"shape ({len(packed)}, {slab})")
        arrivals = arrivals_out
        # Source rows are never scheduled; clear them once so a dirty
        # buffer cannot leak into the propagation (gate rows are fully
        # overwritten per slab).
        arrivals[packed.schedule.levels == 0] = 0.0

    for start in range(0, batch, window):
        stop = min(start + window, batch)
        n = stop - start
        # Window starts are word-aligned (window % 64 == 0), so the
        # toggle slab unpacks straight from the XOR word columns.
        toggled = unpack_bits(
            xor_words[:, start // 64:(stop + 63) // 64], n)
        slab_view = arrivals[:, :n]
        _propagate_window(packed, delays, slab_view, toggled)
        out[:, start:stop] = slab_view[nets]
    return out


def dynamic_arrival_times_reference(
        netlist: Union[Netlist, PackedNetlist], library,
        inputs_before: Mapping[str, np.ndarray],
        inputs_after: Mapping[str, np.ndarray],
        ) -> Tuple[np.ndarray, np.ndarray]:
    """The original two-pass, per-net walk (executable specification).

    Kept as the oracle the fused levelized engine is property-tested
    against, and as the "legacy" side of the kernel benchmark.
    """
    packed = _packed(netlist)
    before = evaluate(packed, inputs_before, kernel="reference")
    after = evaluate(packed, inputs_after, kernel="reference")
    toggled = before != after
    delays = packed.gate_delays(library)

    batch = before.shape[1]
    arrivals = np.zeros((len(packed), batch), dtype=np.float64)
    f0, f1, f2 = packed.fanin0, packed.fanin1, packed.fanin2
    types = packed.types
    for net in range(len(packed)):
        if types[net] in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        latest = np.zeros(batch, dtype=np.float64)
        for fanin in (f0[net], f1[net], f2[net]):
            if fanin >= 0:
                np.maximum(latest, arrivals[fanin], out=latest)
        arrivals[net] = np.where(toggled[net], latest + delays[net], 0.0)
    return arrivals, toggled


def dynamic_delays(netlist: Union[Netlist, PackedNetlist], library,
                   inputs_before: Mapping[str, np.ndarray],
                   inputs_after: Mapping[str, np.ndarray]) -> np.ndarray:
    """Per-transition sensitized delay to the primary outputs.

    The delay of a transition is the latest switching event observed on
    any primary output; transitions that leave all outputs stable have
    delay 0.
    """
    packed = _packed(netlist)
    arrivals, __ = dynamic_arrival_times(packed, library, inputs_before,
                                         inputs_after)
    outputs = list(packed.netlist.output_names.values())
    if not outputs:
        raise ValueError("netlist has no outputs to time")
    return arrivals[outputs].max(axis=0)


def output_bus_arrivals(netlist: Union[Netlist, PackedNetlist],
                        arrivals: np.ndarray, prefix: str,
                        width: int) -> np.ndarray:
    """Arrival times of a named output bus, shape ``(width, batch)``."""
    packed = _packed(netlist)
    nets = packed.netlist.output_bus(prefix, width)
    return arrivals[nets]
