"""Synthetic image datasets standing in for CIFAR-10/100 and ImageNet.

No network access is available, so the real datasets are replaced by
procedurally generated, class-structured images (documented substitution;
see DESIGN.md).  PowerPruning consumes transition statistics and accuracy
*deltas* under weight/activation restriction, both of which a learnable
synthetic task exercises.
"""

from repro.data.synthetic import SyntheticImageDataset
from repro.data.datasets import (
    cifar10_like,
    cifar100_like,
    imagenet_like,
    load_dataset,
)

__all__ = [
    "SyntheticImageDataset",
    "cifar10_like",
    "cifar100_like",
    "imagenet_like",
    "load_dataset",
]
