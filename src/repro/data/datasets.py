"""Named dataset builders mirroring the paper's benchmarks."""

from __future__ import annotations

from repro.data.synthetic import SyntheticImageDataset, generate


def cifar10_like(n_train: int = 2000, n_test: int = 500,
                 hw: int = 32, seed: int = 0) -> SyntheticImageDataset:
    """10-class, 32x32x3 stand-in for CIFAR-10."""
    return generate("cifar10-like", num_classes=10, n_train=n_train,
                    n_test=n_test, hw=hw, seed=seed)


def cifar100_like(n_train: int = 4000, n_test: int = 1000,
                  hw: int = 32, num_classes: int = 100,
                  seed: int = 1) -> SyntheticImageDataset:
    """100-class, 32x32x3 stand-in for CIFAR-100.

    The class count can be reduced for CI-scale runs (the paper-scale
    configuration keeps all 100).
    """
    return generate("cifar100-like", num_classes=num_classes,
                    n_train=n_train, n_test=n_test, hw=hw, noise=1.5,
                    seed=seed)


def imagenet_like(n_train: int = 4000, n_test: int = 1000, hw: int = 32,
                  num_classes: int = 50,
                  seed: int = 2) -> SyntheticImageDataset:
    """Reduced-resolution, reduced-class stand-in for ImageNet.

    Full 224x224x1000-class training is far outside an offline CPU
    budget; the substitution keeps what the experiments consume — a
    harder, many-class task feeding EfficientNet-B0-Lite — at a
    configurable scale (documented in DESIGN.md).
    """
    return generate("imagenet-like", num_classes=num_classes,
                    n_train=n_train, n_test=n_test, hw=hw, noise=1.5,
                    max_shift=3, seed=seed)


_BUILDERS = {
    "cifar10": cifar10_like,
    "cifar100": cifar100_like,
    "imagenet": imagenet_like,
}


def load_dataset(name: str, **kwargs) -> SyntheticImageDataset:
    """Build a dataset by paper name (``cifar10``/``cifar100``/
    ``imagenet``)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return builder(**kwargs)
