"""Procedural class-structured image generation.

Each class owns a smooth random template (low-pass filtered Gaussian
noise); samples are jittered, shifted, contrast-varied noisy copies.  The
task difficulty is controlled by the noise level and shift range: with
the defaults, small CNNs reach high-but-not-perfect accuracy after a few
epochs — qualitatively matching the CIFAR-style accuracy regime the paper
operates in, and leaving headroom for restriction-induced accuracy drops
to be visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np
from scipy import ndimage


@dataclass
class SyntheticImageDataset:
    """A generated train/test split of class-structured images.

    Attributes:
        name: Dataset name (e.g. ``"cifar10-like"``).
        x_train / y_train / x_test / y_test: NCHW float images in
            [-1, 1] and integer labels.
        num_classes: Number of classes.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.x_train.shape[1:]

    def __repr__(self) -> str:
        return (f"SyntheticImageDataset({self.name}, "
                f"train={self.x_train.shape[0]}, "
                f"test={self.x_test.shape[0]}, "
                f"classes={self.num_classes})")


def _class_templates(num_classes: int, modes: int, channels: int,
                     hw: int, rng: np.random.Generator,
                     smoothness: float) -> np.ndarray:
    """Smooth random fields: ``modes`` sub-templates per class.

    Multi-modal classes keep the task honest for strong models (a single
    prototype per class is linearly separable and even a pruned ResNet
    saturates on it).
    """
    templates = rng.normal(
        0.0, 1.0, (num_classes, modes, channels, hw, hw))
    for i in range(num_classes):
        for m in range(modes):
            for c in range(channels):
                templates[i, m, c] = ndimage.gaussian_filter(
                    templates[i, m, c], sigma=smoothness)
    flat = templates.reshape(num_classes * modes, -1)
    flat /= np.linalg.norm(flat, axis=1, keepdims=True) + 1e-12
    return (flat.reshape(templates.shape)
            * np.sqrt(channels * hw * hw)).astype(np.float32)


def _render_split(templates: np.ndarray, labels: np.ndarray,
                  rng: np.random.Generator, noise: float,
                  max_shift: int) -> np.ndarray:
    """Noisy, shifted, contrast-jittered instances of the templates."""
    n = labels.size
    __, modes, channels, hw, _hw = templates.shape
    chosen_modes = rng.integers(0, modes, n)
    images = templates[labels, chosen_modes].copy()
    contrast = rng.uniform(0.7, 1.3, (n, 1, 1, 1)).astype(np.float32)
    images *= contrast
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, (n, 2))
        for i in range(n):
            images[i] = np.roll(images[i], tuple(shifts[i]), axis=(1, 2))
    images += rng.normal(0.0, noise, images.shape).astype(np.float32)
    peak = np.abs(images).max() + 1e-12
    return (images / peak).astype(np.float32)


def generate(name: str, num_classes: int, n_train: int, n_test: int,
             hw: int = 32, channels: int = 3, noise: float = 2.0,
             max_shift: int = 3, smoothness: float = 3.0,
             modes_per_class: int = 3,
             seed: int = 0) -> SyntheticImageDataset:
    """Generate a full dataset.

    Args:
        name: Dataset name for reporting.
        num_classes: Number of classes.
        n_train / n_test: Split sizes (balanced across classes).
        hw: Image height/width.
        channels: Image channels.
        noise: Additive Gaussian noise level (task difficulty).
        max_shift: Random circular shift range in pixels.
        smoothness: Template low-pass sigma.
        modes_per_class: Sub-templates per class (class multimodality;
            raises difficulty for high-capacity models).
        seed: Generation seed.
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    if n_train < num_classes or n_test < num_classes:
        raise ValueError("need at least one sample per class per split")
    if modes_per_class < 1:
        raise ValueError("need at least one mode per class")
    rng = np.random.default_rng(seed)
    templates = _class_templates(num_classes, modes_per_class, channels,
                                 hw, rng, smoothness)
    y_train = np.tile(np.arange(num_classes),
                      n_train // num_classes + 1)[:n_train]
    y_test = np.tile(np.arange(num_classes),
                     n_test // num_classes + 1)[:n_test]
    rng.shuffle(y_train)
    rng.shuffle(y_test)
    x_train = _render_split(templates, y_train, rng, noise, max_shift)
    x_test = _render_split(templates, y_test, rng, noise, max_shift)
    return SyntheticImageDataset(
        name=name,
        x_train=x_train, y_train=y_train.astype(np.int64),
        x_test=x_test, y_test=y_test.astype(np.int64),
        num_classes=num_classes,
    )
