"""Transition statistics from systolic-array operand streams.

The paper measures (Sec. III-A1/2, Fig. 4) the distribution of activation
transitions and — after binning — partial-sum transitions while the array
executes real workloads.  The collector accumulates both from the streams
the functional simulation produces: per-PE-row activation sequences and
per-PE partial-sum sequences.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.power.binning import BinnedTransitions, PartialSumBinner
from repro.power.transitions import TransitionDistribution, value_to_code


class TransitionStatsCollector:
    """Accumulates operand-transition statistics across layers/tiles.

    Args:
        act_bits: Activation width (8 -> 256 codes).
        psum_bits: Partial-sum width.
        max_psum_samples: Cap on stored partial-sum stream samples; the
            22-bit space cannot be covered anyway (the motivation for
            binning), so a representative reservoir is kept.
        seed: RNG seed for reservoir subsampling.
    """

    def __init__(self, act_bits: int = 8, psum_bits: int = 22,
                 max_psum_samples: int = 500000, seed: int = 0) -> None:
        self.act_bits = act_bits
        self.psum_bits = psum_bits
        n_codes = 1 << act_bits
        self._act_counts = np.zeros((n_codes, n_codes), dtype=np.int64)
        self._psum_pairs: list = []
        self._psum_stored = 0
        self.max_psum_samples = max_psum_samples
        self._rng = np.random.default_rng(seed)
        self.n_act_transitions = 0
        self.n_psum_transitions = 0

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add_activation_streams(self, streams: np.ndarray) -> None:
        """Count transitions of per-row activation streams.

        Args:
            streams: ``(n_streams, length)`` signed activation values;
                each row is the time-ordered sequence one PE row sees.
        """
        streams = np.asarray(streams, dtype=np.int64)
        if streams.ndim != 2 or streams.shape[1] < 2:
            return
        codes = value_to_code(streams, self.act_bits)
        n_codes = 1 << self.act_bits
        pairs = codes[:, :-1] * n_codes + codes[:, 1:]
        counts = np.bincount(pairs.ravel(), minlength=n_codes * n_codes)
        self._act_counts += counts.reshape(n_codes, n_codes)
        self.n_act_transitions += pairs.size

    def add_psum_streams(self, streams: np.ndarray) -> None:
        """Record consecutive partial-sum pairs (reservoir-subsampled).

        Args:
            streams: ``(n_streams, length)`` signed partial-sum values.
        """
        streams = np.asarray(streams, dtype=np.int64)
        if streams.ndim != 2 or streams.shape[1] < 2:
            return
        pairs = np.stack([streams[:, :-1].ravel(),
                          streams[:, 1:].ravel()], axis=1)
        self.n_psum_transitions += pairs.shape[0]
        room = self.max_psum_samples - self._psum_stored
        if room <= 0:
            return
        if pairs.shape[0] > room:
            chosen = self._rng.choice(pairs.shape[0], size=room,
                                      replace=False)
            pairs = pairs[chosen]
        self._psum_pairs.append(pairs)
        self._psum_stored += pairs.shape[0]

    # ------------------------------------------------------------------
    # distributions
    # ------------------------------------------------------------------
    def activation_distribution(self) -> TransitionDistribution:
        """The measured activation transition distribution (Fig. 4a)."""
        if self._act_counts.sum() == 0:
            raise RuntimeError("no activation transitions collected")
        return TransitionDistribution(self._act_counts.astype(np.float64))

    def psum_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """All stored ``(from, to)`` partial-sum samples."""
        if not self._psum_pairs:
            raise RuntimeError("no partial-sum transitions collected")
        pairs = np.concatenate(self._psum_pairs, axis=0)
        return pairs[:, 0], pairs[:, 1]

    def binned_psum_transitions(self, n_bins: int = 50,
                                seed: int = 0) -> BinnedTransitions:
        """Fit the partial-sum binner and bin-level transitions (Fig. 4b).

        The binner is fitted on the observed values; transitions are then
        counted between the bins of each stored ``(from, to)`` pair.
        """
        psum_from, psum_to = self.psum_pairs()
        binner = PartialSumBinner(n_bins=n_bins, bits=self.psum_bits)
        binner.fit(np.concatenate([psum_from, psum_to]),
                   rng=np.random.default_rng(seed))
        bins_from = binner.assign(psum_from)
        bins_to = binner.assign(psum_to)
        dist = TransitionDistribution.from_pairs(bins_from, bins_to,
                                                 binner.n_bins)
        return BinnedTransitions(binner, dist)
