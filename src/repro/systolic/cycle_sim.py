"""Cycle-by-cycle simulation of the weight-stationary systolic array.

The tile-level model in :mod:`repro.systolic.array` is fast and
functionally exact; this module provides the slow-but-literal reference —
the role Modelsim plays in the paper's flow.  Every processing element is
stepped every cycle: activations enter the left edge with the classic
one-cycle skew per row, partial sums flow down the columns, and results
drain from the bottom edge.

Use it to validate the fast model (see ``tests/test_cycle_sim.py``) or to
extract literal per-cycle operand traces for a small tile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.systolic.config import SystolicConfig


@dataclass
class CycleTrace:
    """Per-cycle operand record of one traced PE.

    Attributes:
        row / col: PE coordinates.
        activations: Activation operand seen each cycle (0 when idle).
        psums_in: Partial-sum input seen each cycle.
    """

    row: int
    col: int
    activations: List[int] = field(default_factory=list)
    psums_in: List[int] = field(default_factory=list)


class CycleAccurateArray:
    """Literal weight-stationary array: one matmul tile per run.

    The array holds ``weights`` (rows x cols) stationary.  Activation
    column ``t`` of the ``(rows, M)`` input matrix enters row ``i`` at
    cycle ``t + i`` (input skew); the partial sum produced by PE ``(i, j)``
    reaches PE ``(i+1, j)`` one cycle later; column ``j``'s result for
    stream position ``t`` leaves the bottom at cycle ``t + rows + j``.

    This is O(rows x cols x cycles) in Python-level numpy ops — only use
    it for validation and trace extraction, not for full networks.
    """

    def __init__(self, config: Optional[SystolicConfig] = None) -> None:
        self.config = config or SystolicConfig()

    def run_tile(self, weights: np.ndarray, activations: np.ndarray,
                 trace_pes: Tuple[Tuple[int, int], ...] = (),
                 ) -> Tuple[np.ndarray, List[CycleTrace]]:
        """Stream one tile through the array, cycle by cycle.

        Args:
            weights: ``(rows_used, cols_used)`` stationary weights.
            activations: ``(rows_used, M)`` activation stream.
            trace_pes: PE coordinates whose operand streams to record.

        Returns:
            ``(outputs, traces)`` where ``outputs[j, t]`` is column ``j``'s
            accumulated result for stream position ``t`` and ``traces``
            align with ``trace_pes``.
        """
        weights = np.asarray(weights, dtype=np.int64)
        activations = np.asarray(activations, dtype=np.int64)
        if weights.ndim != 2 or activations.ndim != 2:
            raise ValueError("weights and activations must be 2-D")
        rows, cols = weights.shape
        if rows > self.config.rows or cols > self.config.cols:
            raise ValueError(
                f"tile {rows}x{cols} exceeds the "
                f"{self.config.rows}x{self.config.cols} array"
            )
        if activations.shape[0] != rows:
            raise ValueError("activation rows must match weight rows")
        m = activations.shape[1]

        traces = [CycleTrace(row=r, col=c) for r, c in trace_pes]
        # act_reg[i]: activation currently held by row i (broadcast along
        # the row in a real array; the column skew only affects arrival
        # of partial sums, which we model through psum_reg).
        act_reg = np.zeros(rows, dtype=np.int64)
        act_valid = np.zeros(rows, dtype=bool)
        # psum_reg[i, j]: partial sum entering PE (i, j) this cycle.
        psum_reg = np.zeros((rows + 1, cols), dtype=np.int64)
        psum_valid = np.zeros((rows + 1, cols), dtype=bool)

        outputs = np.zeros((cols, m), dtype=np.int64)
        total_cycles = m + rows + 2
        for cycle in range(total_cycles):
            # Record traces before the array steps (operands *seen*).
            for trace in traces:
                i, j = trace.row, trace.col
                trace.activations.append(
                    int(act_reg[i]) if act_valid[i] else 0)
                trace.psums_in.append(int(psum_reg[i, j]))

            # Results leaving the bottom edge: PE (rows-1, j) processes
            # stream position t during cycle t + rows; the registered
            # result sits in psum_reg[rows, j] one cycle later.
            t_out = cycle - rows - 1
            if 0 <= t_out < m:
                valid = psum_valid[rows, :]
                outputs[valid, t_out] = psum_reg[rows, valid]

            # Compute this cycle's MACs (combinational) into the next
            # pipeline stage, bottom row first so registers shift cleanly.
            new_psum = np.zeros_like(psum_reg)
            new_valid = np.zeros_like(psum_valid)
            for i in range(rows - 1, -1, -1):
                if act_valid[i]:
                    new_psum[i + 1, :] = (psum_reg[i, :]
                                          + weights[i, :] * act_reg[i])
                    new_valid[i + 1, :] = True
            psum_reg, psum_valid = new_psum, new_valid

            # Shift in the next skewed activation diagonal: row i gets
            # stream position cycle - i.
            for i in range(rows):
                t_in = cycle - i
                if 0 <= t_in < m:
                    act_reg[i] = activations[i, t_in]
                    act_valid[i] = True
                else:
                    act_valid[i] = False
        return outputs, traces
