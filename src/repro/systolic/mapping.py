"""Tiling of layer workloads onto the weight-stationary array.

A convolution or dense layer is lowered (via im2col) to the matmul
``out[N, M] = W[K, N]^T @ A[K, M]`` with ``K`` the fan-in, ``N`` the
output channels and ``M`` the output positions.  The array holds a
``rows x cols`` tile of ``W`` stationary while the ``M`` activation
columns stream through, so the workload becomes a grid of
``ceil(K/rows) x ceil(N/cols)`` tiles.

Cycle accounting per tile: ``rows_used`` cycles to preload weights, then
``M`` streaming cycles plus ``rows_used + cols_used`` pipeline fill/drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.systolic.config import SystolicConfig


@dataclass(frozen=True)
class Tile:
    """One stationary weight tile of a layer's matmul.

    Attributes:
        row_start / row_stop: Fan-in slice held by the array rows.
        col_start / col_stop: Output-channel slice held by the columns.
        stream_length: Number of activation vectors streamed through.
    """

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    stream_length: int

    @property
    def rows_used(self) -> int:
        return self.row_stop - self.row_start

    @property
    def cols_used(self) -> int:
        return self.col_stop - self.col_start

    def cycles(self) -> int:
        """Weight preload + streaming + pipeline fill/drain."""
        return (self.rows_used + self.stream_length
                + self.rows_used + self.cols_used)


@dataclass
class TileSchedule:
    """All tiles of one layer plus aggregate cycle statistics."""

    config: SystolicConfig
    tiles: List[Tile]
    k: int
    n: int
    m: int

    @property
    def total_cycles(self) -> int:
        return sum(tile.cycles() for tile in self.tiles)

    @property
    def total_macs(self) -> int:
        """Useful multiply-accumulates in the layer."""
        return self.k * self.n * self.m

    @property
    def utilization(self) -> float:
        """Useful MACs over PE-cycles spent (0..1)."""
        spent = self.total_cycles * self.config.n_pes
        return self.total_macs / spent if spent else 0.0

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles)

    def __len__(self) -> int:
        return len(self.tiles)


def schedule_matmul(k: int, n: int, m: int,
                    config: SystolicConfig) -> TileSchedule:
    """Tile the matmul ``W[K, N]^T @ A[K, M]`` onto the array.

    Args:
        k: Fan-in (reduction) dimension, mapped to array rows.
        n: Output channels, mapped to array columns.
        m: Streamed activation vectors (output positions x batch).
        config: Array geometry.
    """
    if min(k, n, m) < 1:
        raise ValueError("matmul dimensions must be positive")
    tiles = []
    for row_start in range(0, k, config.rows):
        row_stop = min(row_start + config.rows, k)
        for col_start in range(0, n, config.cols):
            col_stop = min(col_start + config.cols, n)
            tiles.append(Tile(row_start, row_stop, col_start, col_stop,
                              stream_length=m))
    return TileSchedule(config=config, tiles=tiles, k=k, n=n, m=m)


def conv2d_matmul_shape(in_channels: int, out_channels: int,
                        kernel_hw: Tuple[int, int],
                        out_hw: Tuple[int, int],
                        batch: int = 1) -> Tuple[int, int, int]:
    """(K, N, M) of the im2col lowering of a conv layer."""
    kh, kw = kernel_hw
    oh, ow = out_hw
    if min(in_channels, out_channels, kh, kw, oh, ow, batch) < 1:
        raise ValueError("conv dimensions must be positive")
    return in_channels * kh * kw, out_channels, oh * ow * batch


def dense_matmul_shape(in_features: int, out_features: int,
                       batch: int = 1) -> Tuple[int, int, int]:
    """(K, N, M) of a dense layer."""
    if min(in_features, out_features, batch) < 1:
        raise ValueError("dense dimensions must be positive")
    return in_features, out_features, batch
