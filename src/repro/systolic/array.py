"""Functional simulation of the weight-stationary systolic array.

The simulation is *functionally exact* (it produces the same outputs a
cycle-accurate RTL run would) and exposes the operand streams every PE
observes, which is all the power/timing methodology consumes.  Cycle
counts come from the tile schedule.  This matches the paper's own
shortcut: they too simulate only representative layers because fully
cycle-accurate runs are prohibitively slow (Sec. IV).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.systolic.config import SystolicConfig
from repro.systolic.mapping import TileSchedule, schedule_matmul
from repro.systolic.stats import TransitionStatsCollector


class SystolicArray:
    """Weight-stationary array executing matmul-shaped layer workloads.

    Args:
        config: Array geometry (defaults to the paper's 64x64).
        stats_columns: When collecting statistics, how many PE columns per
            tile to trace for partial-sum streams.  Tracing every PE of a
            big layer would allocate rows x cols x stream_length values;
            a column subsample keeps memory flat without biasing the
            transition statistics (columns are exchangeable).
        stats_stream_cap: Maximum stream length traced per tile.
    """

    def __init__(self, config: Optional[SystolicConfig] = None,
                 stats_columns: int = 8,
                 stats_stream_cap: int = 4096) -> None:
        self.config = config or SystolicConfig()
        if stats_columns < 1 or stats_stream_cap < 2:
            raise ValueError("stats sampling parameters too small")
        self.stats_columns = stats_columns
        self.stats_stream_cap = stats_stream_cap

    def _check_operands(self, weights: np.ndarray,
                        activations: np.ndarray) -> None:
        w_half = 1 << (self.config.weight_bits - 1)
        a_half = 1 << (self.config.act_bits - 1)
        if weights.size and (weights.min() < -w_half
                             or weights.max() >= w_half):
            raise ValueError(
                f"weights outside signed {self.config.weight_bits}-bit "
                f"range"
            )
        if activations.size and (activations.min() < -a_half
                                 or activations.max() >= a_half):
            raise ValueError(
                f"activations outside signed {self.config.act_bits}-bit "
                f"range"
            )

    def run_layer(self, weights: np.ndarray, activations: np.ndarray,
                  stats: Optional[TransitionStatsCollector] = None,
                  ) -> np.ndarray:
        """Execute ``out[N, M] = W[K, N]^T @ A[K, M]`` tile by tile.

        Args:
            weights: ``(K, N)`` signed integer weight matrix.
            activations: ``(K, M)`` signed integer activation matrix.
            stats: Optional collector; receives the activation stream of
                every used PE row and the partial-sum stream of every
                used PE.

        Returns:
            ``(N, M)`` int64 output matrix (exact).
        """
        weights = np.asarray(weights, dtype=np.int64)
        activations = np.asarray(activations, dtype=np.int64)
        if weights.ndim != 2 or activations.ndim != 2:
            raise ValueError("weights and activations must be 2-D")
        if weights.shape[0] != activations.shape[0]:
            raise ValueError(
                f"fan-in mismatch: W has K={weights.shape[0]}, "
                f"A has K={activations.shape[0]}"
            )
        self._check_operands(weights, activations)

        k, n = weights.shape
        m = activations.shape[1]
        schedule = schedule_matmul(k, n, m, self.config)
        out = np.zeros((n, m), dtype=np.int64)
        for tile in schedule:
            w_tile = weights[tile.row_start:tile.row_stop,
                             tile.col_start:tile.col_stop]
            a_tile = activations[tile.row_start:tile.row_stop, :]
            out[tile.col_start:tile.col_stop, :] += w_tile.T @ a_tile
            if stats is not None:
                self._collect_tile_stats(w_tile, a_tile, stats)
        return out

    def schedule(self, weights: np.ndarray,
                 activations: np.ndarray) -> TileSchedule:
        """The tile schedule :meth:`run_layer` would execute."""
        k, n = np.asarray(weights).shape
        m = np.asarray(activations).shape[1]
        return schedule_matmul(k, n, m, self.config)

    def _collect_tile_stats(self, w_tile: np.ndarray, a_tile: np.ndarray,
                            stats: TransitionStatsCollector) -> None:
        """Feed the collector with per-PE operand streams of one tile.

        In a weight-stationary flow, PE row ``i`` sees the activation
        sequence ``a_tile[i, :]`` and the PE at ``(i, j)`` sees the
        partial-sum sequence ``cumsum_k<=i(w[k, j] * a[k, t])`` — the
        value arriving from the PE above, per streamed column.
        """
        a_traced = a_tile[:, :self.stats_stream_cap]
        stats.add_activation_streams(a_traced)
        # psums[i, t]: running sum down a column, exactly what the psum
        # input register of PE (i+1, j) carries over time.  A subsample
        # of columns bounds memory; columns are statistically
        # exchangeable for transition counting.
        cols = w_tile.shape[1]
        step = max(1, cols // self.stats_columns)
        for j in range(0, cols, step):
            products = w_tile[:, j:j + 1] * a_traced
            psums = np.cumsum(products, axis=0)
            stats.add_psum_streams(psums)
