"""Systolic-array geometry and hardware variants.

The paper evaluates two implementations of the same 64x64 weight-stationary
array (Sec. IV):

* **Standard HW** — no power-saving features: every PE is clocked every
  cycle and every PE leaks.
* **Optimized HW** — a MAC whose stationary weight is zero is clock-gated
  (no dynamic power), and entirely unutilized columns are power-gated
  (no dynamic *and* no leakage power).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystolicConfig:
    """Geometry and operating point of the accelerator.

    Attributes:
        rows / cols: PE grid size (64x64 in the paper).
        act_bits / weight_bits / psum_bits: Datapath widths.
        clock_period_ps: Cycle time; 180 ps is the paper's post-synthesis
            value ("around 5 GHz").
    """

    rows: int = 64
    cols: int = 64
    act_bits: int = 8
    weight_bits: int = 8
    psum_bits: int = 22
    clock_period_ps: float = 180.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array must have at least one PE")
        if self.clock_period_ps <= 0:
            raise ValueError("clock period must be positive")
        needed = self.act_bits + self.weight_bits
        if self.psum_bits < needed:
            raise ValueError(
                f"psum width {self.psum_bits} cannot hold "
                f"{needed}-bit products"
            )

    @property
    def n_pes(self) -> int:
        """Total number of processing elements."""
        return self.rows * self.cols

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.clock_period_ps


@dataclass(frozen=True)
class HardwareVariant:
    """Power-management features of an array implementation.

    Attributes:
        name: Human-readable variant name.
        clock_gate_zero_weight: Gate the clock of PEs holding weight zero
            and of PEs that receive no activation stream.
        power_gate_unused_columns: Cut supply to columns with no mapped
            output channel (kills leakage too).
    """

    name: str
    clock_gate_zero_weight: bool = False
    power_gate_unused_columns: bool = False


#: The paper's baseline implementation without power-saving features.
STANDARD_HW = HardwareVariant("Standard HW")

#: The paper's implementation with clock gating and column power gating.
OPTIMIZED_HW = HardwareVariant(
    "Optimized HW",
    clock_gate_zero_weight=True,
    power_gate_unused_columns=True,
)
