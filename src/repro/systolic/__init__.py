"""Weight-stationary systolic-array simulator.

Substitute for the authors' synthesized 64x64 systolic array testbench:

* :mod:`repro.systolic.config` — array geometry and the two hardware
  variants of the paper (Standard HW / Optimized HW).
* :mod:`repro.systolic.mapping` — tiling of matmul-shaped layer workloads
  onto the array, with cycle accounting.
* :mod:`repro.systolic.array` — functional simulation producing exact
  outputs plus the operand streams each PE observes.
* :mod:`repro.systolic.stats` — transition statistics collected from the
  streams (feeds the Fig. 4 distributions).
* :mod:`repro.systolic.energy` — per-layer power estimation from the
  per-weight power table, including clock/power gating and voltage
  scaling.
"""

from repro.systolic.config import (
    OPTIMIZED_HW,
    STANDARD_HW,
    HardwareVariant,
    SystolicConfig,
)
from repro.systolic.mapping import Tile, TileSchedule, schedule_matmul
from repro.systolic.array import SystolicArray
from repro.systolic.cycle_sim import CycleAccurateArray, CycleTrace
from repro.systolic.stats import TransitionStatsCollector
from repro.systolic.energy import ArrayPowerModel, MacPowerParams

__all__ = [
    "SystolicConfig",
    "HardwareVariant",
    "STANDARD_HW",
    "OPTIMIZED_HW",
    "Tile",
    "TileSchedule",
    "schedule_matmul",
    "SystolicArray",
    "CycleAccurateArray",
    "CycleTrace",
    "TransitionStatsCollector",
    "ArrayPowerModel",
    "MacPowerParams",
]
