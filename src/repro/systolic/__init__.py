"""Weight-stationary systolic-array simulator.

Substitute for the authors' synthesized 64x64 systolic array testbench:

* :mod:`repro.systolic.config` — array geometry and the two hardware
  variants of the paper (Standard HW / Optimized HW).
* :mod:`repro.systolic.spec` — :class:`AcceleratorSpec`, the cache-keyed
  design point (geometry x variant x mapping) the ``accel_*`` pipeline
  stages and the ``accel`` sweep axes evaluate.
* :mod:`repro.systolic.mapping` — tiling of matmul-shaped layer workloads
  onto the array, with cycle accounting.
* :mod:`repro.systolic.array` — functional simulation producing exact
  outputs plus the operand streams each PE observes.
* :mod:`repro.systolic.stats` — transition statistics collected from the
  streams (feeds the Fig. 4 distributions).
* :mod:`repro.systolic.energy` — per-layer power estimation from the
  per-weight power table, including clock/power gating and voltage
  scaling.
"""

from repro.systolic.config import (
    OPTIMIZED_HW,
    STANDARD_HW,
    HardwareVariant,
    SystolicConfig,
)
from repro.systolic.spec import (
    HW_VARIANTS,
    AcceleratorSpec,
    accel_spec_from_mapping,
    normalize_variant,
    parse_array_shape,
)
from repro.systolic.mapping import Tile, TileSchedule, schedule_matmul
from repro.systolic.array import SystolicArray
from repro.systolic.cycle_sim import CycleAccurateArray, CycleTrace
from repro.systolic.stats import TransitionStatsCollector
from repro.systolic.energy import (
    ArrayPowerModel,
    MacPowerParams,
    ScheduleCounts,
    schedule_value_counts,
)

__all__ = [
    "SystolicConfig",
    "HardwareVariant",
    "STANDARD_HW",
    "OPTIMIZED_HW",
    "AcceleratorSpec",
    "HW_VARIANTS",
    "accel_spec_from_mapping",
    "normalize_variant",
    "parse_array_shape",
    "Tile",
    "TileSchedule",
    "schedule_matmul",
    "SystolicArray",
    "CycleAccurateArray",
    "CycleTrace",
    "TransitionStatsCollector",
    "ArrayPowerModel",
    "MacPowerParams",
    "ScheduleCounts",
    "schedule_value_counts",
]
