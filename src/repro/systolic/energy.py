"""Per-layer power estimation of the systolic array.

Combines the per-weight MAC power table (Sec. III-A characterization)
with the tile schedule and the hardware variant's gating semantics:

* an **active** PE (inside the tile, streaming) burns the dynamic power
  of its stationary weight value plus un-gateable clock/register power;
* an **idle** PE (clocked but not streaming, or holding weight zero on
  Optimized HW where it is clock-gated) burns clock power on Standard HW
  and nothing dynamic on Optimized HW;
* a **power-gated** column (Optimized HW only) burns nothing at all;
* every non-power-gated PE leaks.

Supply-voltage scaling multiplies dynamic power by the V^2 law and
leakage by the super-linear FinFET law (see :mod:`repro.cells.voltage`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cells.voltage import VoltageModel
from repro.power.characterization import WeightPowerTable
from repro.power.estimator import PowerBreakdown
from repro.systolic.config import HardwareVariant, SystolicConfig
from repro.systolic.mapping import Tile, TileSchedule


@dataclass(frozen=True)
class MacPowerParams:
    """Per-MAC power figures consumed by the array model.

    Attributes:
        table: Per-weight-value power characterization.
        clock_power_uw: Clock-tree/register power one un-gated MAC burns
            every cycle regardless of data activity.  Roughly 15% of the
            mean MAC dynamic power, a typical clock-tree share.
    """

    table: WeightPowerTable
    clock_power_uw: float = 80.0

    @property
    def leakage_uw(self) -> float:
        """Leakage of a single MAC unit."""
        return self.table.leakage_uw


class ArrayPowerModel:
    """Estimates average array power for tiled layer workloads."""

    def __init__(self, config: SystolicConfig, params: MacPowerParams,
                 voltage_model: Optional[VoltageModel] = None) -> None:
        self.config = config
        self.params = params
        self.voltage_model = voltage_model or VoltageModel()
        table = params.table
        # Dense lookup over the full signed-8-bit range; values that were
        # not characterized (reduced-scale runs characterize a subset)
        # are linearly interpolated from their neighbours.
        self._weight_offset = -(1 << 7)
        self._dynamic_lut = np.array([
            table.dynamic_of(w, interpolate=True)
            for w in range(self._weight_offset, 1 << 7)
        ])

    def _dynamic_of(self, weight: int) -> float:
        return float(self._dynamic_lut[weight - self._weight_offset])

    def tile_power(self, tile: Tile, tile_weights: np.ndarray,
                   variant: HardwareVariant) -> PowerBreakdown:
        """Average power while one tile is streaming, at nominal voltage.

        Args:
            tile: Tile geometry.
            tile_weights: ``(rows_used, cols_used)`` stationary weights.
            variant: Hardware gating features.
        """
        tile_weights = np.asarray(tile_weights, dtype=np.int64)
        if tile_weights.shape != (tile.rows_used, tile.cols_used):
            raise ValueError(
                f"tile weights shape {tile_weights.shape} does not match "
                f"tile {tile.rows_used}x{tile.cols_used}"
            )
        config, params = self.config, self.params

        flat = tile_weights.ravel()
        per_pe_dynamic = self._dynamic_lut[flat - self._weight_offset]
        if variant.clock_gate_zero_weight:
            ungated = flat != 0  # gated PEs burn neither data nor clock
            active_dynamic = float(per_pe_dynamic[ungated].sum())
            clocked_pes = int(ungated.sum())
        else:
            active_dynamic = float(per_pe_dynamic.sum())
            clocked_pes = flat.size

        used_cols = tile.cols_used
        idle_rows_pes = (config.rows - tile.rows_used) * used_cols
        unused_cols = config.cols - used_cols
        unused_col_pes = unused_cols * config.rows

        # Idle PEs (rows beyond the tile, or whole unused columns) carry
        # no data activity; whether they still burn clock power depends
        # on the gating features.
        if not variant.clock_gate_zero_weight:
            clocked_pes += idle_rows_pes
        if variant.power_gate_unused_columns:
            leaking_pes = config.n_pes - unused_col_pes
        else:
            if not variant.clock_gate_zero_weight:
                clocked_pes += unused_col_pes
            leaking_pes = config.n_pes

        dynamic = active_dynamic + clocked_pes * params.clock_power_uw
        leakage = leaking_pes * params.leakage_uw
        return PowerBreakdown(dynamic_uw=dynamic, leakage_uw=leakage)

    def layer_power(self, schedule: TileSchedule, weights: np.ndarray,
                    variant: HardwareVariant,
                    vdd: Optional[float] = None) -> PowerBreakdown:
        """Cycle-weighted average power of a whole layer.

        Args:
            schedule: Tile schedule of the layer.
            weights: Full ``(K, N)`` weight matrix the tiles slice.
            vdd: Optional scaled supply voltage.
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (schedule.k, schedule.n):
            raise ValueError(
                f"weight matrix {weights.shape} does not match schedule "
                f"({schedule.k}, {schedule.n})"
            )
        energy_dyn = 0.0
        energy_leak = 0.0
        total_cycles = 0
        for tile in schedule:
            tile_w = weights[tile.row_start:tile.row_stop,
                             tile.col_start:tile.col_stop]
            power = self.tile_power(tile, tile_w, variant)
            cycles = tile.cycles()
            energy_dyn += power.dynamic_uw * cycles
            energy_leak += power.leakage_uw * cycles
            total_cycles += cycles
        breakdown = PowerBreakdown(
            dynamic_uw=energy_dyn / total_cycles,
            leakage_uw=energy_leak / total_cycles,
        )
        if vdd is not None:
            breakdown = breakdown.scaled(
                self.voltage_model.dynamic_power_scale(vdd),
                self.voltage_model.leakage_power_scale(vdd),
            )
        return breakdown

    def network_power(self, layers: Sequence, variant: HardwareVariant,
                      vdd: Optional[float] = None) -> PowerBreakdown:
        """Cycle-weighted average power across layers.

        Args:
            layers: Sequence of ``(schedule, weights)`` pairs.
        """
        if not layers:
            raise ValueError("need at least one layer")
        energy_dyn = 0.0
        energy_leak = 0.0
        total_cycles = 0
        for schedule, weights in layers:
            power = self.layer_power(schedule, weights, variant, vdd=None)
            cycles = schedule.total_cycles
            energy_dyn += power.dynamic_uw * cycles
            energy_leak += power.leakage_uw * cycles
            total_cycles += cycles
        breakdown = PowerBreakdown(
            dynamic_uw=energy_dyn / total_cycles,
            leakage_uw=energy_leak / total_cycles,
        )
        if vdd is not None:
            breakdown = breakdown.scaled(
                self.voltage_model.dynamic_power_scale(vdd),
                self.voltage_model.leakage_power_scale(vdd),
            )
        return breakdown
