"""Per-layer power estimation of the systolic array.

Combines the per-weight MAC power table (Sec. III-A characterization)
with the tile schedule and the hardware variant's gating semantics:

* an **active** PE (inside the tile, streaming) burns the dynamic power
  of its stationary weight value plus un-gateable clock/register power;
* an **idle** PE (clocked but not streaming, or holding weight zero on
  Optimized HW where it is clock-gated) burns clock power on Standard HW
  and nothing dynamic on Optimized HW;
* a **power-gated** column (Optimized HW only) burns nothing at all;
* every non-power-gated PE leaks.

Supply-voltage scaling multiplies dynamic power by the V^2 law and
leakage by the super-linear FinFET law (see :mod:`repro.cells.voltage`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cells.voltage import VoltageModel
from repro.power.characterization import WeightPowerTable
from repro.power.estimator import PowerBreakdown
from repro.systolic.config import HardwareVariant, SystolicConfig
from repro.systolic.mapping import Tile, TileSchedule

#: Size of the dense signed-8-bit weight-value lookup.
_LUT_SIZE = 1 << 8


@dataclass(frozen=True)
class ScheduleCounts:
    """Cycle-weighted occupancy statistics of one layer's schedule.

    Every quantity is an exact integer (stored in float64 for
    ``weight_counts``, far below 2**53), which is what makes the
    vectorized one-shot ``np.bincount`` reduction bit-identical to the
    per-tile accumulation loop: both sum the same integers.

    Attributes:
        weight_counts: ``(256,)`` — for each stationary weight value
            ``v``, the number of (PE, cycle) pairs where an in-tile PE
            holds ``v`` (tile occurrence count x tile cycles).
        tile_pe_cycles: Total in-tile (PE, cycle) pairs.
        idle_row_pe_cycles: (PE, cycle) pairs in rows below the tile.
        unused_col_pe_cycles: (PE, cycle) pairs in columns the tile
            does not occupy.
        total_cycles: Schedule cycles.
    """

    weight_counts: np.ndarray
    tile_pe_cycles: int
    idle_row_pe_cycles: int
    unused_col_pe_cycles: int
    total_cycles: int


def schedule_value_counts(schedule: TileSchedule, weights: np.ndarray,
                          vectorized: bool = True) -> ScheduleCounts:
    """Cycle-weighted stationary-value counts for a whole schedule.

    The vectorized path paints each tile's cycle count over its
    ``(K, N)`` slice and reduces the entire weight matrix with one
    ``np.bincount``; the loop path accumulates an integer bincount per
    tile.  Both produce bit-identical counts (asserted in tests), the
    loop is kept as the oracle.
    """
    weights = np.asarray(weights, dtype=np.int64)
    if weights.shape != (schedule.k, schedule.n):
        raise ValueError(
            f"weight matrix {weights.shape} does not match schedule "
            f"({schedule.k}, {schedule.n})"
        )
    config = schedule.config
    tiles = schedule.tiles
    cycles = np.array([tile.cycles() for tile in tiles], dtype=np.int64)
    rows_used = np.array([tile.rows_used for tile in tiles], dtype=np.int64)
    cols_used = np.array([tile.cols_used for tile in tiles], dtype=np.int64)

    index = weights - (-(1 << 7))
    if index.size and (index.min() < 0 or index.max() >= _LUT_SIZE):
        raise ValueError("weights outside the signed-8-bit range")
    if vectorized:
        # One bincount over the whole matrix, weighted by the per-cell
        # cycle count (+= per tile handles arbitrary tile lists the
        # same way the reference loop does).
        cycle_map = np.zeros(weights.shape, dtype=np.float64)
        for tile, tile_cycles in zip(tiles, cycles):
            cycle_map[tile.row_start:tile.row_stop,
                      tile.col_start:tile.col_stop] += tile_cycles
        counts = np.bincount(index.ravel(), weights=cycle_map.ravel(),
                             minlength=_LUT_SIZE)
    else:
        acc = np.zeros(_LUT_SIZE, dtype=np.int64)
        for tile, tile_cycles in zip(tiles, cycles):
            tile_index = index[tile.row_start:tile.row_stop,
                               tile.col_start:tile.col_stop]
            acc += tile_cycles * np.bincount(tile_index.ravel(),
                                             minlength=_LUT_SIZE)
        counts = acc.astype(np.float64)

    return ScheduleCounts(
        weight_counts=counts,
        tile_pe_cycles=int((cycles * rows_used * cols_used).sum()),
        idle_row_pe_cycles=int(
            (cycles * (config.rows - rows_used) * cols_used).sum()),
        unused_col_pe_cycles=int(
            (cycles * (config.cols - cols_used) * config.rows).sum()),
        total_cycles=int(cycles.sum()),
    )


@dataclass(frozen=True)
class MacPowerParams:
    """Per-MAC power figures consumed by the array model.

    Attributes:
        table: Per-weight-value power characterization.
        clock_power_uw: Clock-tree/register power one un-gated MAC burns
            every cycle regardless of data activity.  Roughly 15% of the
            mean MAC dynamic power, a typical clock-tree share.
    """

    table: WeightPowerTable
    clock_power_uw: float = 80.0

    @property
    def leakage_uw(self) -> float:
        """Leakage of a single MAC unit."""
        return self.table.leakage_uw


class ArrayPowerModel:
    """Estimates average array power for tiled layer workloads."""

    def __init__(self, config: SystolicConfig, params: MacPowerParams,
                 voltage_model: Optional[VoltageModel] = None) -> None:
        self.config = config
        self.params = params
        self.voltage_model = voltage_model or VoltageModel()
        table = params.table
        # Dense lookup over the full signed-8-bit range; values that were
        # not characterized (reduced-scale runs characterize a subset)
        # are linearly interpolated from their neighbours.
        self._weight_offset = -(1 << 7)
        self._dynamic_lut = np.array([
            table.dynamic_of(w, interpolate=True)
            for w in range(self._weight_offset, 1 << 7)
        ])

    def _dynamic_of(self, weight: int) -> float:
        return float(self._dynamic_lut[weight - self._weight_offset])

    def tile_power(self, tile: Tile, tile_weights: np.ndarray,
                   variant: HardwareVariant) -> PowerBreakdown:
        """Average power while one tile is streaming, at nominal voltage.

        Args:
            tile: Tile geometry.
            tile_weights: ``(rows_used, cols_used)`` stationary weights.
            variant: Hardware gating features.
        """
        tile_weights = np.asarray(tile_weights, dtype=np.int64)
        if tile_weights.shape != (tile.rows_used, tile.cols_used):
            raise ValueError(
                f"tile weights shape {tile_weights.shape} does not match "
                f"tile {tile.rows_used}x{tile.cols_used}"
            )
        config, params = self.config, self.params

        flat = tile_weights.ravel()
        per_pe_dynamic = self._dynamic_lut[flat - self._weight_offset]
        if variant.clock_gate_zero_weight:
            ungated = flat != 0  # gated PEs burn neither data nor clock
            active_dynamic = float(per_pe_dynamic[ungated].sum())
            clocked_pes = int(ungated.sum())
        else:
            active_dynamic = float(per_pe_dynamic.sum())
            clocked_pes = flat.size

        used_cols = tile.cols_used
        idle_rows_pes = (config.rows - tile.rows_used) * used_cols
        unused_cols = config.cols - used_cols
        unused_col_pes = unused_cols * config.rows

        # Idle PEs (rows beyond the tile, or whole unused columns) carry
        # no data activity; whether they still burn clock power depends
        # on the gating features.
        if not variant.clock_gate_zero_weight:
            clocked_pes += idle_rows_pes
        if variant.power_gate_unused_columns:
            leaking_pes = config.n_pes - unused_col_pes
        else:
            if not variant.clock_gate_zero_weight:
                clocked_pes += unused_col_pes
            leaking_pes = config.n_pes

        dynamic = active_dynamic + clocked_pes * params.clock_power_uw
        leakage = leaking_pes * params.leakage_uw
        return PowerBreakdown(dynamic_uw=dynamic, leakage_uw=leakage)

    def layer_power(self, schedule: TileSchedule, weights: np.ndarray,
                    variant: HardwareVariant,
                    vdd: Optional[float] = None,
                    vectorized: bool = True) -> PowerBreakdown:
        """Cycle-weighted average power of a whole layer.

        One bincount over the whole schedule's stationary values
        replaces the per-tile loop + per-PE fancy-index sum of the
        original implementation (kept as :meth:`layer_power_reference`).
        ``vectorized=False`` runs the per-tile counting loop instead —
        bit-identical by construction, both paths share the final
        reduction over exact integer counts.

        Args:
            schedule: Tile schedule of the layer.
            weights: Full ``(K, N)`` weight matrix the tiles slice.
            vdd: Optional scaled supply voltage.
            vectorized: Count with the one-shot bincount (default) or
                the per-tile loop.
        """
        counts = schedule_value_counts(schedule, weights,
                                       vectorized=vectorized)
        return self._power_from_counts(counts, variant, vdd)

    def _power_from_counts(self, counts: ScheduleCounts,
                           variant: HardwareVariant,
                           vdd: Optional[float] = None) -> PowerBreakdown:
        """Gating semantics applied to cycle-weighted occupancy counts."""
        params = self.params
        weight_counts = counts.weight_counts
        zero_index = -self._weight_offset
        data_dynamic = float(weight_counts @ self._dynamic_lut)
        if variant.clock_gate_zero_weight:
            # Zero-weight PEs are gated: neither their (characterized)
            # data activity nor their clock power is burned.
            zero_pe_cycles = float(weight_counts[zero_index])
            data_dynamic -= zero_pe_cycles * float(
                self._dynamic_lut[zero_index])
            clocked_pe_cycles = counts.tile_pe_cycles - zero_pe_cycles
        else:
            clocked_pe_cycles = float(
                counts.tile_pe_cycles + counts.idle_row_pe_cycles)
            if not variant.power_gate_unused_columns:
                clocked_pe_cycles += counts.unused_col_pe_cycles
        total_pe_cycles = self.config.n_pes * counts.total_cycles
        if variant.power_gate_unused_columns:
            leaking_pe_cycles = total_pe_cycles - counts.unused_col_pe_cycles
        else:
            leaking_pe_cycles = total_pe_cycles

        total_cycles = counts.total_cycles
        breakdown = PowerBreakdown(
            dynamic_uw=(data_dynamic
                        + clocked_pe_cycles * params.clock_power_uw
                        ) / total_cycles,
            leakage_uw=leaking_pe_cycles * params.leakage_uw / total_cycles,
        )
        if vdd is not None:
            breakdown = breakdown.scaled(
                self.voltage_model.dynamic_power_scale(vdd),
                self.voltage_model.leakage_power_scale(vdd),
            )
        return breakdown

    def layer_power_reference(self, schedule: TileSchedule,
                              weights: np.ndarray,
                              variant: HardwareVariant,
                              vdd: Optional[float] = None
                              ) -> PowerBreakdown:
        """Original per-tile implementation, kept as the test oracle
        for :meth:`layer_power` (agrees to float rounding)."""
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (schedule.k, schedule.n):
            raise ValueError(
                f"weight matrix {weights.shape} does not match schedule "
                f"({schedule.k}, {schedule.n})"
            )
        energy_dyn = 0.0
        energy_leak = 0.0
        total_cycles = 0
        for tile in schedule:
            tile_w = weights[tile.row_start:tile.row_stop,
                             tile.col_start:tile.col_stop]
            power = self.tile_power(tile, tile_w, variant)
            cycles = tile.cycles()
            energy_dyn += power.dynamic_uw * cycles
            energy_leak += power.leakage_uw * cycles
            total_cycles += cycles
        breakdown = PowerBreakdown(
            dynamic_uw=energy_dyn / total_cycles,
            leakage_uw=energy_leak / total_cycles,
        )
        if vdd is not None:
            breakdown = breakdown.scaled(
                self.voltage_model.dynamic_power_scale(vdd),
                self.voltage_model.leakage_power_scale(vdd),
            )
        return breakdown

    def network_power(self, layers: Sequence, variant: HardwareVariant,
                      vdd: Optional[float] = None) -> PowerBreakdown:
        """Cycle-weighted average power across layers.

        Args:
            layers: Sequence of ``(schedule, weights)`` pairs.
        """
        if not layers:
            raise ValueError("need at least one layer")
        energy_dyn = 0.0
        energy_leak = 0.0
        total_cycles = 0
        for schedule, weights in layers:
            power = self.layer_power(schedule, weights, variant, vdd=None)
            cycles = schedule.total_cycles
            energy_dyn += power.dynamic_uw * cycles
            energy_leak += power.leakage_uw * cycles
            total_cycles += cycles
        breakdown = PowerBreakdown(
            dynamic_uw=energy_dyn / total_cycles,
            leakage_uw=energy_leak / total_cycles,
        )
        if vdd is not None:
            breakdown = breakdown.scaled(
                self.voltage_model.dynamic_power_scale(vdd),
                self.voltage_model.leakage_power_scale(vdd),
            )
        return breakdown
