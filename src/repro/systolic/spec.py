"""Accelerator evaluation point: geometry + gating + mapping knobs.

An :class:`AcceleratorSpec` names one point of the accelerator design
space the ``accel_*`` pipeline stages evaluate: the array geometry
(``rows x cols``, defaulting to the hardware backend's own
:meth:`~repro.hw.HardwareBackend.build_systolic_config` geometry), the
paper's hardware variant (Standard vs Optimized HW gating features) and
the mapping knobs that shape the tile schedule.

Like :class:`~repro.hw.HardwareBackend`, the spec is a frozen dataclass
of plain scalars whose :meth:`key_payload` feeds the content-addressed
stage cache — but deliberately *only* through the ``accel_schedule`` /
``accel_eval`` stage keys: changing the array geometry must never
invalidate the training/characterization prefix (``power_table``,
``timing_table``, ...), which is what makes a design-space sweep over
geometries share one characterization run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.systolic.config import (
    OPTIMIZED_HW,
    STANDARD_HW,
    HardwareVariant,
    SystolicConfig,
)

__all__ = [
    "AcceleratorSpec",
    "HW_VARIANTS",
    "accel_spec_from_mapping",
    "normalize_variant",
    "parse_array_shape",
]

#: The paper's two array implementations, by spec name.
HW_VARIANTS: Dict[str, HardwareVariant] = {
    "standard": STANDARD_HW,
    "optimized": OPTIMIZED_HW,
}


def normalize_variant(name: Union[str, HardwareVariant]) -> str:
    """Canonical variant name (``standard``/``optimized``)."""
    if isinstance(name, HardwareVariant):
        for key, variant in HW_VARIANTS.items():
            if variant == name:
                return key
        raise ValueError(f"unregistered hardware variant {name!r}")
    lowered = str(name).strip().lower().replace(" hw", "")
    if lowered not in HW_VARIANTS:
        raise ValueError(f"unknown hardware variant {name!r}; "
                         f"choose from {sorted(HW_VARIANTS)}")
    return lowered


def parse_array_shape(value: Any) -> Optional[Tuple[int, int]]:
    """``(rows, cols)`` from a shape in any accepted spelling.

    Accepts ``None``/``"hw"``/``"default"`` (= the backend's own
    geometry), ``"32x32"``/``"32"`` strings, bare ints (square array)
    and 2-sequences.
    """
    if value is None:
        return None
    if isinstance(value, str):
        text = value.strip().lower()
        if text in ("", "hw", "default", "none"):
            return None
        parts = text.split("x")
        if len(parts) == 1:
            parts = [parts[0], parts[0]]
        if len(parts) != 2:
            raise ValueError(f"array shape {value!r} must look like "
                             f"'ROWSxCOLS' (e.g. '32x32')")
        try:
            rows, cols = (int(p) for p in parts)
        except ValueError:
            raise ValueError(f"array shape {value!r} must be integer "
                             f"'ROWSxCOLS'") from None
        return rows, cols
    if isinstance(value, int):
        return int(value), int(value)
    shape = tuple(int(v) for v in value)
    if len(shape) != 2:
        raise ValueError(f"array shape {value!r} must have exactly "
                         f"two entries (rows, cols)")
    return shape


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator design point (geometry + gating + mapping).

    Attributes:
        rows / cols: PE grid size; ``None`` defers to the hardware
            backend's :meth:`build_systolic_config` geometry (the
            paper's 64x64 on the shipped backends).
        variant: ``"standard"`` (no power management) or
            ``"optimized"`` (zero-weight clock gating + unused-column
            power gating), per Sec. IV.
        stream_batch: Inferences streamed through each stationary
            weight tile before the next tile is loaded — the mapping
            knob trading weight-reload cycles against buffer pressure
            (1 = the paper's per-inference schedule).
    """

    rows: Optional[int] = None
    cols: Optional[int] = None
    variant: str = "standard"
    stream_batch: int = 1

    def __post_init__(self) -> None:
        for name in ("rows", "cols"):
            value = getattr(self, name)
            if value is not None and int(value) < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.variant not in HW_VARIANTS:
            raise ValueError(
                f"unknown hardware variant {self.variant!r}; "
                f"choose from {sorted(HW_VARIANTS)}")
        if int(self.stream_batch) < 1:
            raise ValueError("stream_batch must be >= 1")

    # ------------------------------------------------------------------
    # resolution against a backend's base geometry
    # ------------------------------------------------------------------
    def resolved(self, base: SystolicConfig) -> "AcceleratorSpec":
        """The same spec with ``None`` geometry filled from ``base``.

        Stage keys hash the *resolved* spec, so an explicit
        ``64x64`` request and the default geometry of a 64x64 backend
        share their ``accel_*`` artifacts.
        """
        return replace(self,
                       rows=int(self.rows if self.rows is not None
                                else base.rows),
                       cols=int(self.cols if self.cols is not None
                                else base.cols))

    def resolve_config(self, base: SystolicConfig) -> SystolicConfig:
        """Array geometry of this spec on top of the backend's
        datapath widths and operating point."""
        spec = self.resolved(base)
        return SystolicConfig(
            rows=spec.rows, cols=spec.cols,
            act_bits=base.act_bits, weight_bits=base.weight_bits,
            psum_bits=base.psum_bits,
            clock_period_ps=base.clock_period_ps,
        )

    def hardware_variant(self) -> HardwareVariant:
        return HW_VARIANTS[self.variant]

    # ------------------------------------------------------------------
    # cache keying / display
    # ------------------------------------------------------------------
    def geometry_payload(self) -> Dict[str, Any]:
        """The schedule-relevant half of the key: geometry + mapping.

        The hardware variant is deliberately absent — Standard and
        Optimized HW share one tile schedule, so ``accel_schedule``
        must key on geometry alone.
        """
        return {"rows": self.rows, "cols": self.cols,
                "stream_batch": int(self.stream_batch)}

    def key_payload(self) -> Dict[str, Any]:
        """Full hashable record for ``accel_eval`` stage keys."""
        payload = self.geometry_payload()
        payload["variant"] = self.variant
        return payload

    def describe(self, base: Optional[SystolicConfig] = None) -> str:
        """``64x64/optimized`` style label (resolved when possible)."""
        spec = self.resolved(base) if base is not None else self
        rows = "hw" if spec.rows is None else f"{spec.rows}"
        cols = "hw" if spec.cols is None else f"{spec.cols}"
        label = f"{rows}x{cols}/{spec.variant}"
        if spec.stream_batch != 1:
            label += f"/b{spec.stream_batch}"
        return label


def accel_spec_from_mapping(data: Mapping[str, Any],
                            source: str = "accel spec"
                            ) -> AcceleratorSpec:
    """An :class:`AcceleratorSpec` from a parsed JSON/TOML mapping."""
    known = {"shape", "rows", "cols", "variant", "stream_batch"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown {source} keys {unknown}; "
                         f"recognized: {sorted(known)}")
    rows = data.get("rows")
    cols = data.get("cols")
    if "shape" in data:
        if rows is not None or cols is not None:
            raise ValueError(f"{source}: give either 'shape' or "
                             f"'rows'/'cols', not both")
        shape = parse_array_shape(data["shape"])
        if shape is not None:
            rows, cols = shape
    return AcceleratorSpec(
        rows=None if rows is None else int(rows),
        cols=None if cols is None else int(cols),
        variant=normalize_variant(data.get("variant", "standard")),
        stream_batch=int(data.get("stream_batch", 1)),
    )
