"""Power estimation and per-weight power characterization (Sec. III-A).

This subpackage replaces Synopsys Power Compiler in the paper's flow:

* :mod:`repro.power.estimator` — switching activity to power.
* :mod:`repro.power.transitions` — activation-transition distributions
  measured from systolic-array operand streams (paper Fig. 4a).
* :mod:`repro.power.binning` — partial-sum binning and bin-level
  transition distributions (paper Fig. 4b, Sec. III-A2).
* :mod:`repro.power.characterization` — the per-weight-value average
  power table (paper Fig. 2, Sec. III-A3).
"""

from repro.power.estimator import PowerEstimator
from repro.power.transitions import TransitionDistribution
from repro.power.binning import PartialSumBinner, BinnedTransitions
from repro.power.characterization import (
    WeightPowerCharacterizer,
    WeightPowerTable,
)

__all__ = [
    "PowerEstimator",
    "TransitionDistribution",
    "PartialSumBinner",
    "BinnedTransitions",
    "WeightPowerCharacterizer",
    "WeightPowerTable",
]
