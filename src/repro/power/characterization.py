"""Per-weight-value power characterization (paper Sec. III-A3, Fig. 2).

For every quantized weight value, the weight input of the MAC is frozen
and the unit is simulated under combined activation/partial-sum transition
stimuli sampled from the measured distributions (10 000 samples in the
paper).  The resulting switching activity priced with the cell library
gives the weight's average power.

A single global ``energy_scale`` is calibrated so the most expensive
weight matches the paper's Fig. 2 peak (the quantized weight -105 at
1066 µW); everything else — the shape of the curve, the zero-weight
minimum, the power ordering — is produced by the gate-level simulation.

Every weight value samples its stimulus from its own child RNG keyed on
``(seed, weight)``, which makes the table independent of the
characterization order and lets ``characterize(..., jobs=N)`` shard the
per-weight simulations across processes with bit-for-bit identical
results (calibration happens after the shards merge).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.mac import MacUnit
from repro.power.binning import BinnedTransitions
from repro.power.estimator import PowerEstimator
from repro.power.transitions import (
    TransitionDistribution,
    code_to_value,
)
from repro.sim.logic import bus_inputs, evaluate_words
from repro.sim.switching import paired_toggle_rates_words

#: Fig. 2 anchor: the most power-hungry weight value burns ~1066 µW.
ANCHOR_MAX_POWER_UW = 1066.0


def weight_seed_sequence(seed: int, weight: int) -> np.random.SeedSequence:
    """One independent RNG seed per characterized weight value.

    The child entropy is keyed on the *weight value* (not its position
    in the characterization order), so the stimulus drawn for a weight
    is identical no matter which other weights are characterized, in
    what order, or how the weight set is chunked across processes —
    the property the sharded characterization relies on for bit-for-bit
    equality with a serial run.
    """
    return np.random.SeedSequence(
        [int(seed) & 0xFFFFFFFF, int(weight) & 0xFFFFFFFF])


def _chunk_energies(task: Tuple["WeightPowerCharacterizer",
                                np.ndarray, int]) -> np.ndarray:
    """Worker entry point for sharded characterization (picklable)."""
    characterizer, weights, seed = task
    return characterizer.dynamic_energies_fj(weights, seed)


@dataclass
class WeightPowerTable:
    """Average MAC power per quantized weight value, in microwatts.

    Attributes:
        weights: Sorted array of characterized weight values.
        power_uw: Total (dynamic + leakage) average power per weight.
        dynamic_uw: Dynamic component per weight.
        leakage_uw: Leakage of one MAC (weight independent).
        clock_period_ps: Clock period the powers refer to.
        energy_scale: Calibration factor that was applied.
    """

    weights: np.ndarray
    power_uw: np.ndarray
    dynamic_uw: np.ndarray
    leakage_uw: float
    clock_period_ps: float
    energy_scale: float = 1.0

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.int64)
        self.power_uw = np.asarray(self.power_uw, dtype=np.float64)
        self.dynamic_uw = np.asarray(self.dynamic_uw, dtype=np.float64)
        if self.weights.shape != self.power_uw.shape:
            raise ValueError("weights/power arrays must align")
        order = np.argsort(self.weights)
        self.weights = self.weights[order]
        self.power_uw = self.power_uw[order]
        self.dynamic_uw = self.dynamic_uw[order]

    def power_of(self, weight: int) -> float:
        """Average power of one weight value in µW."""
        idx = np.searchsorted(self.weights, weight)
        if idx >= self.weights.size or self.weights[idx] != weight:
            raise KeyError(f"weight {weight} not characterized")
        return float(self.power_uw[idx])

    def dynamic_of(self, weight: int, interpolate: bool = False) -> float:
        """Dynamic power of one weight value in µW.

        Args:
            weight: Weight value to look up.
            interpolate: When the exact value was not characterized
                (reduced-scale runs characterize a subset), linearly
                interpolate between the nearest characterized neighbours
                instead of raising.
        """
        idx = np.searchsorted(self.weights, weight)
        if (idx < self.weights.size and self.weights[idx] == weight):
            return float(self.dynamic_uw[idx])
        if not interpolate:
            raise KeyError(f"weight {weight} not characterized")
        return float(np.interp(weight, self.weights, self.dynamic_uw))

    def as_dict(self) -> Dict[int, float]:
        """Plain ``{weight: power_uw}`` mapping."""
        return {int(w): float(p)
                for w, p in zip(self.weights, self.power_uw)}

    def select_below(self, threshold_uw: float,
                     always_keep: Sequence[int] = (0,)) -> np.ndarray:
        """Weight values whose power is at most ``threshold_uw``.

        ``always_keep`` values are retained regardless (the paper always
        keeps zero: it is both the pruning target and the cheapest value).
        """
        mask = self.power_uw <= threshold_uw
        keep = np.isin(self.weights, np.asarray(always_keep, dtype=np.int64))
        return self.weights[mask | keep]

    def count_below(self, threshold_uw: float) -> int:
        """Number of weight values at or below a power threshold."""
        return int((self.power_uw <= threshold_uw).sum())

    # ------------------------------------------------------------------
    # persistence (characterization is expensive; cache it)
    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        """Write the table as JSON."""
        payload = {
            "weights": self.weights.tolist(),
            "power_uw": self.power_uw.tolist(),
            "dynamic_uw": self.dynamic_uw.tolist(),
            "leakage_uw": self.leakage_uw,
            "clock_period_ps": self.clock_period_ps,
            "energy_scale": self.energy_scale,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "WeightPowerTable":
        """Read a table written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            weights=np.asarray(payload["weights"]),
            power_uw=np.asarray(payload["power_uw"]),
            dynamic_uw=np.asarray(payload["dynamic_uw"]),
            leakage_uw=payload["leakage_uw"],
            clock_period_ps=payload["clock_period_ps"],
            energy_scale=payload["energy_scale"],
        )


class WeightPowerCharacterizer:
    """Runs the Sec. III-A per-weight power characterization.

    Args:
        mac: MAC unit netlists.
        library: Cell library.
        act_transitions: Activation transition distribution (256 codes).
        psum_transitions: Binned partial-sum transition source.
        clock_period_ps: MAC clock period.
        n_samples: Combined transitions sampled per weight (paper: 10 000).
        calibrate_to_uw: Pin the maximum characterized power to this value
            (``None`` disables calibration).
    """

    def __init__(self, mac: MacUnit, library: CellLibrary,
                 act_transitions: TransitionDistribution,
                 psum_transitions: BinnedTransitions,
                 clock_period_ps: float = 180.0,
                 n_samples: int = 10000,
                 calibrate_to_uw: Optional[float] = ANCHOR_MAX_POWER_UW,
                 ) -> None:
        if act_transitions.n_codes != (1 << mac.act_bits):
            raise ValueError("activation distribution width mismatch")
        self.mac = mac
        self.library = library
        self.act_transitions = act_transitions
        self.psum_transitions = psum_transitions
        self.n_samples = n_samples
        self.calibrate_to_uw = calibrate_to_uw
        self.estimator = PowerEstimator(library, clock_period_ps)
        self._packed, self._energies = self.estimator.packed_energies(
            mac.full)

    def _dynamic_energy_fj(self, weight: int, rng: np.random.Generator
                           ) -> float:
        """Mean switching energy per cycle for one frozen weight value.

        The pre- and post-transition stimuli are evaluated as one
        stacked batch — a single pass over the netlist instead of two —
        through the bit-packed levelized kernel, and reduced straight
        from packed words to per-net toggle rates via popcount
        (bit-for-bit equal to the boolean-matrix path).
        """
        n = self.n_samples
        code_from, code_to = self.act_transitions.sample(n, rng)
        acts = code_to_value(np.concatenate([code_from, code_to]),
                             self.mac.act_bits)
        psum_from, psum_to = self.psum_transitions.sample_values(n, rng)

        feed = bus_inputs("act", acts, self.mac.act_bits)
        feed.update(bus_inputs(
            "w", np.full(2 * n, weight), self.mac.weight_bits))
        feed.update(bus_inputs(
            "psum", np.concatenate([psum_from, psum_to]),
            self.mac.psum_bits))

        values = evaluate_words(self._packed, feed, pair_halves=True)
        rates = paired_toggle_rates_words(values)
        return float(np.dot(rates, self._energies))

    def dynamic_energies_fj(self, weights: Sequence[int],
                            seed: int) -> np.ndarray:
        """Raw (uncalibrated) per-weight switching energies.

        Each weight draws its stimulus from its own child RNG (see
        :func:`weight_seed_sequence`), so the result for a weight is a
        pure function of ``(seed, weight)`` — independent of ordering,
        chunking, and of which other weights are in the set.
        """
        return np.array([
            self._dynamic_energy_fj(
                int(w),
                np.random.default_rng(weight_seed_sequence(seed, int(w))))
            for w in weights
        ])

    def characterize(self, weights: Optional[Iterable[int]] = None,
                     seed: int = 2023,
                     jobs: Optional[int] = 1) -> WeightPowerTable:
        """Build the per-weight power table.

        Args:
            weights: Weight values to characterize; defaults to the full
                symmetric 8-bit set -127..127 (255 values, matching the
                TensorFlow-style symmetric quantization of the paper).
            seed: RNG seed for stimulus sampling.
            jobs: Shard the per-weight simulations over this many
                processes (``None``/``1`` = serial, ``0`` = all cores).
                Thanks to per-weight seeding the sharded table is
                bit-for-bit identical to the serial one, so ``jobs``
                must never participate in cache keys.
        """
        if weights is None:
            half = 1 << (self.mac.weight_bits - 1)
            weights = range(-half + 1, half)
        weights = np.asarray(sorted(set(int(w) for w in weights)))

        if jobs is None:
            jobs = 1
        elif jobs == 0:
            jobs = os.cpu_count() or 1
        jobs = max(1, min(jobs, weights.size))
        if jobs == 1:
            energies_fj = self.dynamic_energies_fj(weights, seed)
        else:
            chunks = np.array_split(weights, jobs)
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                parts = list(pool.map(
                    _chunk_energies,
                    [(self, chunk, seed) for chunk in chunks]))
            energies_fj = np.concatenate(parts)
        dynamic_uw = energies_fj * self.estimator.frequency_ghz
        # Keyed on mac.full so it hits the __init__-time memo entry.
        leakage_uw = self.estimator.leakage_power_uw(self.mac.full)

        energy_scale = 1.0
        if self.calibrate_to_uw is not None and dynamic_uw.max() > 0:
            energy_scale = (
                (self.calibrate_to_uw - leakage_uw) / dynamic_uw.max()
            )
            dynamic_uw = dynamic_uw * energy_scale

        return WeightPowerTable(
            weights=weights,
            power_uw=dynamic_uw + leakage_uw,
            dynamic_uw=dynamic_uw,
            leakage_uw=leakage_uw,
            clock_period_ps=self.estimator.clock_period_ps,
            energy_scale=energy_scale,
        )
