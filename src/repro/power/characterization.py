"""Per-weight-value power characterization (paper Sec. III-A3, Fig. 2).

For every quantized weight value, the weight input of the MAC is frozen
and the unit is simulated under combined activation/partial-sum transition
stimuli sampled from the measured distributions (10 000 samples in the
paper).  The resulting switching activity priced with the cell library
gives the weight's average power.

A single global ``energy_scale`` is calibrated so the most expensive
weight matches the paper's Fig. 2 peak (the quantized weight -105 at
1066 µW); everything else — the shape of the curve, the zero-weight
minimum, the power ordering — is produced by the gate-level simulation.

Every weight value samples its stimulus from its own child RNG keyed on
``(seed, weight)``, which makes the table independent of the
characterization order and lets ``characterize(..., jobs=N)`` shard the
per-weight simulations across processes with bit-for-bit identical
results (calibration happens after the shards merge).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.mac import MacUnit
from repro.power.binning import BinnedTransitions
from repro.power.estimator import PowerEstimator
from repro.power.transitions import (
    TransitionDistribution,
    code_to_value,
)
from repro.sim.logic import bus_inputs, evaluate_words, evaluate_words_batched
from repro.sim.switching import (
    paired_toggle_rates_words,
    paired_toggle_rates_words_batched,
)

#: Fig. 2 anchor: the most power-hungry weight value burns ~1066 µW.
ANCHOR_MAX_POWER_UW = 1066.0

#: Hard memory ceiling (bytes) for the packed word matrix of one
#: megabatch launch — ``nets x (weights_per_chunk x words_per_weight)``
#: uint64.  The automatic chunk size never exceeds this, so the paper
#: scale (10 000 samples x 255 weights, ~0.7 GB if launched whole)
#: chunks instead of exhausting RAM.
BATCH_MEMORY_BUDGET_BYTES = 128 << 20

#: Preferred launch footprint (bytes) for automatic chunk sizing.
#: Bigger launches amortize schedule-dispatch overhead, but once the
#: word matrix outgrows the last-level cache every level of the
#: schedule walk streams from DRAM and throughput *drops* — measured on
#: the smoke netlist, chunks around this size are ~2x faster end-to-end
#: than RAM-budget-sized ones.  Explicit ``batch_weights`` overrides
#: are clamped only by :data:`BATCH_MEMORY_BUDGET_BYTES`.
BATCH_TARGET_BYTES = 8 << 20


def resolve_batch_weights(batch_weights: Optional[int], n_weights: int,
                          bytes_per_weight: int,
                          budget_bytes: int = BATCH_MEMORY_BUDGET_BYTES,
                          target_bytes: int = BATCH_TARGET_BYTES
                          ) -> int:
    """Weights per megabatch launch under the memory budget.

    Args:
        batch_weights: The knob: ``None``/``0`` sizes automatically
            (cache-friendly launches of ~``target_bytes``), ``1``
            disables batching (per-weight loop), ``N`` forces N-weight
            chunks (capped by the memory budget).
        n_weights: Total weights to characterize.
        bytes_per_weight: Dominant per-weight footprint of one launch
            (the weight's share of the packed word matrix).
        budget_bytes: Hard memory ceiling for the dominant allocation.
        target_bytes: Preferred launch footprint for automatic sizing.
    """
    bytes_per_weight = max(1, bytes_per_weight)
    cap = max(1, budget_bytes // bytes_per_weight)
    if batch_weights is None or batch_weights == 0:
        batch_weights = max(1, target_bytes // bytes_per_weight)
    return max(1, min(int(batch_weights), cap, n_weights))


def weight_seed_sequence(seed: int, weight: int) -> np.random.SeedSequence:
    """One independent RNG seed per characterized weight value.

    The child entropy is keyed on the *weight value* (not its position
    in the characterization order), so the stimulus drawn for a weight
    is identical no matter which other weights are characterized, in
    what order, or how the weight set is chunked across processes —
    the property the sharded characterization relies on for bit-for-bit
    equality with a serial run.
    """
    return np.random.SeedSequence(
        [int(seed) & 0xFFFFFFFF, int(weight) & 0xFFFFFFFF])


def _chunk_energies(task: Tuple["WeightPowerCharacterizer",
                                np.ndarray, int, Optional[int]]
                    ) -> np.ndarray:
    """Worker entry point for sharded characterization (picklable).

    Process sharding composes on top of weight batching: each shard
    runs its own slice of the weight set through the one-launch megabatch
    path (or the per-weight loop when ``batch_weights == 1``).
    """
    characterizer, weights, seed, batch_weights = task
    if batch_weights == 1:
        return characterizer.dynamic_energies_fj(weights, seed)
    return characterizer.dynamic_energies_fj_batched(
        weights, seed, batch_weights=batch_weights)


@dataclass
class WeightPowerTable:
    """Average MAC power per quantized weight value, in microwatts.

    Attributes:
        weights: Sorted array of characterized weight values.
        power_uw: Total (dynamic + leakage) average power per weight.
        dynamic_uw: Dynamic component per weight.
        leakage_uw: Leakage of one MAC (weight independent).
        clock_period_ps: Clock period the powers refer to.
        energy_scale: Calibration factor that was applied.
    """

    weights: np.ndarray
    power_uw: np.ndarray
    dynamic_uw: np.ndarray
    leakage_uw: float
    clock_period_ps: float
    energy_scale: float = 1.0

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.int64)
        self.power_uw = np.asarray(self.power_uw, dtype=np.float64)
        self.dynamic_uw = np.asarray(self.dynamic_uw, dtype=np.float64)
        if self.weights.shape != self.power_uw.shape:
            raise ValueError("weights/power arrays must align")
        order = np.argsort(self.weights)
        self.weights = self.weights[order]
        self.power_uw = self.power_uw[order]
        self.dynamic_uw = self.dynamic_uw[order]

    def power_of(self, weight: int) -> float:
        """Average power of one weight value in µW."""
        idx = np.searchsorted(self.weights, weight)
        if idx >= self.weights.size or self.weights[idx] != weight:
            raise KeyError(f"weight {weight} not characterized")
        return float(self.power_uw[idx])

    def dynamic_of(self, weight: int, interpolate: bool = False) -> float:
        """Dynamic power of one weight value in µW.

        Args:
            weight: Weight value to look up.
            interpolate: When the exact value was not characterized
                (reduced-scale runs characterize a subset), linearly
                interpolate between the nearest characterized neighbours
                instead of raising.
        """
        idx = np.searchsorted(self.weights, weight)
        if (idx < self.weights.size and self.weights[idx] == weight):
            return float(self.dynamic_uw[idx])
        if not interpolate:
            raise KeyError(f"weight {weight} not characterized")
        return float(np.interp(weight, self.weights, self.dynamic_uw))

    def as_dict(self) -> Dict[int, float]:
        """Plain ``{weight: power_uw}`` mapping."""
        return {int(w): float(p)
                for w, p in zip(self.weights, self.power_uw)}

    def select_below(self, threshold_uw: float,
                     always_keep: Sequence[int] = (0,)) -> np.ndarray:
        """Weight values whose power is at most ``threshold_uw``.

        ``always_keep`` values are retained regardless (the paper always
        keeps zero: it is both the pruning target and the cheapest value).
        """
        mask = self.power_uw <= threshold_uw
        keep = np.isin(self.weights, np.asarray(always_keep, dtype=np.int64))
        return self.weights[mask | keep]

    def count_below(self, threshold_uw: float) -> int:
        """Number of weight values at or below a power threshold."""
        return int((self.power_uw <= threshold_uw).sum())

    # ------------------------------------------------------------------
    # persistence (characterization is expensive; cache it)
    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        """Write the table as JSON."""
        payload = {
            "weights": self.weights.tolist(),
            "power_uw": self.power_uw.tolist(),
            "dynamic_uw": self.dynamic_uw.tolist(),
            "leakage_uw": self.leakage_uw,
            "clock_period_ps": self.clock_period_ps,
            "energy_scale": self.energy_scale,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "WeightPowerTable":
        """Read a table written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            weights=np.asarray(payload["weights"]),
            power_uw=np.asarray(payload["power_uw"]),
            dynamic_uw=np.asarray(payload["dynamic_uw"]),
            leakage_uw=payload["leakage_uw"],
            clock_period_ps=payload["clock_period_ps"],
            energy_scale=payload["energy_scale"],
        )


class WeightPowerCharacterizer:
    """Runs the Sec. III-A per-weight power characterization.

    Args:
        mac: MAC unit netlists.
        library: Cell library.
        act_transitions: Activation transition distribution (256 codes).
        psum_transitions: Binned partial-sum transition source.
        clock_period_ps: MAC clock period.
        n_samples: Combined transitions sampled per weight (paper: 10 000).
        calibrate_to_uw: Pin the maximum characterized power to this value
            (``None`` disables calibration).
    """

    def __init__(self, mac: MacUnit, library: CellLibrary,
                 act_transitions: TransitionDistribution,
                 psum_transitions: BinnedTransitions,
                 clock_period_ps: float = 180.0,
                 n_samples: int = 10000,
                 calibrate_to_uw: Optional[float] = ANCHOR_MAX_POWER_UW,
                 ) -> None:
        if act_transitions.n_codes != (1 << mac.act_bits):
            raise ValueError("activation distribution width mismatch")
        self.mac = mac
        self.library = library
        self.act_transitions = act_transitions
        self.psum_transitions = psum_transitions
        self.n_samples = n_samples
        self.calibrate_to_uw = calibrate_to_uw
        self.estimator = PowerEstimator(library, clock_period_ps)
        self._packed, self._energies = self.estimator.packed_energies(
            mac.full)

    def _sample_stimulus(self, rng: np.random.Generator
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """One weight's ``(acts, psums)`` stimulus, stacked before/after.

        Draw order (activations first, then partial sums) is part of
        the bit-for-bit contract: every path — per-weight, batched,
        sharded — consumes the weight's child generator identically.
        """
        n = self.n_samples
        code_from, code_to = self.act_transitions.sample(n, rng)
        acts = code_to_value(np.concatenate([code_from, code_to]),
                             self.mac.act_bits)
        psum_from, psum_to = self.psum_transitions.sample_values(n, rng)
        return acts, np.concatenate([psum_from, psum_to])

    def _dynamic_energy_fj(self, weight: int, rng: np.random.Generator
                           ) -> float:
        """Mean switching energy per cycle for one frozen weight value.

        The pre- and post-transition stimuli are evaluated as one
        stacked batch — a single pass over the netlist instead of two —
        through the bit-packed levelized kernel, and reduced straight
        from packed words to per-net toggle rates via popcount
        (bit-for-bit equal to the boolean-matrix path).  The frozen
        weight bus is spliced in as per-wire scalars (broadcast at
        input-matrix build), not re-expanded to ``2 n`` copies per
        weight.
        """
        acts, psums = self._sample_stimulus(rng)
        feed = bus_inputs("act", acts, self.mac.act_bits)
        feed.update(bus_inputs(
            "w", np.int64(weight), self.mac.weight_bits))
        feed.update(bus_inputs("psum", psums, self.mac.psum_bits))

        values = evaluate_words(self._packed, feed, pair_halves=True)
        rates = paired_toggle_rates_words(values)
        return float(np.dot(rates, self._energies))

    def dynamic_energies_fj(self, weights: Sequence[int],
                            seed: int) -> np.ndarray:
        """Raw (uncalibrated) per-weight switching energies.

        Each weight draws its stimulus from its own child RNG (see
        :func:`weight_seed_sequence`), so the result for a weight is a
        pure function of ``(seed, weight)`` — independent of ordering,
        chunking, and of which other weights are in the set.

        This is the per-weight oracle the one-launch megabatch path
        (:meth:`dynamic_energies_fj_batched`) is equivalence-tested
        against.
        """
        return np.array([
            self._dynamic_energy_fj(
                int(w),
                np.random.default_rng(weight_seed_sequence(seed, int(w))))
            for w in weights
        ])

    def dynamic_energies_fj_batched(self, weights: Sequence[int],
                                    seed: int,
                                    batch_weights: Optional[int] = None
                                    ) -> np.ndarray:
        """One-launch (megabatch) twin of :meth:`dynamic_energies_fj`.

        Per-weight stimuli still come from the same ``(seed, weight)``
        child RNGs — drawn per weight, bit-for-bit as before — but the
        packed evaluation stacks every weight's stimulus along the
        sample axis and walks the level schedule **once** per chunk,
        amortizing the schedule-dispatch and input-packing overhead the
        per-weight loop pays 2^16-scale times over.  Toggle energies
        reduce per weight segment through the segmented popcount
        without materializing any dense per-net matrix.  Both halves of
        the launch pick up the compiled backend automatically: the walk
        runs the level program (:mod:`repro.sim.compiled`; JIT
        interpreter when numba is installed, vectorized program
        executor otherwise) and, under the JIT, the per-segment toggle
        counts come from the fused XOR+popcount kernel so the XOR word
        matrix is never materialized either.

        Results are bit-for-bit identical to the per-weight path for
        any ``batch_weights`` chunking — word-wise gate ops never mix
        samples, each segment's packed layout matches its standalone
        evaluation, and the final per-weight dot products run over the
        same contiguous float vectors.

        Args:
            weights: Weight values, characterized in the given order.
            seed: Stimulus seed (same meaning as the per-weight path).
            batch_weights: Weights per kernel launch; ``None``/``0``
                sizes chunks automatically from
                :data:`BATCH_MEMORY_BUDGET_BYTES`.
        """
        weights = [int(w) for w in weights]
        n = self.n_samples
        act_bits = self.mac.act_bits
        psum_bits = self.mac.psum_bits
        # Dominant footprint: the (nets, weights x words-per-weight)
        # uint64 word matrix of one launch.
        words_per_weight = 2 * (-(-n // 64))
        bytes_per_weight = len(self._packed) * words_per_weight * 8
        chunk_size = resolve_batch_weights(batch_weights, len(weights),
                                           bytes_per_weight)

        energies = np.empty(len(weights), dtype=np.float64)
        for start in range(0, len(weights), chunk_size):
            chunk = weights[start:start + chunk_size]
            acts = np.empty((len(chunk), 2 * n), dtype=np.int64)
            psums = np.empty((len(chunk), 2 * n), dtype=np.int64)
            for k, weight in enumerate(chunk):
                rng = np.random.default_rng(
                    weight_seed_sequence(seed, weight))
                acts[k], psums[k] = self._sample_stimulus(rng)

            feed = bus_inputs("act", acts, act_bits)
            # Per-segment frozen weight bus: an (n_weights, 1) column
            # broadcasts each weight's bits across its whole segment.
            feed.update(bus_inputs(
                "w", np.asarray(chunk, dtype=np.int64)[:, None],
                self.mac.weight_bits))
            feed.update(bus_inputs("psum", psums, psum_bits))

            values = evaluate_words_batched(self._packed, feed,
                                            pair_halves=True)
            rates = paired_toggle_rates_words_batched(values)
            for k in range(len(chunk)):
                energies[start + k] = float(
                    np.dot(rates[k], self._energies))
        return energies

    def characterize(self, weights: Optional[Iterable[int]] = None,
                     seed: int = 2023,
                     jobs: Optional[int] = 1,
                     batch_weights: Optional[int] = None
                     ) -> WeightPowerTable:
        """Build the per-weight power table.

        Args:
            weights: Weight values to characterize; defaults to the full
                symmetric 8-bit set -127..127 (255 values, matching the
                TensorFlow-style symmetric quantization of the paper).
            seed: RNG seed for stimulus sampling.
            jobs: Shard the per-weight simulations over this many
                processes (``None``/``1`` = serial, ``0`` = all cores).
                Thanks to per-weight seeding the sharded table is
                bit-for-bit identical to the serial one, so ``jobs``
                must never participate in cache keys.
            batch_weights: Weights per megabatch kernel launch
                (``None``/``0`` = automatic memory-capped chunks, ``1``
                = the per-weight oracle loop).  Batching is bit-for-bit
                identical to the per-weight loop and composes with
                ``jobs`` (each shard batches its own slice), so this
                knob must never participate in cache keys either.
        """
        if weights is None:
            half = 1 << (self.mac.weight_bits - 1)
            weights = range(-half + 1, half)
        weights = np.asarray(sorted(set(int(w) for w in weights)))

        if jobs is None:
            jobs = 1
        elif jobs == 0:
            jobs = os.cpu_count() or 1
        jobs = max(1, min(jobs, weights.size))
        if jobs == 1:
            energies_fj = _chunk_energies(
                (self, weights, seed, batch_weights))
        else:
            chunks = np.array_split(weights, jobs)
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                parts = list(pool.map(
                    _chunk_energies,
                    [(self, chunk, seed, batch_weights)
                     for chunk in chunks]))
            energies_fj = np.concatenate(parts)
        dynamic_uw = energies_fj * self.estimator.frequency_ghz
        # Keyed on mac.full so it hits the __init__-time memo entry.
        leakage_uw = self.estimator.leakage_power_uw(self.mac.full)

        energy_scale = 1.0
        if self.calibrate_to_uw is not None and dynamic_uw.max() > 0:
            energy_scale = (
                (self.calibrate_to_uw - leakage_uw) / dynamic_uw.max()
            )
            dynamic_uw = dynamic_uw * energy_scale

        return WeightPowerTable(
            weights=weights,
            power_uw=dynamic_uw + leakage_uw,
            dynamic_uw=dynamic_uw,
            leakage_uw=leakage_uw,
            clock_period_ps=self.estimator.clock_period_ps,
            energy_scale=energy_scale,
        )
