"""Partial-sum binning and bin-level transitions (paper Sec. III-A2).

A 22-bit partial sum has ~1.8e13 possible transitions — far more than any
simulation can populate.  The paper therefore groups partial sums into a
small number of bins (50 in the experiments) by *bit-pattern similarity*:
bins are seeded with randomly chosen partial sums, and every further value
joins the bin whose members differ from it in the fewest bits on average.
Transition statistics are then collected between bins, and stimulus
sampling draws a concrete member value from each bin.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.power.transitions import TransitionDistribution
from repro.sim.logic import int_to_bits


class PartialSumBinner:
    """Bit-similarity binning of partial-sum values.

    The average Hamming distance between a value and a bin's members
    equals the distance between the value's bit vector and the bin's
    *centroid* (per-bit mean), so assignment works on centroids and stays
    cheap even for large observation sets.

    Args:
        n_bins: Number of bins (50 in the paper).
        bits: Partial-sum width (22 for the 64x64 array).
        exemplars_per_bin: How many concrete member values to remember per
            bin for stimulus generation.
    """

    def __init__(self, n_bins: int = 50, bits: int = 22,
                 exemplars_per_bin: int = 64) -> None:
        if n_bins < 2:
            raise ValueError("need at least two bins")
        self.n_bins = n_bins
        self.bits = bits
        self.exemplars_per_bin = exemplars_per_bin
        self._centroids: Optional[np.ndarray] = None  # (n_bins, bits)
        self._counts: Optional[np.ndarray] = None
        self._exemplars: Optional[List[np.ndarray]] = None
        # Lazy dense views of the exemplars backing sample_members:
        # a padded (n_bins, max_members) matrix plus per-bin sizes.
        self._exemplar_matrix: Optional[np.ndarray] = None
        self._exemplar_sizes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, observed: np.ndarray,
            rng: Optional[np.random.Generator] = None,
            chunk: int = 65536) -> "PartialSumBinner":
        """Build the bins from observed partial-sum values.

        Follows the paper's procedure: random seeding, then a single
        sequential pass assigning each value to the closest bin (measured
        as mean bit difference) while the centroids track their members.
        """
        rng = rng or np.random.default_rng()
        observed = np.asarray(observed, dtype=np.int64).ravel()
        if observed.size < self.n_bins:
            raise ValueError(
                f"need at least {self.n_bins} observations, "
                f"got {observed.size}"
            )
        order = rng.permutation(observed.size)
        observed = observed[order]

        # Prefer distinct seeds so bins do not collapse onto each other.
        distinct = np.unique(observed)
        if distinct.size >= self.n_bins:
            seeds = rng.choice(distinct, size=self.n_bins, replace=False)
        else:
            seeds = observed[: self.n_bins]
        centroids = int_to_bits(seeds, self.bits).astype(np.float64)
        counts = np.ones(self.n_bins, dtype=np.int64)
        exemplars: List[List[int]] = [[int(s)] for s in seeds]

        for start in range(0, observed.size, chunk):
            values = observed[start:start + chunk]
            bits = int_to_bits(values, self.bits).astype(np.float64)
            assigned = self._nearest_bins(bits, centroids)
            for b in range(self.n_bins):
                members = bits[assigned == b]
                if not members.size:
                    continue
                m = members.shape[0]
                centroids[b] = (
                    centroids[b] * counts[b] + members.sum(axis=0)
                ) / (counts[b] + m)
                counts[b] += m
                room = self.exemplars_per_bin - len(exemplars[b])
                if room > 0:
                    chosen = values[assigned == b][:room]
                    exemplars[b].extend(int(v) for v in chosen)

        self._centroids = centroids
        self._counts = counts
        self._exemplars = [np.asarray(e, dtype=np.int64) for e in exemplars]
        self._exemplar_matrix = None
        self._exemplar_sizes = None
        return self

    @staticmethod
    def _nearest_bins(bits: np.ndarray,
                      centroids: np.ndarray) -> np.ndarray:
        """Closest bin per bit vector, by expected Hamming distance.

        For 0/1 bits the expected Hamming distance to a centroid ``c`` is
        ``sum(c) + bits @ (1 - 2c)``, which turns the whole assignment
        into one matmul instead of a dense 3-D broadcast.
        """
        offsets = centroids.sum(axis=1)  # (n_bins,)
        distance = offsets[None, :] + bits @ (1.0 - 2.0 * centroids.T)
        return distance.argmin(axis=1)

    @property
    def fitted(self) -> bool:
        return self._centroids is not None

    def _require_fit(self) -> None:
        if not self.fitted:
            raise RuntimeError("binner not fitted; call fit() first")

    # ------------------------------------------------------------------
    # use
    # ------------------------------------------------------------------
    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin index of each value (nearest centroid in mean bit diff)."""
        self._require_fit()
        values = np.asarray(values, dtype=np.int64)
        bits = int_to_bits(values.ravel(), self.bits).astype(np.float64)
        assigned = self._nearest_bins(bits, self._centroids)
        return assigned.reshape(values.shape)

    def sample_members(self, bin_ids: np.ndarray,
                       rng: Optional[np.random.Generator] = None
                       ) -> np.ndarray:
        """Draw one concrete partial-sum value per requested bin.

        Bit-for-bit identical to the historical per-bin
        ``out[bin_ids == b] = rng.choice(members, size=...)`` loop
        (property-tested against it), consuming the generator
        identically: ``rng.choice(members, size=m)`` with replacement
        draws exactly ``rng.integers(0, members.size, size=m)`` indices
        but re-validates its arguments per call — ~2x the cost when
        called once per occupied bin per weight.  A stable argsort
        groups each bin's positions contiguously (ascending original
        index, the same fill order the boolean mask produced);
        consecutive bins sharing a member count fold into a *single*
        ``integers`` call (element-wise bounded generation consumes the
        bit stream identically whether drawn in one call or several,
        property-tested), and a padded exemplar matrix turns the member
        lookup into one vectorized gather.
        """
        self._require_fit()
        rng = rng or np.random.default_rng()
        bin_ids = np.asarray(bin_ids, dtype=np.int64).ravel()
        out = np.empty(bin_ids.size, dtype=np.int64)
        if not bin_ids.size:
            return out
        matrix, sizes = self._exemplar_views()
        order = np.argsort(bin_ids, kind="stable")
        sorted_ids = bin_ids[order]
        run_starts = [0] + (np.nonzero(sorted_ids[1:]
                                       != sorted_ids[:-1])[0]
                            + 1).tolist() + [bin_ids.size]
        draws = np.empty(bin_ids.size, dtype=np.int64)
        n_runs = len(run_starts) - 1
        i = 0
        while i < n_runs:
            lo = run_starts[i]
            bound = sizes[sorted_ids[lo]]
            j = i + 1
            while (j < n_runs
                   and sizes[sorted_ids[run_starts[j]]] == bound):
                j += 1
            hi = run_starts[j]
            draws[lo:hi] = rng.integers(0, bound, size=hi - lo)
            i = j
        out[order] = matrix[sorted_ids, draws]
        return out

    def _exemplar_views(self) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(n_bins, max_members)`` exemplar matrix + sizes.

        Built lazily from the ragged exemplar lists (immutable after
        :meth:`fit`); padding slots are never indexed because sampled
        member indices are always below the owning bin's size.
        """
        if getattr(self, "_exemplar_matrix", None) is None:
            sizes = np.array([e.size for e in self._exemplars],
                             dtype=np.int64)
            matrix = np.zeros((self.n_bins, int(sizes.max())),
                              dtype=np.int64)
            for b, members in enumerate(self._exemplars):
                matrix[b, :members.size] = members
            self._exemplar_matrix = matrix
            self._exemplar_sizes = sizes
        return self._exemplar_matrix, self._exemplar_sizes

    def bin_sizes(self) -> np.ndarray:
        """Number of observations absorbed by each bin during fitting."""
        self._require_fit()
        return self._counts.copy()


class BinnedTransitions:
    """Bin-level transition distribution of the partial sums (Fig. 4b)."""

    def __init__(self, binner: PartialSumBinner,
                 distribution: TransitionDistribution) -> None:
        if distribution.n_codes != binner.n_bins:
            raise ValueError("distribution size must equal bin count")
        self.binner = binner
        self.distribution = distribution

    @classmethod
    def from_stream(cls, binner: PartialSumBinner,
                    psum_stream: np.ndarray) -> "BinnedTransitions":
        """Count transitions between the bins of consecutive partial sums."""
        bins = binner.assign(np.asarray(psum_stream).ravel())
        dist = TransitionDistribution.from_stream(bins, binner.n_bins)
        return cls(binner, dist)

    def sample_values(self, n_samples: int,
                      rng: Optional[np.random.Generator] = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw concrete ``(psum_from, psum_to)`` stimulus pairs.

        Bin pairs are drawn from the bin-transition distribution and then
        materialized with a stored member value of each bin, which is how
        the characterizer turns bin statistics back into bit patterns.
        """
        rng = rng or np.random.default_rng()
        bin_from, bin_to = self.distribution.sample(n_samples, rng)
        return (self.binner.sample_members(bin_from, rng),
                self.binner.sample_members(bin_to, rng))
