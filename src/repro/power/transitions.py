"""Operand-transition distributions (paper Sec. III-A1, Fig. 4a).

The power a MAC burns for a given weight depends on *which* activation and
partial-sum transitions it sees, so the paper measures transition
distributions from real workloads running on the systolic array and then
samples characterization stimuli from them.  This module provides the
generic distribution object used for both operands, plus the synthetic
diagonal-heavy model observed in Fig. 4a for use before any workload has
been simulated.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class TransitionDistribution:
    """Joint distribution over ``(code_from, code_to)`` transitions.

    Codes are consecutive integers ``0..n_codes-1``; for 8-bit signed
    operands the canonical mapping is ``code = value + 128`` (see
    :func:`value_to_code`).  The matrix is stored row-major:
    ``matrix[i, j]`` is the probability of a transition from code ``i`` to
    code ``j``.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("transition matrix must be square")
        total = matrix.sum()
        if total <= 0:
            raise ValueError("transition matrix must have positive mass")
        if (matrix < 0).any():
            raise ValueError("transition probabilities must be >= 0")
        self.matrix = matrix / total
        #: Cached inverse CDF backing :meth:`sample` (built lazily).
        self._cdf: Optional[np.ndarray] = None

    @property
    def n_codes(self) -> int:
        return self.matrix.shape[0]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_stream(cls, codes: np.ndarray,
                    n_codes: int) -> "TransitionDistribution":
        """Estimate from a time-ordered stream of operand codes.

        Consecutive stream elements form one transition each, exactly the
        statistic the paper counts while simulating 100 images.
        """
        codes = np.asarray(codes, dtype=np.int64).ravel()
        if codes.size < 2:
            raise ValueError("need at least two samples to see a transition")
        cls._check_codes(codes, n_codes)
        pairs = codes[:-1] * n_codes + codes[1:]
        counts = np.bincount(pairs, minlength=n_codes * n_codes)
        return cls(counts.reshape(n_codes, n_codes).astype(np.float64))

    @classmethod
    def from_pairs(cls, code_from: np.ndarray, code_to: np.ndarray,
                   n_codes: int) -> "TransitionDistribution":
        """Estimate from explicit ``(from, to)`` transition pairs."""
        code_from = np.asarray(code_from, dtype=np.int64).ravel()
        code_to = np.asarray(code_to, dtype=np.int64).ravel()
        if code_from.shape != code_to.shape:
            raise ValueError("from/to arrays must have the same length")
        cls._check_codes(code_from, n_codes)
        cls._check_codes(code_to, n_codes)
        pairs = code_from * n_codes + code_to
        counts = np.bincount(pairs, minlength=n_codes * n_codes)
        return cls(counts.reshape(n_codes, n_codes).astype(np.float64))

    @classmethod
    def uniform(cls, n_codes: int) -> "TransitionDistribution":
        """All transitions equally likely (worst-case stimulus)."""
        return cls(np.full((n_codes, n_codes), 1.0 / (n_codes * n_codes)))

    @classmethod
    def diagonal(cls, n_codes: int, bandwidth: float = 12.0,
                 uniform_floor: float = 0.02) -> "TransitionDistribution":
        """Synthetic diagonal-heavy distribution in the shape of Fig. 4a.

        Most transitions move between nearby values; far jumps are rare.
        ``uniform_floor`` mixes in a small uniform component so no
        transition has exactly zero probability.
        """
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        idx = np.arange(n_codes, dtype=np.float64)
        distance = np.abs(idx[:, None] - idx[None, :])
        matrix = np.exp(-0.5 * (distance / bandwidth) ** 2)
        matrix = matrix / matrix.sum()
        floor = np.full_like(matrix, 1.0 / matrix.size)
        return cls((1 - uniform_floor) * matrix + uniform_floor * floor)

    @staticmethod
    def _check_codes(codes: np.ndarray, n_codes: int) -> None:
        if codes.size and (codes.min() < 0 or codes.max() >= n_codes):
            raise ValueError(
                f"codes outside [0, {n_codes}): "
                f"[{codes.min()}, {codes.max()}]"
            )

    # ------------------------------------------------------------------
    # use
    # ------------------------------------------------------------------
    def sample(self, n_samples: int,
               rng: Optional[np.random.Generator] = None,
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``(code_from, code_to)`` pairs according to the matrix.

        Bit-for-bit identical to
        ``rng.choice(matrix.size, size=n_samples, p=matrix.ravel())``
        (the implementation through PR 5), consuming the generator
        identically: ``Generator.choice`` inverts the cumulative
        distribution against ``rng.random(n_samples)`` uniforms, but
        rebuilds (and re-validates) the 2^16-element cumsum on *every*
        call — a fixed cost the per-weight characterization paid 255
        times over.  The inverse CDF only depends on the (immutable)
        matrix, so it is built once and cached; the equivalence is
        property-tested against ``rng.choice`` itself.
        """
        rng = rng or np.random.default_rng()
        cdf = self._cdf
        if cdf is None:
            cdf = self.matrix.ravel().cumsum()
            cdf /= cdf[-1]
            self._cdf = cdf
        uniforms = rng.random(n_samples)
        if cdf.size >= 4096:
            # Sorted keys walk near-identical binary-search paths, so
            # the large CDF stays cache-hot; per-key results (and hence
            # the output) are unchanged by the search order.
            order = np.argsort(uniforms)
            drawn = np.empty(n_samples, dtype=np.intp)
            drawn[order] = cdf.searchsorted(uniforms[order], side="right")
        else:
            drawn = cdf.searchsorted(uniforms, side="right")
        return drawn // self.n_codes, drawn % self.n_codes

    def marginal_from(self) -> np.ndarray:
        """Probability of each code appearing as the transition source."""
        return self.matrix.sum(axis=1)

    def marginal_to(self) -> np.ndarray:
        """Probability of each code appearing as the transition target."""
        return self.matrix.sum(axis=0)

    def diagonal_mass(self, band: int = 8) -> float:
        """Probability mass within ``band`` codes of the diagonal.

        A quick scalar summary of the Fig. 4a structure: real workloads
        show most mass close to the diagonal.
        """
        idx = np.arange(self.n_codes)
        mask = np.abs(idx[:, None] - idx[None, :]) <= band
        return float(self.matrix[mask].sum())

    def restricted(self, allowed_codes: np.ndarray
                   ) -> "TransitionDistribution":
        """Distribution conditioned on both endpoints being allowed.

        Used after activation selection: transitions involving removed
        activation values can no longer occur.
        """
        allowed = np.zeros(self.n_codes, dtype=bool)
        allowed[np.asarray(allowed_codes, dtype=np.int64)] = True
        matrix = self.matrix * allowed[:, None] * allowed[None, :]
        if matrix.sum() <= 0:
            raise ValueError("restriction removed all probability mass")
        return TransitionDistribution(matrix)


def value_to_code(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Map signed two's-complement values to dense codes ``0..2**bits-1``."""
    values = np.asarray(values, dtype=np.int64)
    half = 1 << (bits - 1)
    if values.size and (values.min() < -half or values.max() >= half):
        raise ValueError(f"values outside signed {bits}-bit range")
    return values + half


def code_to_value(codes: np.ndarray, bits: int = 8) -> np.ndarray:
    """Inverse of :func:`value_to_code`."""
    codes = np.asarray(codes, dtype=np.int64)
    half = 1 << (bits - 1)
    if codes.size and (codes.min() < 0 or codes.max() >= (1 << bits)):
        raise ValueError(f"codes outside [0, {1 << bits})")
    return codes - half
