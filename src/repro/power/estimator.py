"""Switching activity to power, in the Power Compiler style.

Given per-net toggle rates from logic simulation and the per-cell energy
models of the library, dynamic power is the activity-weighted sum of cell
switching energies times the clock frequency; leakage is the sum of cell
leakage numbers.  Voltage scaling multiplies both components by the laws
in :mod:`repro.cells.voltage`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.cells.library import CellLibrary
from repro.cells.voltage import VoltageModel
from repro.netlist.gates import Netlist, PackedNetlist


@dataclass(frozen=True)
class PowerBreakdown:
    """Dynamic/leakage split of a power estimate, in microwatts."""

    dynamic_uw: float
    leakage_uw: float

    @property
    def total_uw(self) -> float:
        return self.dynamic_uw + self.leakage_uw

    def scaled(self, dynamic_factor: float,
               leakage_factor: float) -> "PowerBreakdown":
        """Component-wise scaling (e.g. for supply-voltage scaling)."""
        return PowerBreakdown(self.dynamic_uw * dynamic_factor,
                              self.leakage_uw * leakage_factor)

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(self.dynamic_uw + other.dynamic_uw,
                              self.leakage_uw + other.leakage_uw)


class PowerEstimator:
    """Computes netlist power from toggle statistics.

    Args:
        library: Cell library supplying energies and leakage.
        clock_period_ps: Clock period; the paper's array runs at ~180 ps
            ("around 5 GHz").
        energy_scale: Global calibration factor applied to dynamic energy
            (used to pin the Fig. 2 anchor points).
        voltage_model: Scaling laws used when estimating at a non-nominal
            supply voltage.
    """

    def __init__(self, library: CellLibrary, clock_period_ps: float = 180.0,
                 energy_scale: float = 1.0,
                 voltage_model: Optional[VoltageModel] = None) -> None:
        if clock_period_ps <= 0:
            raise ValueError("clock period must be positive")
        self.library = library
        self.clock_period_ps = clock_period_ps
        self.energy_scale = energy_scale
        self.voltage_model = voltage_model or VoltageModel(
            vdd_nom=library.nominal_voltage
        )
        # (packed view, per-net energies) memoized per *caller-supplied*
        # netlist object — the stable identity across repeated
        # estimates — so passing the same Netlist many times neither
        # re-packs it nor re-walks the library per gate.  Capped so a
        # caller streaming fresh netlists cannot grow it unboundedly.
        self._energy_cache: Dict[int, Tuple[object, PackedNetlist,
                                            np.ndarray]] = {}

    _ENERGY_CACHE_MAX = 16

    def packed_energies(self, netlist: Union[Netlist, PackedNetlist]
                        ) -> Tuple[PackedNetlist, np.ndarray]:
        """Packed view + per-net switching energies, memoized.

        Keyed on the identity of ``netlist`` itself, so callers that
        hold one circuit and estimate repeatedly (the characterization
        hot path) pay the per-type library lookup once.  The packed
        view's level schedule and its compiled level program are built
        eagerly here, so the simulation kernels it feeds (and any
        workers the memoized view is shipped to) never pay the
        levelization or program flattening inside their inner loops.
        """
        entry = self._energy_cache.get(id(netlist))
        if entry is None or entry[0] is not netlist:
            packed = (netlist if isinstance(netlist, PackedNetlist)
                      else netlist.packed())
            packed.schedule  # build + cache the levelized plan
            packed.program   # ... and its compiled level program
            if len(self._energy_cache) >= self._ENERGY_CACHE_MAX:
                self._energy_cache.clear()
            entry = (netlist, packed, packed.gate_energies(self.library))
            self._energy_cache[id(netlist)] = entry
        return entry[1], entry[2]

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency in GHz."""
        return 1000.0 / self.clock_period_ps

    def dynamic_power_uw(self, netlist: Union[Netlist, PackedNetlist],
                         toggle_rates: np.ndarray,
                         vdd: Optional[float] = None) -> float:
        """Dynamic power in µW for per-net toggle probabilities per cycle.

        ``fJ/cycle x GHz = µW`` keeps the unit bookkeeping trivial.
        """
        __, energies = self.packed_energies(netlist)
        energy_fj = float(np.dot(toggle_rates, energies))
        power = energy_fj * self.frequency_ghz * self.energy_scale
        if vdd is not None:
            power *= self.voltage_model.dynamic_power_scale(vdd)
        return power

    def leakage_power_uw(self, netlist: Union[Netlist, PackedNetlist],
                         vdd: Optional[float] = None) -> float:
        """Leakage power in µW of all cells in the netlist."""
        packed, __ = self.packed_energies(netlist)
        power = packed.total_leakage_nw(self.library) / 1000.0
        if vdd is not None:
            power *= self.voltage_model.leakage_power_scale(vdd)
        return power

    def power(self, netlist: Union[Netlist, PackedNetlist],
              toggle_rates: np.ndarray,
              vdd: Optional[float] = None) -> PowerBreakdown:
        """Full dynamic + leakage estimate as a :class:`PowerBreakdown`."""
        return PowerBreakdown(
            dynamic_uw=self.dynamic_power_uw(netlist, toggle_rates, vdd),
            leakage_uw=self.leakage_power_uw(netlist, vdd),
        )
