"""Parametric standard-cell library.

The paper synthesizes its systolic array with the NanGate 15 nm open cell
library and reads per-cell delay/energy numbers from it via Synopsys tools.
Offline we model each cell with four numbers:

* ``delay_ps`` — pin-to-output propagation delay at the nominal supply
  voltage (0.8 V for the 15 nm library).
* ``energy_fj`` — energy dissipated per *output toggle* (internal energy
  plus the energy of charging the average output load).
* ``leakage_nw`` — static leakage power of the cell at the nominal voltage.
* ``input_cap_ff`` — input pin capacitance, kept for documentation and for
  possible load-dependent extensions.

Absolute values are calibrated so the 8-bit MAC unit built from these cells
reproduces the anchor points of the paper (Figs. 2 and 3): a post-synthesis
maximum delay of about 180 ps and per-weight average power in the
400–1100 µW range at ~5 GHz.  Only *relative* per-weight numbers drive the
PowerPruning method, so the calibration pins scale without affecting the
algorithmics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Mapping


@dataclass(frozen=True)
class Cell:
    """A combinational standard cell.

    Attributes:
        name: Library name of the cell (e.g. ``"XOR2"``).
        num_inputs: Number of input pins.
        delay_ps: Pin-to-output delay in picoseconds at nominal voltage.
        energy_fj: Switching energy per output toggle in femtojoules.
        leakage_nw: Leakage power in nanowatts at nominal voltage.
        input_cap_ff: Input pin capacitance in femtofarads.
    """

    name: str
    num_inputs: int
    delay_ps: float
    energy_fj: float
    leakage_nw: float
    input_cap_ff: float = 1.0

    def scaled(self, delay_factor: float = 1.0, energy_factor: float = 1.0,
               leakage_factor: float = 1.0) -> "Cell":
        """Return a copy of the cell with scaled characteristics."""
        return replace(
            self,
            delay_ps=self.delay_ps * delay_factor,
            energy_fj=self.energy_fj * energy_factor,
            leakage_nw=self.leakage_nw * leakage_factor,
        )


class CellLibrary:
    """A named collection of :class:`Cell` models.

    The library behaves like a read-only mapping from cell name to
    :class:`Cell`.  It also records the nominal supply voltage the cell
    characteristics refer to.
    """

    def __init__(self, name: str, cells: Iterable[Cell],
                 nominal_voltage: float = 0.8) -> None:
        self.name = name
        self.nominal_voltage = nominal_voltage
        self._cells: Dict[str, Cell] = {cell.name: cell for cell in cells}
        if not self._cells:
            raise ValueError("a cell library needs at least one cell")

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r}; "
                f"available: {sorted(self._cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> Mapping[str, Cell]:
        """Read-only view of the cells keyed by name."""
        return dict(self._cells)

    def delay_ps(self, name: str) -> float:
        """Delay of cell ``name`` in picoseconds."""
        return self[name].delay_ps

    def energy_fj(self, name: str) -> float:
        """Per-toggle switching energy of cell ``name`` in femtojoules."""
        return self[name].energy_fj

    def leakage_nw(self, name: str) -> float:
        """Leakage power of cell ``name`` in nanowatts."""
        return self[name].leakage_nw

    def scaled(self, delay_factor: float = 1.0, energy_factor: float = 1.0,
               leakage_factor: float = 1.0,
               name_suffix: str = "-scaled") -> "CellLibrary":
        """Return a new library with every cell scaled uniformly.

        Used to calibrate the synthetic library against the paper's anchor
        points (180 ps MAC critical path, Fig. 2 power range).
        """
        cells = [
            cell.scaled(delay_factor, energy_factor, leakage_factor)
            for cell in self
        ]
        return CellLibrary(self.name + name_suffix, cells,
                           self.nominal_voltage)


#: Raw (pre-calibration) cell characteristics, loosely NanGate-15nm shaped:
#: inverters are the fastest and cheapest, XOR-class cells are the slowest
#: and most power hungry.  Delays are in ps, energies in fJ, leakage in nW.
_RAW_CELLS = (
    Cell("INV",   1, delay_ps=1.4, energy_fj=0.45, leakage_nw=5.5,
         input_cap_ff=0.8),
    Cell("BUF",   1, delay_ps=2.0, energy_fj=0.60, leakage_nw=7.0,
         input_cap_ff=0.8),
    Cell("AND2",  2, delay_ps=2.6, energy_fj=0.95, leakage_nw=9.0,
         input_cap_ff=1.0),
    Cell("OR2",   2, delay_ps=2.6, energy_fj=0.95, leakage_nw=9.0,
         input_cap_ff=1.0),
    Cell("NAND2", 2, delay_ps=2.0, energy_fj=0.80, leakage_nw=8.0,
         input_cap_ff=1.0),
    Cell("NOR2",  2, delay_ps=2.2, energy_fj=0.85, leakage_nw=8.0,
         input_cap_ff=1.0),
    Cell("XOR2",  2, delay_ps=4.2, energy_fj=1.80, leakage_nw=14.0,
         input_cap_ff=1.4),
    Cell("XNOR2", 2, delay_ps=4.2, energy_fj=1.80, leakage_nw=14.0,
         input_cap_ff=1.4),
    Cell("MUX2",  3, delay_ps=3.4, energy_fj=1.40, leakage_nw=12.0,
         input_cap_ff=1.2),
)


def default_library(nominal_voltage: float = 0.8) -> CellLibrary:
    """Return the default synthetic 15 nm-like cell library.

    The returned library is *uncalibrated*; higher layers (see
    :mod:`repro.power.characterization` and :mod:`repro.timing.profile`)
    apply global delay/energy calibration factors so the assembled MAC unit
    matches the paper's 180 ps / 400–1100 µW anchors.
    """
    return CellLibrary("synth15", _RAW_CELLS, nominal_voltage)
