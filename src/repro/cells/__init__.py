"""Standard-cell models and supply-voltage scaling laws.

This subpackage stands in for the NanGate 15 nm open cell library used by
the paper and for the FinFET voltage-scaling silicon data it cites ([16],
[17]).  Cells carry a nominal delay, a per-toggle switching energy, a
leakage power and an input capacitance; the voltage module provides the
alpha-power delay law and the dynamic/leakage power scaling laws used when
the supply voltage is lowered after timing-aware selection.
"""

from repro.cells.library import (
    Cell,
    CellLibrary,
    default_library,
)
from repro.cells.voltage import (
    VoltageModel,
    delay_scale,
    dynamic_power_scale,
    leakage_power_scale,
)

__all__ = [
    "Cell",
    "CellLibrary",
    "default_library",
    "VoltageModel",
    "delay_scale",
    "dynamic_power_scale",
    "leakage_power_scale",
]
