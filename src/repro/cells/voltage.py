"""Supply-voltage scaling laws.

The paper lowers the supply voltage once timing-aware weight/activation
selection has reduced the maximum sensitized delay of the MAC unit, and it
reads the delay-vs-voltage relation from FinFET silicon measurements
(Lee et al., ISLPED 2014 [16]) and the power scaling from Pinckney et al.
[17].  We reproduce those curves with standard compact models:

* **Delay** follows the alpha-power law
  ``delay(V) ∝ V / (V - V_th)**alpha``.  With ``V_th = 0.30 V`` and
  ``alpha = 1.73`` the model reproduces the paper's Table I scaling
  factors: 40 ps of slack at a 180 ps clock allows 0.8 V → 0.71 V,
  30 ps → 0.73 V, 20 ps → 0.75 V.
* **Dynamic power** scales as ``V**2`` (same frequency, per CV²f).
* **Leakage power** scales super-linearly (`V**3`), matching the strong
  DIBL-driven leakage reduction FinFETs show near threshold [17].
"""

from __future__ import annotations

from dataclasses import dataclass


def delay_scale(vdd: float, vdd_nom: float = 0.8, vth: float = 0.30,
                alpha: float = 1.73) -> float:
    """Circuit delay at ``vdd`` relative to the delay at ``vdd_nom``.

    Values above 1.0 mean the circuit is slower than at nominal voltage.

    Raises:
        ValueError: if ``vdd`` is not comfortably above the threshold
            voltage (the alpha-power model diverges at ``vth``).
    """
    if vdd <= vth + 0.05:
        raise ValueError(
            f"supply voltage {vdd:.3f} V too close to threshold "
            f"{vth:.2f} V for the alpha-power model"
        )
    nominal = vdd_nom / (vdd_nom - vth) ** alpha
    scaled = vdd / (vdd - vth) ** alpha
    return scaled / nominal


def dynamic_power_scale(vdd: float, vdd_nom: float = 0.8) -> float:
    """Dynamic power at ``vdd`` relative to nominal, at fixed frequency."""
    if vdd <= 0:
        raise ValueError("supply voltage must be positive")
    return (vdd / vdd_nom) ** 2


def leakage_power_scale(vdd: float, vdd_nom: float = 0.8,
                        exponent: float = 3.0) -> float:
    """Leakage power at ``vdd`` relative to nominal.

    FinFET leakage drops super-linearly with voltage [17]; a cubic law is a
    good fit over the 0.6–0.8 V range the paper operates in.
    """
    if vdd <= 0:
        raise ValueError("supply voltage must be positive")
    return (vdd / vdd_nom) ** exponent


@dataclass(frozen=True)
class VoltageModel:
    """Bundle of voltage-scaling laws with a fixed nominal operating point.

    Attributes:
        vdd_nom: Nominal supply voltage in volts (0.8 V for the 15 nm
            library the paper uses).
        vth: Effective threshold voltage of the alpha-power delay law.
        alpha: Velocity-saturation exponent of the alpha-power law.
        leakage_exponent: Exponent of the leakage scaling law.
        step: Voltage granularity when searching for the lowest feasible
            supply (the paper reports two-decimal voltages, i.e. 10 mV).
        vdd_min: Lowest supply the search will consider.
    """

    vdd_nom: float = 0.8
    vth: float = 0.30
    alpha: float = 1.73
    leakage_exponent: float = 3.0
    step: float = 0.01
    vdd_min: float = 0.5

    def delay_scale(self, vdd: float) -> float:
        """Delay multiplier at ``vdd`` relative to ``vdd_nom``."""
        return delay_scale(vdd, self.vdd_nom, self.vth, self.alpha)

    def dynamic_power_scale(self, vdd: float) -> float:
        """Dynamic-power multiplier at ``vdd`` relative to ``vdd_nom``."""
        return dynamic_power_scale(vdd, self.vdd_nom)

    def leakage_power_scale(self, vdd: float) -> float:
        """Leakage-power multiplier at ``vdd`` relative to ``vdd_nom``."""
        return leakage_power_scale(vdd, self.vdd_nom, self.leakage_exponent)

    def min_voltage_for_slack(self, max_delay_ps: float,
                              clock_period_ps: float) -> float:
        """Lowest supply voltage keeping ``max_delay_ps`` within the clock.

        Given that timing-aware selection reduced the critical sensitized
        delay to ``max_delay_ps`` while the accelerator keeps running at
        the original ``clock_period_ps``, the circuit may be slowed by the
        factor ``clock_period_ps / max_delay_ps``.  The search walks down
        from the nominal voltage in :attr:`step` increments, exactly as a
        designer would pick a tabulated operating point.

        Returns the nominal voltage when there is no slack.
        """
        if max_delay_ps <= 0 or clock_period_ps <= 0:
            raise ValueError("delays must be positive")
        if max_delay_ps > clock_period_ps:
            raise ValueError(
                f"max delay {max_delay_ps} ps exceeds the clock period "
                f"{clock_period_ps} ps; the circuit would not work at "
                f"nominal voltage"
            )
        budget = clock_period_ps / max_delay_ps
        best = self.vdd_nom
        # Walk down in fixed steps; keep the lowest voltage that still fits.
        steps = int(round((self.vdd_nom - self.vdd_min) / self.step))
        for k in range(1, steps + 1):
            vdd = round(self.vdd_nom - k * self.step, 10)
            if vdd <= self.vth + 0.05:
                break
            if self.delay_scale(vdd) <= budget:
                best = vdd
            else:
                break
        return round(best, 2)

    def power_scale(self, vdd: float, leakage_fraction: float) -> float:
        """Total-power multiplier at ``vdd`` for a given leakage share.

        Args:
            vdd: Target supply voltage.
            leakage_fraction: Fraction of total power that is leakage at
                the nominal voltage (between 0 and 1).
        """
        if not 0.0 <= leakage_fraction <= 1.0:
            raise ValueError("leakage_fraction must be within [0, 1]")
        dyn = (1.0 - leakage_fraction) * self.dynamic_power_scale(vdd)
        leak = leakage_fraction * self.leakage_power_scale(vdd)
        return dyn + leak
