"""Timing characterization and delay-driven selection (paper Sec. III-B).

* :mod:`repro.timing.profile` — per-weight delay profiles over activation
  transitions, composing multiplier DTA with adder STA (paper Fig. 5).
* :mod:`repro.timing.selection` — the iterative randomized removal of
  weights/activations until all sensitized delays fall below a threshold
  (paper Fig. 6).
"""

from repro.timing.profile import (
    DelayProfile,
    MacTimingModel,
    WeightDelayProfiler,
    WeightTimingTable,
    timing_seed_sequence,
)
from repro.timing.selection import DelaySelector, SelectionResult

__all__ = [
    "MacTimingModel",
    "WeightDelayProfiler",
    "DelayProfile",
    "WeightTimingTable",
    "DelaySelector",
    "SelectionResult",
    "timing_seed_sequence",
]
