"""Delay-threshold weight/activation selection (paper Sec. III-B, Fig. 6).

Given the slow combinations ``(weight, act_from, act_to, delay)`` above a
delay threshold, the paper iteratively removes either the weight or one of
the two activations of the currently slowest surviving combination —
chosen *at random*, since the optimal removal order is hard — and repeats
the whole process several times (20 in the experiments), keeping the best
outcome.

Removing a weight value kills every combo containing it; removing an
activation value kills every combo where it appears as either transition
endpoint.  The zero weight and the zero activation are protected: zero
weights are the pruning target and zero activations are produced by ReLU,
so neither can be forbidden in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.timing.profile import WeightTimingTable


@dataclass
class SelectionResult:
    """Outcome of one delay-threshold selection.

    Attributes:
        threshold_ps: The delay threshold that was enforced.
        weights: Surviving weight values (subset of the candidates).
        activations: Surviving activation values.
        removed_weights / removed_activations: What was dropped.
        max_delay_ps: Largest delay still sensitizable by the surviving
            sets (at most ``threshold_ps``).
        restarts: Number of randomized restarts executed.
    """

    threshold_ps: float
    weights: np.ndarray
    activations: np.ndarray
    removed_weights: np.ndarray
    removed_activations: np.ndarray
    max_delay_ps: float
    restarts: int

    @property
    def n_weights(self) -> int:
        return int(self.weights.size)

    @property
    def n_activations(self) -> int:
        return int(self.activations.size)


class DelaySelector:
    """Randomized-removal selector over a :class:`WeightTimingTable`.

    Args:
        table: Sparse timing characterization.
        protected_weights: Weight values that must never be removed.
        protected_activations: Activation values that must never be
            removed.
        n_restarts: Randomized repetitions; the best run (most surviving
            values, weights weighted equally with activations) wins.
    """

    def __init__(self, table: WeightTimingTable,
                 protected_weights: Sequence[int] = (0,),
                 protected_activations: Sequence[int] = (0,),
                 n_restarts: int = 20) -> None:
        if n_restarts < 1:
            raise ValueError("need at least one restart")
        self.table = table
        self.protected_weights = frozenset(int(w)
                                           for w in protected_weights)
        self.protected_activations = frozenset(
            int(a) for a in protected_activations
        )
        self.n_restarts = n_restarts

    def select(self, threshold_ps: float,
               candidate_weights: Optional[Sequence[int]] = None,
               activation_values: Optional[Sequence[int]] = None,
               seed: int = 2023) -> SelectionResult:
        """Remove weights/activations until all delays fit the threshold.

        Args:
            threshold_ps: Target maximum sensitized delay.
            candidate_weights: Starting weight set (default: everything in
                the table — in the full flow this is the power-selected
                set from Sec. III-A).
            activation_values: Starting activation set (default: all 256
                8-bit values).
            seed: Base RNG seed; each restart derives its own stream.
        """
        if threshold_ps <= self.table.floor_ps:
            raise ValueError(
                f"threshold {threshold_ps} ps is at/below the table floor "
                f"{self.table.floor_ps} ps; re-characterize with a lower "
                f"floor"
            )
        if threshold_ps < self.table.psum_path_ps:
            raise ValueError(
                f"threshold {threshold_ps} ps below the static partial-sum "
                f"path {self.table.psum_path_ps:.1f} ps; no selection can "
                f"achieve it"
            )
        if candidate_weights is None:
            candidate_weights = self.table.weights.tolist()
        candidate_weights = sorted(set(int(w) for w in candidate_weights))
        if activation_values is None:
            activation_values = list(range(-128, 128))
        activation_values = sorted(set(int(a) for a in activation_values))

        cw, cf, ct, cd = self.table.combos_for(candidate_weights)
        # Combos already below the threshold never force a removal.
        relevant = cd > threshold_ps
        cw, cf, ct, cd = cw[relevant], cf[relevant], ct[relevant], cd[relevant]
        # Drop combos whose activations are not even candidates.
        acts_arr = np.asarray(activation_values, dtype=np.int64)
        alive_in = np.isin(cf, acts_arr) & np.isin(ct, acts_arr)
        cw, cf, ct, cd = cw[alive_in], cf[alive_in], ct[alive_in], cd[alive_in]

        order = np.argsort(-cd)
        cw, cf, ct, cd = cw[order], cf[order], ct[order], cd[order]

        # Inverted indexes: for every weight/activation value, the combo
        # positions it participates in.  One removal then kills all its
        # combos with a single fancy-index store, which keeps each restart
        # linear in the combo count instead of quadratic.
        weight_index: Dict[int, np.ndarray] = {
            int(w): np.nonzero(cw == w)[0] for w in np.unique(cw)
        }
        act_index: Dict[int, np.ndarray] = {
            int(a): np.nonzero((cf == a) | (ct == a))[0]
            for a in np.unique(np.concatenate([cf, ct]))
        } if cf.size else {}

        best: Optional[Tuple[int, Set[int], Set[int]]] = None
        for restart in range(self.n_restarts):
            rng = np.random.default_rng(seed + restart)
            weights_alive = set(candidate_weights)
            acts_alive = set(activation_values)
            alive = np.ones(cd.size, dtype=bool)
            ptr = 0
            while True:
                # Advance to the slowest still-alive combo.
                remaining = np.nonzero(alive[ptr:])[0]
                if not remaining.size:
                    break
                ptr += int(remaining[0])
                w, f, t = int(cw[ptr]), int(cf[ptr]), int(ct[ptr])
                choices = []
                if w not in self.protected_weights:
                    choices.append(("w", w))
                if f not in self.protected_activations:
                    choices.append(("a", f))
                if t != f and t not in self.protected_activations:
                    choices.append(("a", t))
                if not choices:
                    raise RuntimeError(
                        f"combo (w={w}, {f}->{t}) exceeds the threshold "
                        f"but every member is protected"
                    )
                kind, value = choices[rng.integers(len(choices))]
                if kind == "w":
                    weights_alive.discard(value)
                    alive[weight_index[value]] = False
                else:
                    acts_alive.discard(value)
                    alive[act_index[value]] = False
            score = len(weights_alive) + len(acts_alive)
            if best is None or score > best[0]:
                best = (score, weights_alive, acts_alive)

        __, weights_alive, acts_alive = best
        surviving_w = np.asarray(sorted(weights_alive), dtype=np.int64)
        surviving_a = np.asarray(sorted(acts_alive), dtype=np.int64)
        removed_w = np.asarray(
            sorted(set(candidate_weights) - weights_alive), dtype=np.int64
        )
        removed_a = np.asarray(
            sorted(set(activation_values) - acts_alive), dtype=np.int64
        )
        return SelectionResult(
            threshold_ps=threshold_ps,
            weights=surviving_w,
            activations=surviving_a,
            removed_weights=removed_w,
            removed_activations=removed_a,
            max_delay_ps=self._surviving_max_delay(
                threshold_ps, weights_alive, acts_alive
            ),
            restarts=self.n_restarts,
        )

    def _surviving_max_delay(self, threshold_ps: float,
                             weights_alive: Set[int],
                             acts_alive: Set[int]) -> float:
        """Largest delay the surviving sets can still sensitize.

        Combos below the table floor are not stored, so the result is
        floored at ``min(floor_ps, psum_path)`` — honest bookkeeping: the
        true maximum is whatever survives above the floor, or at most the
        floor itself.
        """
        cw, cf, ct, cd = self.table.combos_for(sorted(weights_alive))
        if cd.size:
            acts_arr = np.asarray(sorted(acts_alive), dtype=np.int64)
            alive = np.isin(cf, acts_arr) & np.isin(ct, acts_arr)
            alive_delays = cd[alive & (cd <= threshold_ps)]
            if alive_delays.size:
                return float(
                    max(alive_delays.max(), self.table.psum_path_ps)
                )
        return float(max(self.table.floor_ps, self.table.psum_path_ps))
