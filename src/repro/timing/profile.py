"""Per-weight delay profiles (paper Sec. III-B, Figs. 3 and 5).

The paper splits MAC timing analysis to keep it tractable:

* the **multiplier** is analyzed *dynamically* per weight value — the
  weight input is frozen and all 2^16 activation transitions are applied,
  recording the switching-event arrival time at every product bit;
* the **adder** is analyzed *statically* — one longest-path number from
  each product bit (and from the partial-sum bus) to the result.

The MAC delay for one transition is then
``max(max_bit(mult_arrival[bit] + adder_delay[bit]), psum_path)`` —
exactly the Fig. 5 composition.  A global ``time_scale`` pins the largest
sensitized delay across all weights to the paper's 180 ps post-synthesis
clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.mac import MacUnit
from repro.sim.dynamic_timing import (
    dynamic_arrival_times,
    output_bus_arrivals,
)
from repro.sim.logic import bus_inputs
from repro.sim.static_timing import input_bus_delays

#: Post-synthesis critical path of the paper's MAC unit.
ANCHOR_MAX_DELAY_PS = 180.0


class MacTimingModel:
    """Static half of the Fig. 5 composition.

    Precomputes the adder's per-product-bit STA delays and the partial-sum
    path delay, then composes them with dynamically obtained product-bit
    arrival times.
    """

    def __init__(self, mac: MacUnit, library: CellLibrary) -> None:
        self.mac = mac
        self.library = library
        self.adder_bit_delays = input_bus_delays(
            mac.adder, library, "product", mac.product_bits
        )
        self.psum_path_ps = float(
            input_bus_delays(mac.adder, library, "psum", mac.psum_bits)
            .max()
        )

    def compose(self, product_arrivals: np.ndarray) -> np.ndarray:
        """MAC delay per transition from product-bit arrival times.

        Args:
            product_arrivals: ``(product_bits, batch)`` arrival times from
                multiplier DTA (0 where a bit did not switch).

        Returns:
            Per-transition MAC delay, floored at the static partial-sum
            path (which is sensitized by the accumulating loop anyway).
        """
        composed = product_arrivals + self.adder_bit_delays[:, None]
        # Bits that did not switch (arrival 0) still contribute the bare
        # adder delay via `composed`; that is conservative but harmless
        # because the psum path dominates any non-switching bit's path.
        switched = product_arrivals > 0
        composed = np.where(switched, composed, 0.0)
        return np.maximum(composed.max(axis=0), self.psum_path_ps)


@dataclass
class DelayProfile:
    """Delay of one weight value across activation transitions (Fig. 3).

    Attributes:
        weight: The frozen weight value.
        act_from / act_to: The applied activation transitions (values,
            not codes).
        delays_ps: Sensitized MAC delay of each transition.
    """

    weight: int
    act_from: np.ndarray
    act_to: np.ndarray
    delays_ps: np.ndarray

    @property
    def max_delay_ps(self) -> float:
        return float(self.delays_ps.max())

    def histogram(self, bin_width_ps: float = 5.0
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Fig. 3-style histogram: (bin_edges, counts)."""
        top = np.ceil(self.delays_ps.max() / bin_width_ps) * bin_width_ps
        edges = np.arange(0.0, top + bin_width_ps, bin_width_ps)
        counts, __ = np.histogram(self.delays_ps, bins=edges)
        return edges, counts


class WeightDelayProfiler:
    """Runs the per-weight dynamic timing analysis of the multiplier."""

    def __init__(self, mac: MacUnit, library: CellLibrary,
                 chunk: int = 8192) -> None:
        self.mac = mac
        self.library = library
        self.model = MacTimingModel(mac, library)
        self.chunk = chunk
        self._packed = mac.multiplier.packed()

    def delays(self, weight: int, act_from: np.ndarray,
               act_to: np.ndarray) -> np.ndarray:
        """MAC delays for explicit activation transitions (values)."""
        act_from = np.asarray(act_from, dtype=np.int64).ravel()
        act_to = np.asarray(act_to, dtype=np.int64).ravel()
        if act_from.shape != act_to.shape:
            raise ValueError("from/to activation arrays must align")
        out = np.empty(act_from.size, dtype=np.float64)
        for start in range(0, act_from.size, self.chunk):
            stop = min(start + self.chunk, act_from.size)
            out[start:stop] = self._delays_chunk(
                weight, act_from[start:stop], act_to[start:stop]
            )
        return out

    def _delays_chunk(self, weight: int, act_from: np.ndarray,
                      act_to: np.ndarray) -> np.ndarray:
        n = act_from.size
        weight_bus = bus_inputs(
            "w", np.full(n, weight), self.mac.weight_bits
        )
        feed_before = bus_inputs("act", act_from, self.mac.act_bits)
        feed_before.update(weight_bus)
        feed_after = bus_inputs("act", act_to, self.mac.act_bits)
        feed_after.update(weight_bus)
        arrivals, __ = dynamic_arrival_times(
            self._packed, self.library, feed_before, feed_after
        )
        product_arrivals = output_bus_arrivals(
            self._packed, arrivals, "product", self.mac.product_bits
        )
        return self.model.compose(product_arrivals)

    def all_transitions(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full activation-transition enumeration (2^16 pairs)."""
        half = 1 << (self.mac.act_bits - 1)
        values = np.arange(-half, half)
        act_from, act_to = np.meshgrid(values, values, indexing="ij")
        return act_from.ravel(), act_to.ravel()

    def profile(self, weight: int,
                transitions: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                ) -> DelayProfile:
        """Delay profile of one weight (all transitions by default)."""
        if transitions is None:
            transitions = self.all_transitions()
        act_from, act_to = transitions
        delays = self.delays(weight, act_from, act_to)
        return DelayProfile(weight=weight, act_from=act_from,
                            act_to=act_to, delays_ps=delays)


@dataclass
class WeightTimingTable:
    """Timing characterization of a set of weight values.

    Stores, per weight, the maximum sensitized delay plus a *sparse* list
    of slow combinations ``(weight, act_from, act_to, delay)`` above
    ``floor_ps`` — everything the iterative selection of Sec. III-B needs
    without materializing 255 x 2^16 dense matrices.

    All delays are in picoseconds, already multiplied by ``time_scale``
    (the calibration factor pinning the global maximum to the paper's
    180 ps).
    """

    weights: np.ndarray
    max_delay_ps: np.ndarray
    combo_weight: np.ndarray
    combo_act_from: np.ndarray
    combo_act_to: np.ndarray
    combo_delay_ps: np.ndarray
    floor_ps: float
    time_scale: float
    psum_path_ps: float

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.int64)
        self.max_delay_ps = np.asarray(self.max_delay_ps, dtype=np.float64)

    @property
    def global_max_delay_ps(self) -> float:
        """Largest sensitized delay over all characterized weights."""
        return float(self.max_delay_ps.max())

    def max_delay_of(self, weight: int) -> float:
        idx = np.where(self.weights == weight)[0]
        if not idx.size:
            raise KeyError(f"weight {weight} not characterized")
        return float(self.max_delay_ps[idx[0]])

    def combos_for(self, weights: Sequence[int]) -> Tuple[np.ndarray, ...]:
        """Slow combos restricted to a candidate weight subset."""
        mask = np.isin(self.combo_weight, np.asarray(weights))
        return (self.combo_weight[mask], self.combo_act_from[mask],
                self.combo_act_to[mask], self.combo_delay_ps[mask])

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        """Write the table as compressed numpy archive."""
        np.savez_compressed(
            path,
            weights=self.weights,
            max_delay_ps=self.max_delay_ps,
            combo_weight=self.combo_weight,
            combo_act_from=self.combo_act_from,
            combo_act_to=self.combo_act_to,
            combo_delay_ps=self.combo_delay_ps,
            meta=np.array([self.floor_ps, self.time_scale,
                           self.psum_path_ps]),
        )

    @classmethod
    def load(cls, path: Path) -> "WeightTimingTable":
        data = np.load(path)
        floor_ps, time_scale, psum_path_ps = data["meta"]
        return cls(
            weights=data["weights"],
            max_delay_ps=data["max_delay_ps"],
            combo_weight=data["combo_weight"],
            combo_act_from=data["combo_act_from"],
            combo_act_to=data["combo_act_to"],
            combo_delay_ps=data["combo_delay_ps"],
            floor_ps=float(floor_ps),
            time_scale=float(time_scale),
            psum_path_ps=float(psum_path_ps),
        )

    @classmethod
    def characterize(cls, profiler: WeightDelayProfiler,
                     weights: Optional[Iterable[int]] = None,
                     transitions: Optional[
                         Tuple[np.ndarray, np.ndarray]] = None,
                     floor_ps: float = 100.0,
                     calibrate_to_ps: Optional[float] = ANCHOR_MAX_DELAY_PS,
                     ) -> "WeightTimingTable":
        """Profile ``weights`` and build the sparse table.

        Args:
            profiler: The per-weight DTA engine.
            weights: Weight values to profile (default: all 255 symmetric
                8-bit values).
            transitions: Activation transitions to apply (default: the
                full 2^16 enumeration, as in the paper).
            floor_ps: Keep only combos slower than this (after
                calibration); must be below the smallest delay threshold
                the selection will use.
            calibrate_to_ps: Pin the global maximum delay to this value
                (``None`` keeps raw library delays).
        """
        mac = profiler.mac
        if weights is None:
            half = 1 << (mac.weight_bits - 1)
            weights = range(-half + 1, half)
        weights = np.asarray(sorted(set(int(w) for w in weights)))
        if transitions is None:
            transitions = profiler.all_transitions()
        act_from, act_to = transitions

        max_delays = np.empty(weights.size, dtype=np.float64)
        slow: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for i, weight in enumerate(weights):
            delays = profiler.delays(int(weight), act_from, act_to)
            max_delays[i] = delays.max()
            slow.append((int(weight), act_from, act_to, delays))

        time_scale = 1.0
        if calibrate_to_ps is not None and max_delays.max() > 0:
            time_scale = calibrate_to_ps / max_delays.max()
        max_delays *= time_scale

        combo_w: List[np.ndarray] = []
        combo_f: List[np.ndarray] = []
        combo_t: List[np.ndarray] = []
        combo_d: List[np.ndarray] = []
        for weight, a_from, a_to, delays in slow:
            scaled = delays * time_scale
            mask = scaled > floor_ps
            combo_w.append(np.full(int(mask.sum()), weight, dtype=np.int64))
            combo_f.append(a_from[mask].astype(np.int64))
            combo_t.append(a_to[mask].astype(np.int64))
            combo_d.append(scaled[mask])

        return cls(
            weights=weights,
            max_delay_ps=max_delays,
            combo_weight=np.concatenate(combo_w),
            combo_act_from=np.concatenate(combo_f),
            combo_act_to=np.concatenate(combo_t),
            combo_delay_ps=np.concatenate(combo_d),
            floor_ps=floor_ps,
            time_scale=time_scale,
            psum_path_ps=profiler.model.psum_path_ps * time_scale,
        )
