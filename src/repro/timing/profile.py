"""Per-weight delay profiles (paper Sec. III-B, Figs. 3 and 5).

The paper splits MAC timing analysis to keep it tractable:

* the **multiplier** is analyzed *dynamically* per weight value — the
  weight input is frozen and all 2^16 activation transitions are applied,
  recording the switching-event arrival time at every product bit;
* the **adder** is analyzed *statically* — one longest-path number from
  each product bit (and from the partial-sum bus) to the result.

The MAC delay for one transition is then
``max(max_bit(mult_arrival[bit] + adder_delay[bit]), psum_path)`` —
exactly the Fig. 5 composition.  A global ``time_scale`` pins the largest
sensitized delay across all weights to the paper's 180 ps post-synthesis
clock.

At reduced scales only a subsample of the 2^16 activation transitions is
applied per weight.  Each weight draws its subsample from its own child
RNG keyed on ``(seed, weight)``, which makes the characterized table
independent of the characterization order and lets
``WeightTimingTable.characterize(..., jobs=N)`` shard the per-weight
dynamic timing analyses across processes with bit-for-bit identical
results (the global calibration happens after the shards merge) —
mirroring the sharded power characterization in
:mod:`repro.power.characterization`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.mac import MacUnit
from repro.sim.dynamic_timing import (
    STREAM_WINDOW_SAMPLES,
    dynamic_bus_arrivals,
)
from repro.sim.logic import WORD_DTYPE, bus_inputs
from repro.sim.static_timing import input_bus_delays

#: Post-synthesis critical path of the paper's MAC unit.
ANCHOR_MAX_DELAY_PS = 180.0

#: Domain tag separating the timing stimulus stream from the power one
#: (:func:`repro.power.characterization.weight_seed_sequence`), so the
#: two characterizations of a weight never correlate.
_TIMING_STREAM = 0x7119


def timing_seed_sequence(seed: int, weight: int
                         ) -> np.random.SeedSequence:
    """One independent RNG seed per (seed, weight) timing subsample.

    Keyed on the *weight value* rather than its position in the
    characterization order, so the transitions drawn for a weight are
    identical no matter which other weights are characterized, in what
    order, or how the weight set is chunked across processes — the
    property the sharded timing characterization relies on for
    bit-for-bit equality with a serial run.
    """
    return np.random.SeedSequence(
        [int(seed) & 0xFFFFFFFF, int(weight) & 0xFFFFFFFF,
         _TIMING_STREAM])


class MacTimingModel:
    """Static half of the Fig. 5 composition.

    Precomputes the adder's per-product-bit STA delays and the partial-sum
    path delay, then composes them with dynamically obtained product-bit
    arrival times.
    """

    def __init__(self, mac: MacUnit, library: CellLibrary) -> None:
        self.mac = mac
        self.library = library
        self.adder_bit_delays = input_bus_delays(
            mac.adder, library, "product", mac.product_bits
        )
        self.psum_path_ps = float(
            input_bus_delays(mac.adder, library, "psum", mac.psum_bits)
            .max()
        )

    def compose(self, product_arrivals: np.ndarray) -> np.ndarray:
        """MAC delay per transition from product-bit arrival times.

        Args:
            product_arrivals: ``(product_bits, batch)`` arrival times from
                multiplier DTA (0 where a bit did not switch).

        Returns:
            Per-transition MAC delay, floored at the static partial-sum
            path (which is sensitized by the accumulating loop anyway).
        """
        composed = product_arrivals + self.adder_bit_delays[:, None]
        # Bits that did not switch (arrival 0) still contribute the bare
        # adder delay via `composed`; that is conservative but harmless
        # because the psum path dominates any non-switching bit's path.
        switched = product_arrivals > 0
        composed = np.where(switched, composed, 0.0)
        return np.maximum(composed.max(axis=0), self.psum_path_ps)


@dataclass
class DelayProfile:
    """Delay of one weight value across activation transitions (Fig. 3).

    Attributes:
        weight: The frozen weight value.
        act_from / act_to: The applied activation transitions (values,
            not codes).
        delays_ps: Sensitized MAC delay of each transition.
    """

    weight: int
    act_from: np.ndarray
    act_to: np.ndarray
    delays_ps: np.ndarray

    @property
    def max_delay_ps(self) -> float:
        return float(self.delays_ps.max())

    def histogram(self, bin_width_ps: float = 5.0
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Fig. 3-style histogram: (bin_edges, counts)."""
        top = np.ceil(self.delays_ps.max() / bin_width_ps) * bin_width_ps
        edges = np.arange(0.0, top + bin_width_ps, bin_width_ps)
        counts, __ = np.histogram(self.delays_ps, bins=edges)
        return edges, counts


class WeightDelayProfiler:
    """Runs the per-weight dynamic timing analysis of the multiplier."""

    def __init__(self, mac: MacUnit, library: CellLibrary,
                 chunk: int = 8192) -> None:
        self.mac = mac
        self.library = library
        self.model = MacTimingModel(mac, library)
        self.chunk = chunk
        self._packed = mac.multiplier.packed()
        # Build the levelized plan and its compiled level program once,
        # outside the per-weight loop (and before any worker pickling
        # ships the packed view, so shards receive both warm).
        self._packed.schedule
        self._packed.program
        # Product-bus net indices the streaming DTA retains; constant
        # across the profiler's lifetime.
        self._product_nets = np.asarray(
            self._packed.netlist.output_bus("product", mac.product_bits),
            dtype=np.int64)
        # Scratch reused across chunks and weights: the packed word
        # matrix of the stacked value evaluation (previously
        # reallocated per ~chunk-sized window) and the fallback DTA
        # arrival slab.  One allocation each instead of one per DTA
        # call — page-faulting fresh buffers per chunk costs more than
        # the propagation itself.  Lazily allocated, never pickled
        # (see __getstate__).
        self._words_buf: Optional[np.ndarray] = None
        self._arrivals_buf: Optional[np.ndarray] = None

    def __getstate__(self) -> dict:
        """Drop the scratch buffers when shipping to worker processes."""
        state = self.__dict__.copy()
        state["_words_buf"] = None
        state["_arrivals_buf"] = None
        return state

    def delays(self, weight: int, act_from: np.ndarray,
               act_to: np.ndarray) -> np.ndarray:
        """MAC delays for explicit activation transitions (values)."""
        act_from = np.asarray(act_from, dtype=np.int64).ravel()
        act_to = np.asarray(act_to, dtype=np.int64).ravel()
        if act_from.shape != act_to.shape:
            raise ValueError("from/to activation arrays must align")
        out = np.empty(act_from.size, dtype=np.float64)
        # The weight bus is constant across the whole profile; build it
        # once at the widest chunk size and slice per chunk.
        weight_bus = bus_inputs(
            "w", np.full(min(self.chunk, max(act_from.size, 1)), weight),
            self.mac.weight_bits
        )
        for start in range(0, act_from.size, self.chunk):
            stop = min(start + self.chunk, act_from.size)
            sliced = {name: bits[:stop - start]
                      for name, bits in weight_bus.items()}
            out[start:stop] = self._delays_chunk(
                sliced, act_from[start:stop], act_to[start:stop]
            )
        return out

    def delays_batched(self, weight_values: np.ndarray,
                       act_from: np.ndarray,
                       act_to: np.ndarray) -> np.ndarray:
        """MAC delays where every transition carries its own weight.

        The one-launch twin of :meth:`delays`: several weights' stimuli
        concatenate into one flat stream with a per-sample weight bus,
        so the dynamic timing analysis walks its levelized plan once
        per ``chunk``-sized window instead of once per weight.  Arrival
        propagation is independent per sample column, so the flat
        batching (and its different chunk boundaries) is bit-for-bit
        equivalent to looping :meth:`delays` weight by weight —
        property-tested in the equivalence suite.

        Args:
            weight_values: Per-transition frozen weight value.
            act_from / act_to: Activation transition endpoints (values),
                aligned with ``weight_values``.
        """
        weight_values = np.asarray(weight_values, dtype=np.int64).ravel()
        act_from = np.asarray(act_from, dtype=np.int64).ravel()
        act_to = np.asarray(act_to, dtype=np.int64).ravel()
        if not (weight_values.shape == act_from.shape == act_to.shape):
            raise ValueError(
                "weight/from/to arrays must align, got "
                f"{weight_values.shape}/{act_from.shape}/{act_to.shape}")
        out = np.empty(act_from.size, dtype=np.float64)
        for start in range(0, act_from.size, self.chunk):
            stop = min(start + self.chunk, act_from.size)
            weight_bus = bus_inputs(
                "w", weight_values[start:stop], self.mac.weight_bits)
            out[start:stop] = self._delays_chunk(
                weight_bus, act_from[start:stop], act_to[start:stop]
            )
        return out

    def _delays_chunk(self, weight_bus, act_from: np.ndarray,
                      act_to: np.ndarray) -> np.ndarray:
        # Full-width chunks reuse the preallocated scratch; tail chunks
        # (different shapes) run bufferless rather than reallocating.
        words_out = None
        arrivals_out = None
        if act_from.size == self.chunk:
            if self._words_buf is None:
                n_words = 2 * ((self.chunk + 63) // 64)
                self._words_buf = np.zeros(
                    (len(self._packed), n_words), dtype=WORD_DTYPE)
            if self._arrivals_buf is None:
                self._arrivals_buf = np.zeros(
                    (len(self._packed),
                     min(STREAM_WINDOW_SAMPLES, self.chunk)),
                    dtype=np.float64)
            words_out = self._words_buf
            arrivals_out = self._arrivals_buf
        feed_before = bus_inputs("act", act_from, self.mac.act_bits)
        feed_before.update(weight_bus)
        feed_after = bus_inputs("act", act_to, self.mac.act_bits)
        feed_after.update(weight_bus)
        product_arrivals = dynamic_bus_arrivals(
            self._packed, self.library, feed_before, feed_after,
            self._product_nets, words_out=words_out,
            arrivals_out=arrivals_out,
        )
        return self.model.compose(product_arrivals)

    def all_transitions(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full activation-transition enumeration (2^16 pairs)."""
        half = 1 << (self.mac.act_bits - 1)
        values = np.arange(-half, half)
        act_from, act_to = np.meshgrid(values, values, indexing="ij")
        return act_from.ravel(), act_to.ravel()

    def sampled_transitions(self, n: int, rng: np.random.Generator
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """``n`` transitions drawn without replacement from the full set."""
        act_from, act_to = self.all_transitions()
        chosen = rng.choice(act_from.size, size=min(int(n), act_from.size),
                            replace=False)
        return act_from[chosen], act_to[chosen]

    def profile(self, weight: int,
                transitions: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                ) -> DelayProfile:
        """Delay profile of one weight (all transitions by default)."""
        if transitions is None:
            transitions = self.all_transitions()
        act_from, act_to = transitions
        delays = self.delays(weight, act_from, act_to)
        return DelayProfile(weight=weight, act_from=act_from,
                            act_to=act_to, delays_ps=delays)


def _weight_transitions(profiler: WeightDelayProfiler, weight: int,
                        transitions: Optional[Tuple[np.ndarray,
                                                    np.ndarray]],
                        n_transitions: Optional[int],
                        seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """The activation transitions one weight is profiled under.

    An explicit ``transitions`` pair is shared by every weight (the
    legacy, fully caller-controlled path); otherwise ``n_transitions``
    selects a per-weight subsample from the weight's own child RNG, and
    ``None`` enumerates all 2^16 pairs as in the paper.
    """
    if transitions is not None:
        return transitions
    if n_transitions is None:
        return profiler.all_transitions()
    rng = np.random.default_rng(timing_seed_sequence(seed, weight))
    return profiler.sampled_transitions(n_transitions, rng)


#: Preferred flat-stream window (samples) for automatic timing-batch
#: sizing.  Bigger windows amortize the per-launch DTA dispatch, but
#: once the ``(nets, window)`` arrival matrix outgrows cache every
#: propagation level streams from DRAM — measured on the smoke
#: multiplier, windows around this size beat full ``chunk``-sized ones.
_BATCH_TARGET_SAMPLES = 4096


def _resolve_group_weights(profiler: WeightDelayProfiler,
                           batch_weights: Optional[int],
                           transitions: Optional[Tuple[np.ndarray,
                                                       np.ndarray]],
                           n_transitions: Optional[int]) -> int:
    """Weights whose transitions concatenate into one flat DTA stream.

    Automatic sizing packs roughly :data:`_BATCH_TARGET_SAMPLES`
    transitions per group; the flat stream is re-chunked at
    ``profiler.chunk`` inside
    :meth:`WeightDelayProfiler.delays_batched` regardless, so explicit
    larger groups stay memory-bounded.
    """
    if batch_weights is not None and batch_weights != 0:
        return max(1, int(batch_weights))
    if transitions is not None:
        per_weight = int(np.asarray(transitions[0]).size)
    elif n_transitions is not None:
        per_weight = int(n_transitions)
    else:
        per_weight = 1 << (2 * profiler.mac.act_bits)
    return max(1, _BATCH_TARGET_SAMPLES // max(1, per_weight))


def _profile_chunk(task: Tuple[WeightDelayProfiler, np.ndarray,
                               Optional[Tuple[np.ndarray, np.ndarray]],
                               Optional[int], int, Optional[int]]
                   ) -> List[Tuple[int, np.ndarray, np.ndarray,
                                   np.ndarray]]:
    """Worker entry point for sharded characterization (picklable).

    Returns raw (uncalibrated) ``(weight, act_from, act_to, delays)``
    records; each record is a pure function of ``(seed, weight)``, so
    chunk boundaries cannot influence the merged table.

    Process sharding composes on top of weight batching: each shard
    groups its own slice of the weight set into flat one-launch DTA
    streams (or falls back to the per-weight loop when
    ``batch_weights == 1``).
    """
    profiler, weights, transitions, n_transitions, seed, batch_weights \
        = task
    if batch_weights == 1:
        records = []
        for weight in weights:
            act_from, act_to = _weight_transitions(
                profiler, int(weight), transitions, n_transitions, seed)
            delays = profiler.delays(int(weight), act_from, act_to)
            records.append((int(weight), act_from, act_to, delays))
        return records

    group_size = _resolve_group_weights(
        profiler, batch_weights, transitions, n_transitions)
    records = []
    for start in range(0, len(weights), group_size):
        group = [int(w) for w in weights[start:start + group_size]]
        per_weight = [
            _weight_transitions(profiler, w, transitions, n_transitions,
                                seed)
            for w in group
        ]
        sizes = [af.size for af, __ in per_weight]
        w_values = np.repeat(np.asarray(group, dtype=np.int64), sizes)
        flat_from = np.concatenate([af for af, __ in per_weight])
        flat_to = np.concatenate([at for __, at in per_weight])
        flat_delays = profiler.delays_batched(w_values, flat_from,
                                              flat_to)
        offsets = np.cumsum([0] + sizes)
        for k, weight in enumerate(group):
            act_from, act_to = per_weight[k]
            records.append((weight, act_from, act_to,
                            flat_delays[offsets[k]:offsets[k + 1]]))
    return records


@dataclass
class WeightTimingTable:
    """Timing characterization of a set of weight values.

    Stores, per weight, the maximum sensitized delay plus a *sparse* list
    of slow combinations ``(weight, act_from, act_to, delay)`` above
    ``floor_ps`` — everything the iterative selection of Sec. III-B needs
    without materializing 255 x 2^16 dense matrices.

    All delays are in picoseconds, already multiplied by ``time_scale``
    (the calibration factor pinning the global maximum to the paper's
    180 ps).
    """

    weights: np.ndarray
    max_delay_ps: np.ndarray
    combo_weight: np.ndarray
    combo_act_from: np.ndarray
    combo_act_to: np.ndarray
    combo_delay_ps: np.ndarray
    floor_ps: float
    time_scale: float
    psum_path_ps: float

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.int64)
        self.max_delay_ps = np.asarray(self.max_delay_ps, dtype=np.float64)

    @property
    def global_max_delay_ps(self) -> float:
        """Largest sensitized delay over all characterized weights."""
        return float(self.max_delay_ps.max())

    def max_delay_of(self, weight: int) -> float:
        idx = np.where(self.weights == weight)[0]
        if not idx.size:
            raise KeyError(f"weight {weight} not characterized")
        return float(self.max_delay_ps[idx[0]])

    def combos_for(self, weights: Sequence[int]) -> Tuple[np.ndarray, ...]:
        """Slow combos restricted to a candidate weight subset."""
        mask = np.isin(self.combo_weight, np.asarray(weights))
        return (self.combo_weight[mask], self.combo_act_from[mask],
                self.combo_act_to[mask], self.combo_delay_ps[mask])

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        """Write the table as compressed numpy archive."""
        np.savez_compressed(
            path,
            weights=self.weights,
            max_delay_ps=self.max_delay_ps,
            combo_weight=self.combo_weight,
            combo_act_from=self.combo_act_from,
            combo_act_to=self.combo_act_to,
            combo_delay_ps=self.combo_delay_ps,
            meta=np.array([self.floor_ps, self.time_scale,
                           self.psum_path_ps]),
        )

    @classmethod
    def load(cls, path: Path) -> "WeightTimingTable":
        data = np.load(path)
        floor_ps, time_scale, psum_path_ps = data["meta"]
        return cls(
            weights=data["weights"],
            max_delay_ps=data["max_delay_ps"],
            combo_weight=data["combo_weight"],
            combo_act_from=data["combo_act_from"],
            combo_act_to=data["combo_act_to"],
            combo_delay_ps=data["combo_delay_ps"],
            floor_ps=float(floor_ps),
            time_scale=float(time_scale),
            psum_path_ps=float(psum_path_ps),
        )

    @classmethod
    def characterize(cls, profiler: WeightDelayProfiler,
                     weights: Optional[Iterable[int]] = None,
                     transitions: Optional[
                         Tuple[np.ndarray, np.ndarray]] = None,
                     floor_ps: float = 100.0,
                     calibrate_to_ps: Optional[float] = ANCHOR_MAX_DELAY_PS,
                     n_transitions: Optional[int] = None,
                     seed: int = 0,
                     jobs: Optional[int] = 1,
                     batch_weights: Optional[int] = None
                     ) -> "WeightTimingTable":
        """Profile ``weights`` and build the sparse table.

        Args:
            profiler: The per-weight DTA engine.
            weights: Weight values to profile (default: all 255 symmetric
                8-bit values).
            transitions: Explicit activation transitions, shared by every
                weight (overrides ``n_transitions``).
            floor_ps: Keep only combos slower than this (after
                calibration); must be below the smallest delay threshold
                the selection will use.
            calibrate_to_ps: Pin the global maximum delay to this value
                (``None`` keeps raw library delays).
            n_transitions: Subsample this many of the 2^16 transitions
                *per weight*, each weight drawing from its own child RNG
                keyed on ``(seed, weight)`` — independent of ordering,
                chunking, and of which other weights are in the set.
                ``None`` (and no explicit ``transitions``) enumerates
                all 2^16 pairs, as in the paper.
            seed: Base seed for the per-weight transition subsampling.
            jobs: Shard the per-weight analyses over this many processes
                (``None``/``1`` = serial, ``0`` = all cores).  Per-weight
                profiles are pure functions of ``(seed, weight)`` and the
                calibration runs after the shards merge, so the sharded
                table is bit-for-bit identical to the serial one — which
                is why ``jobs`` must never participate in cache keys.
            batch_weights: Weights whose transitions concatenate into
                one flat one-launch DTA stream (``None``/``0`` =
                automatic, roughly one ``profiler.chunk`` window per
                group; ``1`` = the per-weight oracle loop).  Batching
                is bit-for-bit identical to the per-weight loop and
                composes with ``jobs``, so this knob must never
                participate in cache keys either.
        """
        mac = profiler.mac
        if weights is None:
            half = 1 << (mac.weight_bits - 1)
            weights = range(-half + 1, half)
        weights = np.asarray(sorted(set(int(w) for w in weights)))

        if jobs is None:
            jobs = 1
        elif jobs == 0:
            jobs = os.cpu_count() or 1
        jobs = max(1, min(jobs, weights.size))
        if jobs == 1:
            slow = _profile_chunk(
                (profiler, weights, transitions, n_transitions, seed,
                 batch_weights))
        else:
            chunks = np.array_split(weights, jobs)
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                parts = list(pool.map(
                    _profile_chunk,
                    [(profiler, chunk, transitions, n_transitions, seed,
                      batch_weights)
                     for chunk in chunks]))
            slow = [record for part in parts for record in part]

        max_delays = np.array([delays.max()
                               for __, __, __, delays in slow])

        time_scale = 1.0
        if calibrate_to_ps is not None and max_delays.max() > 0:
            time_scale = calibrate_to_ps / max_delays.max()
        max_delays *= time_scale

        combo_w: List[np.ndarray] = []
        combo_f: List[np.ndarray] = []
        combo_t: List[np.ndarray] = []
        combo_d: List[np.ndarray] = []
        for weight, a_from, a_to, delays in slow:
            scaled = delays * time_scale
            mask = scaled > floor_ps
            combo_w.append(np.full(int(mask.sum()), weight, dtype=np.int64))
            combo_f.append(a_from[mask].astype(np.int64))
            combo_t.append(a_to[mask].astype(np.int64))
            combo_d.append(scaled[mask])

        return cls(
            weights=weights,
            max_delay_ps=max_delays,
            combo_weight=np.concatenate(combo_w),
            combo_act_from=np.concatenate(combo_f),
            combo_act_to=np.concatenate(combo_t),
            combo_delay_ps=np.concatenate(combo_d),
            floor_ps=floor_ps,
            time_scale=time_scale,
            psum_path_ps=profiler.model.psum_path_ps * time_scale,
        )
