"""Figure 8 — tradeoff between power threshold and accuracy.

For each network, sweep the weight-power threshold (None, 900, 850, 825,
800 µW), restrict + retrain at each point, and record the number of
surviving weight values, the Optimized-HW power, and the accuracy.

This module is a thin adapter over the declarative sweep engine
(:mod:`repro.experiments.sweep`): the grid expansion, process pool,
stage-cache sharing and per-point caching all live there.  Use
``python -m repro sweep --experiment fig8`` for multi-backend overlays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.experiments import sweep as sweep_engine
from repro.experiments.sweep import (
    SweepResult,
    make_sweep_spec,
    run_sweep,
)
from repro.hw import DEFAULT_BACKEND_ID
from repro.power.estimator import PowerBreakdown

#: The paper's sweep and the weight-value counts it reports.
PAPER_SWEEP = (
    (None, 255), (900.0, 86), (850.0, 61), (825.0, 48), (800.0, 36),
)

#: The paper's threshold axis (single source: the sweep engine).
DEFAULT_THRESHOLDS = sweep_engine.DEFAULT_THRESHOLDS["fig8"]


@dataclass
class Fig8Point:
    """One sweep point."""

    threshold_uw: Optional[float]
    n_weights: int
    accuracy: float
    power_opt: PowerBreakdown


@dataclass
class Fig8Result:
    points: Dict[str, List[Fig8Point]]

    def accuracies(self, label: str) -> List[float]:
        return [p.accuracy for p in self.points[label]]


def result_from_sweep(result: SweepResult,
                      backend_id: Optional[str] = None,
                      seed: Optional[int] = None) -> Fig8Result:
    """Per-network Fig. 8 panels from sweep rows (one backend).

    Panels are one point per threshold, so multi-seed sweep results
    must be filtered to one ``seed`` (the first of the sweep by
    default) — mean±std curves live on ``result.aggregate()`` instead.
    """
    if seed is None:
        seed = result.sweep.seeds[0]
    points: Dict[str, List[Fig8Point]] = {
        spec.label: [] for spec in result.sweep.networks}
    for row in result.rows:
        if backend_id is not None and row.backend_id != backend_id:
            continue
        if row.seed != seed or row.skipped is not None:
            continue
        points[row.network].append(Fig8Point(**row.payload))
    return Fig8Result(points=points)


def run_result(scale: str = "ci",
               specs: Sequence[NetworkSpec] = NETWORK_SPECS[:1],
               thresholds: Sequence[Optional[float]] = DEFAULT_THRESHOLDS,
               seeds: Sequence[int] = (0,), jobs: Optional[int] = 1,
               cache_dir=None,
               backend: str = DEFAULT_BACKEND_ID) -> SweepResult:
    """The raw sweep result of the Fig. 8 grid; multi-seed callers
    aggregate to mean±std curves via ``result.aggregate()``."""
    sweep = make_sweep_spec("fig8", backends=(backend,), networks=specs,
                            thresholds=thresholds, seeds=seeds,
                            scale=scale)
    return run_sweep(sweep, jobs=jobs, cache_dir=cache_dir)


def run(scale: str = "ci",
        specs: Sequence[NetworkSpec] = NETWORK_SPECS[:1],
        thresholds: Sequence[Optional[float]] = DEFAULT_THRESHOLDS,
        seed: int = 0, jobs: Optional[int] = 1,
        cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID) -> Fig8Result:
    """Sweep the power threshold for each spec.

    Defaults to LeNet-5 only at CI scale; pass ``specs=NETWORK_SPECS``
    for all four panels.  Grid points are independent — ``jobs`` fans
    them out across processes and ``cache_dir`` shares the stage-graph
    artifact cache (e.g. a previous Table I run's training prefix).
    """
    return result_from_sweep(
        run_result(scale, specs=specs, thresholds=thresholds,
                   seeds=(seed,), jobs=jobs, cache_dir=cache_dir,
                   backend=backend))


def format_series(result: Fig8Result) -> str:
    lines = []
    for label, series in result.points.items():
        lines.append(f"--- {label} ---")
        lines.append("threshold[uW]  #weights  acc[%]  OptHW power[mW] "
                     "(dyn+leak)")
        for point in series:
            threshold = ("None" if point.threshold_uw is None
                         else f"{point.threshold_uw:.0f}")
            lines.append(
                f"{threshold:>13}  {point.n_weights:8d}  "
                f"{point.accuracy * 100:6.1f}  "
                f"{point.power_opt.total_uw / 1000:8.1f} "
                f"({point.power_opt.dynamic_uw / 1000:.1f}+"
                f"{point.power_opt.leakage_uw / 1000:.1f})"
            )
    lines.append("")
    lines.append("paper sweep (threshold -> #weights): "
                 + ", ".join(f"{t if t else 'None'}->{n}"
                             for t, n in PAPER_SWEEP))
    return "\n".join(lines)


def main(scale: str = "ci", all_networks: bool = False,
         jobs: Optional[int] = 1, cache_dir=None,
         backend: str = DEFAULT_BACKEND_ID,
         seeds: Sequence[int] = (0,)) -> Fig8Result:
    specs = NETWORK_SPECS if all_networks else NETWORK_SPECS[:1]
    print("=== Fig. 8: power threshold vs accuracy tradeoff ===")
    if len(tuple(seeds)) > 1:
        # Multi-seed panels render through the sweep formatter: the
        # per-seed rows plus the mean±std aggregate table and the
        # error-band overlay chart.
        sweep_result = run_result(scale, specs=specs, seeds=seeds,
                                  jobs=jobs, cache_dir=cache_dir,
                                  backend=backend)
        print(sweep_engine.format_sweep(sweep_result))
        return result_from_sweep(sweep_result)
    result = run(scale, specs=specs, seed=tuple(seeds)[0], jobs=jobs,
                 cache_dir=cache_dir, backend=backend)
    print(format_series(result))
    return result


if __name__ == "__main__":
    main(all_networks=True)
