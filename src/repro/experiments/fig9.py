"""Figure 9 — tradeoff between accuracy and selected activation values.

At a fixed weight-power threshold (825 µW; 900 µW for EfficientNet), the
delay threshold is swept from 180 ps down to 140 ps.  Each point runs the
randomized weight/activation removal, retrains under the surviving sets,
and records the number of surviving activation values and the accuracy.

This module is a thin adapter over the declarative sweep engine
(:mod:`repro.experiments.sweep`): the grid expansion, process pool,
stage-cache sharing (the per-candidate-set timing table is characterized
once and reused by every threshold) and per-point caching all live
there.  Use ``python -m repro sweep --experiment fig9`` for
multi-backend overlays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.experiments import sweep as sweep_engine
from repro.experiments.sweep import (
    SweepResult,
    fig9_weight_threshold,
    make_sweep_spec,
    run_sweep,
)
from repro.hw import DEFAULT_BACKEND_ID

#: Paper: x-axis points (threshold ps -> #activation values for the
#: CIFAR networks; EfficientNet numbers in parentheses in the figure).
PAPER_SWEEP = ((180, 256), (170, 234), (160, 221), (150, 179), (140, 73))

#: The paper's threshold axis (single source: the sweep engine).
DEFAULT_THRESHOLDS = sweep_engine.DEFAULT_THRESHOLDS["fig9"]

#: Backwards-compatible alias; the rule lives with the sweep engine now.
_weight_threshold_for = fig9_weight_threshold


@dataclass
class Fig9Point:
    threshold_ps: float
    n_weights: int
    n_activations: int
    accuracy: float


@dataclass
class Fig9Result:
    points: Dict[str, List[Fig9Point]]


def result_from_sweep(result: SweepResult,
                      backend_id: Optional[str] = None,
                      seed: Optional[int] = None) -> Fig9Result:
    """Per-network Fig. 9 panels from sweep rows (one backend).

    Panels are one point per threshold, so multi-seed sweep results
    must be filtered to one ``seed`` (the first of the sweep by
    default) — mean±std curves live on ``result.aggregate()`` instead.
    """
    if seed is None:
        seed = result.sweep.seeds[0]
    points: Dict[str, List[Fig9Point]] = {
        spec.label: [] for spec in result.sweep.networks}
    for row in result.rows:
        if backend_id is not None and row.backend_id != backend_id:
            continue
        if row.seed != seed or row.skipped is not None:
            continue
        points[row.network].append(Fig9Point(**row.payload))
    return Fig9Result(points=points)


def run_result(scale: str = "ci",
               specs: Sequence[NetworkSpec] = NETWORK_SPECS[:1],
               thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
               seeds: Sequence[int] = (0,), jobs: Optional[int] = 1,
               cache_dir=None,
               backend: str = DEFAULT_BACKEND_ID) -> SweepResult:
    """The raw sweep result of the Fig. 9 grid; multi-seed callers
    aggregate to mean±std curves via ``result.aggregate()``."""
    sweep = make_sweep_spec("fig9", backends=(backend,), networks=specs,
                            thresholds=thresholds, seeds=seeds,
                            scale=scale)
    return run_sweep(sweep, jobs=jobs, cache_dir=cache_dir)


def run(scale: str = "ci",
        specs: Sequence[NetworkSpec] = NETWORK_SPECS[:1],
        thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
        seed: int = 0, jobs: Optional[int] = 1,
        cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID) -> Fig9Result:
    """Sweep the delay threshold per spec at its fixed power threshold.

    Grid points are independent — ``jobs`` fans them out across
    processes and ``cache_dir`` shares the stage-graph artifact cache.
    """
    return result_from_sweep(
        run_result(scale, specs=specs, thresholds=thresholds,
                   seeds=(seed,), jobs=jobs, cache_dir=cache_dir,
                   backend=backend))


def format_series(result: Fig9Result) -> str:
    lines = []
    for label, series in result.points.items():
        lines.append(f"--- {label} ---")
        lines.append("max delay[ps]  #weights  #activations  acc[%]")
        for point in series:
            lines.append(
                f"{point.threshold_ps:13.0f}  {point.n_weights:8d}  "
                f"{point.n_activations:12d}  "
                f"{point.accuracy * 100:6.1f}"
            )
    lines.append("")
    lines.append("paper sweep (delay ps -> #activations): "
                 + ", ".join(f"{t}->{n}" for t, n in PAPER_SWEEP))
    return "\n".join(lines)


def main(scale: str = "ci", all_networks: bool = False,
         jobs: Optional[int] = 1, cache_dir=None,
         backend: str = DEFAULT_BACKEND_ID,
         seeds: Sequence[int] = (0,)) -> Fig9Result:
    specs = NETWORK_SPECS if all_networks else NETWORK_SPECS[:1]
    print("=== Fig. 9: delay threshold vs accuracy tradeoff ===")
    if len(tuple(seeds)) > 1:
        # Multi-seed panels render through the sweep formatter: the
        # per-seed rows plus the mean±std aggregate table and the
        # error-band overlay chart.
        sweep_result = run_result(scale, specs=specs, seeds=seeds,
                                  jobs=jobs, cache_dir=cache_dir,
                                  backend=backend)
        print(sweep_engine.format_sweep(sweep_result))
        return result_from_sweep(sweep_result)
    result = run(scale, specs=specs, seed=tuple(seeds)[0], jobs=jobs,
                 cache_dir=cache_dir, backend=backend)
    print(format_series(result))
    return result


if __name__ == "__main__":
    main(all_networks=True)
