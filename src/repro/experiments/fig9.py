"""Figure 9 — tradeoff between accuracy and selected activation values.

At a fixed weight-power threshold (825 µW; 900 µW for EfficientNet), the
delay threshold is swept from 180 ps down to 140 ps.  Each point runs the
randomized weight/activation removal, retrains under the surviving sets,
and records the number of surviving activation values and the accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.experiments.parallel import PanelTask, run_spec_panels
from repro.experiments.runner import ExperimentContext
from repro.hw import DEFAULT_BACKEND_ID
from repro.nn.restrict import ActivationFilter, WeightRestriction
from repro.timing.selection import DelaySelector

#: Paper: x-axis points (threshold ps -> #activation values for the
#: CIFAR networks; EfficientNet numbers in parentheses in the figure).
PAPER_SWEEP = ((180, 256), (170, 234), (160, 221), (150, 179), (140, 73))


@dataclass
class Fig9Point:
    threshold_ps: float
    n_weights: int
    n_activations: int
    accuracy: float


@dataclass
class Fig9Result:
    points: Dict[str, List[Fig9Point]]


def _weight_threshold_for(spec: NetworkSpec, scale: str) -> float:
    """825 µW for the CIFAR networks, 900 µW for EfficientNet (paper).

    At smoke scale only every 16th weight value is characterized, so the
    paper's 825 µW would leave too few values to train at all; the sweep
    then uses the looser 900 µW point (the delay axis is what the figure
    studies).
    """
    if scale == "smoke" or spec.network == "efficientnet-b0-lite":
        return 900.0
    return 825.0


def _run_panel(task: PanelTask) -> List[Fig9Point]:
    context = ExperimentContext(task.spec, task.scale, seed=task.seed,
                                cache_dir=task.cache_dir,
                                backend=task.backend)
    power_table = context.power_table
    candidates = power_table.select_below(
        _weight_threshold_for(task.spec, task.scale))
    timing_table = context.timing_table(candidates)
    selector = DelaySelector(timing_table,
                             n_restarts=context.config.n_restarts)
    series: List[Fig9Point] = []
    for threshold in sorted(task.thresholds, reverse=True):
        selection = selector.select(
            threshold, candidate_weights=candidates, seed=task.seed)
        if selection.n_weights < 2:
            continue
        model = context.reset_model()
        model.set_weight_restriction(
            WeightRestriction(selection.weights))
        model.set_activation_filter(
            ActivationFilter(selection.activations))
        accuracy = context.retrain(model)
        series.append(Fig9Point(
            threshold_ps=threshold,
            n_weights=selection.n_weights,
            n_activations=selection.n_activations,
            accuracy=accuracy,
        ))
    return series


def run(scale: str = "ci",
        specs: Sequence[NetworkSpec] = NETWORK_SPECS[:1],
        thresholds: Sequence[float] = (180.0, 170.0, 160.0, 150.0, 140.0),
        seed: int = 0, jobs: Optional[int] = 1,
        cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID) -> Fig9Result:
    """Sweep the delay threshold per spec at its fixed power threshold.

    Panels are independent — ``jobs`` fans them out across processes
    and ``cache_dir`` shares the stage-graph artifact cache.
    """
    return Fig9Result(points=run_spec_panels(
        _run_panel, specs, scale, thresholds, seed=seed, jobs=jobs,
        cache_dir=cache_dir, backend=backend))


def format_series(result: Fig9Result) -> str:
    lines = []
    for label, series in result.points.items():
        lines.append(f"--- {label} ---")
        lines.append("max delay[ps]  #weights  #activations  acc[%]")
        for point in series:
            lines.append(
                f"{point.threshold_ps:13.0f}  {point.n_weights:8d}  "
                f"{point.n_activations:12d}  "
                f"{point.accuracy * 100:6.1f}"
            )
    lines.append("")
    lines.append("paper sweep (delay ps -> #activations): "
                 + ", ".join(f"{t}->{n}" for t, n in PAPER_SWEEP))
    return "\n".join(lines)


def main(scale: str = "ci", all_networks: bool = False,
         jobs: Optional[int] = 1, cache_dir=None,
         backend: str = DEFAULT_BACKEND_ID) -> Fig9Result:
    specs = NETWORK_SPECS if all_networks else NETWORK_SPECS[:1]
    result = run(scale, specs=specs, jobs=jobs, cache_dir=cache_dir,
                 backend=backend)
    print("=== Fig. 9: delay threshold vs accuracy tradeoff ===")
    print(format_series(result))
    return result


if __name__ == "__main__":
    main(all_networks=True)
