"""Declarative sweep engine over backends × networks × thresholds × seeds.

The paper's headline results are sweeps — the Fig. 8/9 threshold curves
and the Table I trade-off — and the :mod:`repro.hw` registry multiplies
every one of them by a backend axis.  Instead of each figure hand-rolling
its own loop, a :class:`SweepSpec` declares the grid, :func:`expand`
turns it into a deduplicated list of :class:`SweepPoint` tasks, and
:func:`run_sweep` flattens those into the
:func:`~repro.experiments.parallel.parallel_map` process pool.

The ``accel`` experiment swaps the threshold axis for the accelerator
design space: ``array_shapes x hw_variants``
(:class:`~repro.systolic.spec.AcceleratorSpec` points evaluated by the
``accel_*`` pipeline stages).  Accelerator points key only the
``accel_*`` stage keys, so every design point of one (backend, network,
seed) shares the whole training/characterization prefix — and Standard
vs Optimized HW additionally share the ``accel_schedule`` artifact.

Caching makes the grid cheap where it overlaps:

* every pipeline stage is content-addressed (see
  :mod:`repro.core.stages`), so grid points that differ only in their
  threshold share the whole training/characterization prefix — computed
  once per (backend, network, seed), not once per grid point;
* on top of that, each finished grid point is itself stored under a
  sweep-level key (:func:`point_cache_key`), so re-running a sweep — or
  a larger sweep containing it — skips even the per-point retraining;
* tasks are scheduled round-robin across (backend, network, seed)
  prefix groups, so parallel workers warm *different* prefixes instead
  of racing to compute the same one.

``fig8``/``fig9``/``table1``/``backends`` are thin adapters over this
module; the ``sweep`` CLI subcommand exposes the full grid directly
(``python -m repro sweep --help``), including multi-backend overlays
the per-figure mains cannot express.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.artifacts import ArtifactStore, hash_key
from repro.core.pipeline import PipelineConfig
from repro.core.stages import backend_key_payload, shared_stage_keys
from repro.experiments.config import (
    NETWORK_SPECS,
    NetworkSpec,
    pipeline_config,
)
from repro.experiments.parallel import (
    ParallelTaskError,
    default_jobs,
    parallel_map,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.stats import (
    AggregateRow,
    aggregate_cell,
    aggregate_rows,
)
from repro.hw import DEFAULT_BACKEND_ID, HardwareBackend, get_backend
from repro.systolic.spec import (
    AcceleratorSpec,
    normalize_variant,
    parse_array_shape,
)

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "SweepRow",
    "SweepResult",
    "AggregateRow",
    "make_sweep_spec",
    "load_sweep_file",
    "load_spec_mapping",
    "sweep_spec_from_mapping",
    "expand",
    "point_config",
    "point_cache_key",
    "run_sweep",
    "format_sweep",
    "fig9_weight_threshold",
    "resolve_network",
    "sweep_experiments",
]

#: Default threshold axes, matching the paper's figures.
DEFAULT_THRESHOLDS: Dict[str, Tuple[Optional[float], ...]] = {
    "table1": (None,),
    "fig8": (None, 900.0, 850.0, 825.0, 800.0),
    "fig9": (180.0, 170.0, 160.0, 150.0, 140.0),
}

#: Experiments without a threshold axis.
_NO_THRESHOLD_EXPERIMENTS = ("table1", "accel")

#: Default hardware-variant axis of the ``accel`` experiment — the
#: paper's Standard vs Optimized HW comparison.
DEFAULT_HW_VARIANTS: Tuple[str, ...] = ("standard", "optimized")

#: The hardware-independent-per-threshold prefix of the stage graph:
#: grid points that differ only in their threshold axis share these
#: stages' cache keys by construction.
SHARED_PREFIX_STAGES: Tuple[str, ...] = (
    "dataset", "baseline", "pruned", "operand_stats", "power_table",
)


def fig9_weight_threshold(spec: NetworkSpec, scale: str) -> float:
    """825 µW for the CIFAR networks, 900 µW for EfficientNet (paper).

    At smoke scale only every 16th weight value is characterized, so the
    paper's 825 µW would leave too few values to train at all; the sweep
    then uses the looser 900 µW point (the delay axis is what Fig. 9
    studies).
    """
    if scale == "smoke" or spec.network == "efficientnet-b0-lite":
        return 900.0
    return 825.0


def resolve_network(name: Union[str, NetworkSpec]) -> NetworkSpec:
    """A :class:`NetworkSpec` from a spec, network name, or row label."""
    if isinstance(name, NetworkSpec):
        return name
    lowered = str(name).lower()
    for spec in NETWORK_SPECS:
        if lowered in (spec.network.lower(), spec.label.lower()):
            return spec
    choices = sorted(spec.network for spec in NETWORK_SPECS)
    raise ValueError(f"unknown network {name!r}; choose from {choices}")


# ----------------------------------------------------------------------
# grid declaration and expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep grid (already normalized).

    Build via :func:`make_sweep_spec` (or :func:`load_sweep_file`),
    which validates the experiment, resolves network names, applies the
    per-experiment threshold rules and deduplicates every axis.
    """

    experiment: str
    backends: Tuple[Union[str, HardwareBackend], ...] = (
        DEFAULT_BACKEND_ID,)
    networks: Tuple[NetworkSpec, ...] = (NETWORK_SPECS[0],)
    thresholds: Tuple[Optional[float], ...] = (None,)
    seeds: Tuple[int, ...] = (0,)
    scale: str = "ci"
    #: Accelerator axes (``accel`` experiment only): array geometries
    #: (``None`` = the backend's own), hardware variants, and the
    #: mapping knob applied to every design point.
    array_shapes: Tuple[Optional[Tuple[int, int]], ...] = (None,)
    hw_variants: Tuple[str, ...] = ("standard",)
    stream_batch: int = 1

    def describe(self) -> str:
        line = (f"{self.experiment} | scale {self.scale} | "
                f"{len(self.backends)} backend(s) x "
                f"{len(self.networks)} network(s) x ")
        if self.experiment == "accel":
            line += (f"{len(self.array_shapes)} shape(s) x "
                     f"{len(self.hw_variants)} variant(s) x ")
        else:
            line += f"{len(self.thresholds)} threshold(s) x "
        line += f"{len(self.seeds)} seed(s)"
        return line


def make_sweep_spec(experiment: str,
                    backends: Optional[Sequence] = None,
                    networks: Optional[Sequence] = None,
                    thresholds: Optional[
                        Sequence[Optional[float]]] = None,
                    seeds: Optional[Sequence[int]] = None,
                    scale: str = "ci",
                    array_shapes: Optional[Sequence] = None,
                    hw_variants: Optional[Sequence[str]] = None,
                    stream_batch: int = 1) -> SweepSpec:
    """Validate and normalize a sweep grid.

    Args:
        experiment: One of :func:`sweep_experiments`.
        backends: Registry ids and/or :class:`HardwareBackend` specs.
        networks: :class:`NetworkSpec` objects, network names or labels.
        thresholds: Power thresholds in µW for ``fig8`` (``None`` = no
            restriction), delay thresholds in ps for ``fig9`` (sorted
            descending, as the paper sweeps them); ``table1`` and
            ``accel`` have no threshold axis.
        seeds: Pipeline seeds.
        scale: Experiment scale (``smoke``/``ci``/``paper``).
        array_shapes: ``accel`` only — array geometries, in any
            spelling :func:`~repro.systolic.spec.parse_array_shape`
            accepts (``"32x32"``, ``(32, 32)``, ``None`` = the
            backend's own geometry).  Default: the backend geometry.
        hw_variants: ``accel`` only — hardware variants
            (``standard``/``optimized``).  Default: both.
        stream_batch: ``accel`` only — inferences streamed per
            stationary tile load, applied to every design point.
    """
    if experiment not in _POINT_RUNNERS:
        raise ValueError(f"unknown sweep experiment {experiment!r}; "
                         f"choose from {sweep_experiments()}")
    backend_axis = tuple(dict.fromkeys(
        backends if backends else (DEFAULT_BACKEND_ID,)))
    network_axis = tuple(dict.fromkeys(
        resolve_network(n)
        for n in (networks if networks else (NETWORK_SPECS[0],))))
    seed_axis = tuple(dict.fromkeys(
        int(s) for s in (seeds if seeds is not None else (0,))))
    if not seed_axis:
        raise ValueError("at least one seed is required")

    if experiment in _NO_THRESHOLD_EXPERIMENTS:
        if thresholds not in (None, (), (None,)) \
                and tuple(thresholds) != (None,):
            raise ValueError(f"{experiment} has no threshold axis")
        threshold_axis: Tuple[Optional[float], ...] = (None,)
    else:
        given = (tuple(thresholds) if thresholds
                 else DEFAULT_THRESHOLDS[experiment])
        normalized = tuple(
            None if t is None else float(t) for t in given)
        if experiment == "fig9":
            if any(t is None for t in normalized):
                raise ValueError(
                    "fig9 delay thresholds must be numbers (ps)")
            normalized = tuple(sorted(set(normalized), reverse=True))
        else:
            normalized = tuple(dict.fromkeys(normalized))
        if not normalized:
            raise ValueError("at least one threshold is required")
        threshold_axis = normalized

    if experiment == "accel":
        shape_axis = tuple(dict.fromkeys(
            parse_array_shape(s)
            for s in (array_shapes if array_shapes else (None,))))
        variant_axis = tuple(dict.fromkeys(
            normalize_variant(v)
            for v in (hw_variants if hw_variants
                      else DEFAULT_HW_VARIANTS)))
        if int(stream_batch) < 1:
            raise ValueError("stream_batch must be >= 1")
    else:
        # The normalized defaults round-trip (a non-accel SweepSpec's
        # own fields fed back in); anything else is a real axis request
        # on an experiment that has no such axis.
        if array_shapes and tuple(array_shapes) != (None,):
            raise ValueError(
                "array_shapes is an accel-only axis; use "
                "experiment='accel'")
        if hw_variants and tuple(hw_variants) != ("standard",):
            raise ValueError(
                "hw_variants is an accel-only axis; use "
                "experiment='accel'")
        if int(stream_batch) != 1:
            raise ValueError("stream_batch is an accel-only knob")
        shape_axis = (None,)
        variant_axis = ("standard",)

    return SweepSpec(experiment=experiment, backends=backend_axis,
                     networks=network_axis, thresholds=threshold_axis,
                     seeds=seed_axis, scale=scale,
                     array_shapes=shape_axis, hw_variants=variant_axis,
                     stream_batch=int(stream_batch))


def sweep_spec_from_mapping(data: Mapping[str, Any],
                            source: str = "sweep spec") -> SweepSpec:
    """A :class:`SweepSpec` from an already-parsed JSON/TOML mapping.

    The single validator behind :func:`load_sweep_file` and the
    experiment service's ``POST /sweeps`` body — both accept exactly
    the same keys: ``experiment`` (required), ``backends``,
    ``networks``, ``thresholds`` (``null``/``"none"`` entries mean "no
    restriction" for fig8), ``seeds``, ``scale``, plus the
    accel-only axes ``array_shapes`` (``"32x32"``-style strings or
    ``[rows, cols]`` pairs; ``null``/``"hw"`` = the backend's own
    geometry), ``hw_variants`` and ``stream_batch``.
    """
    if not isinstance(data, Mapping) or "experiment" not in data:
        raise ValueError(
            f"{source} must be a table/object with an "
            f"'experiment' key")
    known = {"experiment", "backends", "networks", "thresholds",
             "seeds", "scale", "array_shapes", "hw_variants",
             "stream_batch"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown sweep spec keys {unknown}; "
                         f"recognized: {sorted(known)}")
    thresholds = data.get("thresholds")
    if thresholds is not None:
        thresholds = [None if isinstance(t, str)
                      and t.lower() == "none" else t
                      for t in thresholds]
    return make_sweep_spec(
        data["experiment"],
        backends=data.get("backends"),
        networks=data.get("networks"),
        thresholds=thresholds,
        seeds=data.get("seeds"),
        scale=data.get("scale", "ci"),
        array_shapes=data.get("array_shapes"),
        hw_variants=data.get("hw_variants"),
        stream_batch=data.get("stream_batch", 1),
    )


def load_spec_mapping(path) -> Dict[str, Any]:
    """The raw mapping of a JSON/TOML spec file (shared parser)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        import tomllib

        data = tomllib.loads(text)
    else:
        data = json.loads(text)
    if not isinstance(data, Mapping):
        raise ValueError(
            f"spec file {str(path)!r} must contain a table/object")
    return dict(data)


def load_sweep_file(path) -> SweepSpec:
    """A :class:`SweepSpec` from a small JSON or TOML file.

    See :func:`sweep_spec_from_mapping` for the recognized keys.
    """
    return sweep_spec_from_mapping(
        load_spec_mapping(path),
        source=f"sweep spec {str(path)!r}")


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved grid point, picklable for worker dispatch."""

    experiment: str
    backend: HardwareBackend
    spec: NetworkSpec
    threshold: Optional[float]
    seed: int
    scale: str
    #: Accelerator design point (``accel`` experiment only), resolved
    #: against the backend's geometry at expansion time.
    accel: Optional[AcceleratorSpec] = None

    def describe(self) -> str:
        threshold = ("-" if self.threshold is None
                     else f"{self.threshold:g}")
        accel = ("" if self.accel is None
                 else f" accel={self.accel.describe()}")
        return (f"{self.experiment} point [network={self.spec.label} "
                f"backend={self.backend.backend_id} "
                f"threshold={threshold}{accel} seed={self.seed} "
                f"scale={self.scale}]")

    def key(self) -> str:
        """Grid identity — unique per distinct point, stable across
        runs; used for deduplication and the property tests."""
        return hash_key({
            "sweep_point": self.experiment,
            "backend": self.backend.key_payload(),
            "network": self.spec.network,
            "dataset": self.spec.dataset,
            "num_classes": self.spec.num_classes,
            "threshold": self.threshold,
            "accel": (None if self.accel is None
                      else self.accel.key_payload()),
            "seed": self.seed,
            "scale": self.scale,
        })


def expand(sweep: SweepSpec) -> List[SweepPoint]:
    """The deduplicated task list of a sweep grid.

    Expansion order is deterministic — backends, then networks, then
    seeds, then thresholds / accelerator points (innermost) — so points
    sharing a training prefix are contiguous and results group
    naturally per panel.  Accelerator specs are resolved against each
    backend's geometry before dedup, so an explicit shape equal to the
    backend default collapses into one point.
    """
    backends = tuple(
        b if isinstance(b, HardwareBackend) else get_backend(b)
        for b in sweep.backends)
    points: List[SweepPoint] = []
    seen = set()
    for backend in backends:
        if sweep.experiment == "accel":
            base = backend.build_systolic_config()
            accel_axis = [
                AcceleratorSpec(
                    rows=None if shape is None else shape[0],
                    cols=None if shape is None else shape[1],
                    variant=variant,
                    stream_batch=sweep.stream_batch,
                ).resolved(base)
                for shape in sweep.array_shapes
                for variant in sweep.hw_variants
            ]
        else:
            accel_axis = [None]
        for spec in sweep.networks:
            for seed in sweep.seeds:
                for threshold in sweep.thresholds:
                    for accel in accel_axis:
                        point = SweepPoint(
                            experiment=sweep.experiment,
                            backend=backend, spec=spec,
                            threshold=threshold, seed=seed,
                            scale=sweep.scale, accel=accel)
                        key = point.key()
                        if key not in seen:
                            seen.add(key)
                            points.append(point)
    return points


def point_config(point: SweepPoint, char_jobs: int = 1,
                 verbose: bool = False) -> PipelineConfig:
    """The pipeline config one grid point runs under."""
    return pipeline_config(point.spec, point.scale, seed=point.seed,
                           verbose=verbose, backend=point.backend,
                           char_jobs=char_jobs, accel=point.accel)


#: Config fields that never influence results and must therefore never
#: enter a cache key (sharding, megabatching and kernel selection are
#: bit-for-bit; the backend is hashed via its full spec payload instead
#: of its registry id).
_NON_KEY_FIELDS = ("backend", "char_jobs", "char_batch_weights",
                   "sim_kernel", "verbose")


def point_cache_key(point: SweepPoint, config: PipelineConfig) -> str:
    """Sweep-level cache key of one grid point's finished result.

    Hashes the experiment, the point's threshold, the full backend spec
    and every result-relevant config field, so a re-run (or a larger
    sweep containing this point) reuses the finished row — including
    its per-threshold retraining, which is not a pipeline stage of its
    own.
    """
    return hash_key({
        "stage": f"sweep/{point.experiment}",
        "version": "1",
        "backend": backend_key_payload(config),
        "threshold": point.threshold,
        "config": {f.name: getattr(config, f.name)
                   for f in dataclass_fields(config)
                   if f.name not in _NON_KEY_FIELDS},
    })


def shared_prefix_count(points: Sequence[SweepPoint]) -> int:
    """Distinct training/characterization prefixes across the grid.

    Counts unique key tuples of :data:`SHARED_PREFIX_STAGES` — the
    number of times the expensive prefix actually runs when every grid
    point shares one artifact store.
    """
    prefixes = set()
    for point in points:
        keys = shared_stage_keys(point_config(point),
                                 SHARED_PREFIX_STAGES)
        prefixes.add(tuple(keys[name] for name in SHARED_PREFIX_STAGES))
    return len(prefixes)


# ----------------------------------------------------------------------
# point execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRow:
    """One grid point's tidy outcome."""

    experiment: str
    backend_id: str
    network: str
    threshold: Optional[float]
    seed: int
    scale: str
    #: Experiment-specific result record (report object or metric
    #: dict); ``None`` when the point was skipped.
    payload: Any
    #: Flat numeric metrics for tables/charts/CSV.
    metrics: Mapping[str, float]
    #: Reason the point produced no result (e.g. too few survivors).
    skipped: Optional[str] = None
    #: Whether the finished row was served from the artifact store
    #: (memory or disk) instead of being computed.
    cached: bool = False
    #: Accelerator design-point label (``accel`` sweeps), e.g.
    #: ``"64x64/optimized"``; ``None`` for threshold experiments.
    accel: Optional[str] = None


def _point_table1(point: SweepPoint, context: ExperimentContext
                  ) -> Dict[str, Any]:
    report = context.report()
    return {
        "payload": report,
        "metrics": {
            "accuracy_orig": report.accuracy_orig,
            "accuracy_prop": report.accuracy_prop,
            "power_opt_orig_mw": report.power_opt_orig.total_uw / 1000,
            "power_opt_prop_vs_mw":
                report.power_opt_prop_vs.total_uw / 1000,
            "reduction_opt_pct": report.reduction_opt,
            "n_weights": report.n_selected_weights,
            "n_activations": report.n_selected_activations,
            "delay_reduction_ps": report.max_delay_reduction_ps,
        },
        "skipped": None,
    }


def _point_fig8(point: SweepPoint, context: ExperimentContext
                ) -> Dict[str, Any]:
    from repro.nn.restrict import WeightRestriction

    table = context.power_table
    model = context.reset_model()
    if point.threshold is None:
        allowed = table.weights.copy()
        accuracy = context.accuracy_pruned
    else:
        allowed = table.select_below(point.threshold)
        if allowed.size < 2:
            return {"payload": None, "metrics": {},
                    "skipped": f"only {allowed.size} weight value(s) at "
                               f"or below {point.threshold:g} uW"}
        model.set_weight_restriction(WeightRestriction(allowed))
        accuracy = context.retrain(model)
    __, power_opt = context.measure_power(model)
    return {
        "payload": {
            "threshold_uw": point.threshold,
            "n_weights": int(allowed.size),
            "accuracy": accuracy,
            "power_opt": power_opt,
        },
        "metrics": {
            "accuracy": accuracy,
            "n_weights": int(allowed.size),
            "power_opt_mw": power_opt.total_uw / 1000,
            "power_dyn_mw": power_opt.dynamic_uw / 1000,
            "power_leak_mw": power_opt.leakage_uw / 1000,
        },
        "skipped": None,
    }


def _point_fig9(point: SweepPoint, context: ExperimentContext
                ) -> Dict[str, Any]:
    from repro.nn.restrict import ActivationFilter, WeightRestriction
    from repro.timing.selection import DelaySelector

    power_table = context.power_table
    candidates = power_table.select_below(
        fig9_weight_threshold(point.spec, point.scale))
    timing_table = context.timing_table(candidates)
    selector = DelaySelector(timing_table,
                             n_restarts=context.config.n_restarts)
    selection = selector.select(point.threshold,
                                candidate_weights=candidates,
                                seed=point.seed)
    if selection.n_weights < 2:
        return {"payload": None, "metrics": {},
                "skipped": f"only {selection.n_weights} weight value(s) "
                           f"survive {point.threshold:g} ps"}
    model = context.reset_model()
    model.set_weight_restriction(WeightRestriction(selection.weights))
    model.set_activation_filter(ActivationFilter(selection.activations))
    accuracy = context.retrain(model)
    return {
        "payload": {
            "threshold_ps": point.threshold,
            "n_weights": selection.n_weights,
            "n_activations": selection.n_activations,
            "accuracy": accuracy,
        },
        "metrics": {
            "accuracy": accuracy,
            "n_weights": selection.n_weights,
            "n_activations": selection.n_activations,
        },
        "skipped": None,
    }


def _point_accel(point: SweepPoint, context: ExperimentContext
                 ) -> Dict[str, Any]:
    evaluation = context.accel_eval()
    network = evaluation["network"]
    return {
        "payload": evaluation,
        "metrics": {
            "utilization_pct": network["utilization"] * 100.0,
            "power_mw": network["power"].total_uw / 1000,
            "power_dyn_mw": network["power"].dynamic_uw / 1000,
            "power_leak_mw": network["power"].leakage_uw / 1000,
            "power_vs_mw": network["power_vs"].total_uw / 1000,
            "latency_us": network["latency_us"],
            "energy_uj": network["energy_uj"],
            "energy_vs_uj": network["energy_vs_uj"],
            "total_cycles": network["total_cycles"],
        },
        "skipped": None,
    }


#: Registered per-point runners; the mapping's keys are the valid sweep
#: experiments (tests may register synthetic ones).
_POINT_RUNNERS: Dict[str, Callable[[SweepPoint, ExperimentContext],
                                   Dict[str, Any]]] = {
    "table1": _point_table1,
    "fig8": _point_fig8,
    "fig9": _point_fig9,
    "accel": _point_accel,
}


def sweep_experiments() -> Tuple[str, ...]:
    """Experiments the sweep engine can run."""
    return tuple(sorted(_POINT_RUNNERS))


def _execute_point(point: SweepPoint, context: ExperimentContext
                   ) -> SweepRow:
    """Run (or fetch) one grid point through the artifact store."""
    runner = _POINT_RUNNERS[point.experiment]
    key = point_cache_key(point, context.config)
    cached = key in context.store
    outcome = context.store.get_or_compute(
        key, lambda: runner(point, context))
    return SweepRow(
        experiment=point.experiment,
        backend_id=point.backend.backend_id,
        network=point.spec.label,
        threshold=point.threshold,
        seed=point.seed,
        scale=point.scale,
        payload=outcome["payload"],
        metrics=dict(outcome["metrics"]),
        skipped=outcome["skipped"],
        cached=cached,
        accel=(None if point.accel is None
               else point.accel.describe()),
    )


@dataclass(frozen=True)
class PointTask:
    """One grid point plus worker-side context knobs (picklable)."""

    point: SweepPoint
    cache_dir: Optional[str]
    char_jobs: int
    verbose: bool

    def describe(self) -> str:
        return self.point.describe()


def _run_point(task: PointTask) -> SweepRow:
    point = task.point
    context = ExperimentContext(point.spec, point.scale,
                                seed=point.seed, verbose=task.verbose,
                                cache_dir=task.cache_dir,
                                backend=point.backend,
                                char_jobs=task.char_jobs,
                                accel=point.accel)
    return _execute_point(point, context)


def _scheduled_order(points: Sequence[SweepPoint]) -> List[int]:
    """Round-robin permutation across (backend, network, seed) groups.

    Contiguous same-prefix points would make parallel workers race to
    compute the same training prefix; interleaving the groups lets each
    worker warm a different prefix, after which the remaining points of
    every group are cache hits.
    """
    groups: Dict[Tuple, List[int]] = {}
    for index, point in enumerate(points):
        group = (point.backend.backend_id, point.spec.label, point.seed,
                 point.scale)
        groups.setdefault(group, []).append(index)
    queues = list(groups.values())
    order: List[int] = []
    while queues:
        queues = [q for q in queues if q]
        for queue in queues:
            if queue:
                order.append(queue.pop(0))
    return order


class _ProgressReporter:
    """Streams a done/cached/remaining line per finished grid point.

    Lines go to ``stderr`` so the stdout result tables stay parseable;
    the end-of-run totals additionally land in :func:`format_sweep`.
    """

    def __init__(self, total: int, stream=None) -> None:
        self.total = total
        self.done = 0
        self.cached = 0
        self.stream = stream if stream is not None else sys.stderr

    def start(self, sweep: SweepSpec, precached: Optional[int],
              jobs: int) -> None:
        line = (f"sweep: {sweep.describe()} -> {self.total} grid "
                f"point(s)")
        if precached is not None:
            line += f", {precached} already in the artifact store"
        if jobs > 1:
            line += f", {jobs} workers"
        print(line, file=self.stream, flush=True)

    def finished(self, point: SweepPoint, row: SweepRow) -> None:
        self.done += 1
        self.cached += 1 if row.cached else 0
        status = "cached" if row.cached else "computed"
        if row.skipped is not None:
            status += ", skipped"
        print(f"  [{self.done}/{self.total}] {point.describe()} "
              f"- {status} ({self.cached} from cache, "
              f"{self.total - self.done} remaining)",
              file=self.stream, flush=True)


def _precached_count(points: Sequence[SweepPoint], cache: Optional[str],
                     store: Optional[ArtifactStore],
                     char_jobs: int) -> Optional[int]:
    """How many grid points the artifact store can already serve.

    Probes the sweep-level point keys in the given store (or a throwaway
    view of the on-disk cache); ``None`` when there is nowhere to look.
    """
    if store is None:
        if cache is None:
            return None
        store = ArtifactStore(cache)
    return sum(
        1 for point in points
        if point_cache_key(point,
                           point_config(point, char_jobs)) in store)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """All grid rows (expansion order) plus cache statistics."""

    sweep: SweepSpec
    rows: List[SweepRow]
    #: Artifact-store counters; populated for in-process (serial) runs,
    #: ``None`` when workers owned their stores.
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    shared_prefixes: int = 0

    def rows_for(self, backend_id: Optional[str] = None,
                 network: Optional[str] = None,
                 seed: Optional[int] = None) -> List[SweepRow]:
        return [row for row in self.rows
                if (backend_id is None or row.backend_id == backend_id)
                and (network is None or row.network == network)
                and (seed is None or row.seed == seed)]

    def aggregate(self) -> List[AggregateRow]:
        """Rows reduced over the seed axis (see
        :mod:`repro.experiments.stats`): one :class:`AggregateRow` per
        ``(backend, network, threshold)`` group, carrying mean / std /
        min / max / n for every numeric metric.  Single-seed groups
        pass their metric values through bit-identically."""
        return aggregate_rows(self.rows)

    def tidy(self) -> List[Dict[str, Any]]:
        """One flat dict per grid point — ready for CSV/dataframes."""
        records = []
        for row in self.rows:
            record: Dict[str, Any] = {
                "experiment": row.experiment,
                "backend": row.backend_id,
                "network": row.network,
                "threshold": row.threshold,
                "accel": row.accel or "",
                "seed": row.seed,
                "scale": row.scale,
                "skipped": row.skipped or "",
                "cached": int(row.cached),
            }
            record.update(row.metrics)
            records.append(record)
        return records

    def tidy_aggregated(self) -> List[Dict[str, Any]]:
        """One flat dict per seed group — the mean±std view.

        Columns: the grid identity (seed axis collapsed to ``seeds``),
        ``n_seeds``/``n_skipped``, then ``<metric>_mean``,
        ``<metric>_std``, ``<metric>_min`` and ``<metric>_max`` per
        numeric metric.
        """
        records = []
        for agg in self.aggregate():
            record: Dict[str, Any] = {
                "experiment": agg.experiment,
                "backend": agg.backend_id,
                "network": agg.network,
                "threshold": agg.threshold,
                "accel": agg.accel or "",
                "scale": agg.scale,
                "seeds": ";".join(str(s) for s in agg.seeds),
                "n_seeds": agg.n_seeds,
                "n_skipped": agg.n_skipped,
                "skipped": agg.skipped or "",
            }
            for name in agg.metrics_mean:
                record[f"{name}_mean"] = agg.metrics_mean[name]
                record[f"{name}_std"] = agg.metrics_std[name]
                record[f"{name}_min"] = agg.metrics_min[name]
                record[f"{name}_max"] = agg.metrics_max[name]
            records.append(record)
        return records

    def write_csv(self, path, aggregated: bool = False) -> None:
        records = (self.tidy_aggregated() if aggregated
                   else self.tidy())
        columns: List[str] = []
        for record in records:
            for name in record:
                if name not in columns:
                    columns.append(name)
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns,
                                    restval="")
            writer.writeheader()
            writer.writerows(records)


def _threshold_label(threshold: Optional[float]) -> str:
    return "None" if threshold is None else f"{threshold:g}"


def _series_label(row: SweepRow, many_seeds: bool,
                  many_networks: bool = False) -> str:
    """Overlay series identity of a row.

    The network is part of the label whenever the charted rows span
    more than one network — without it, same-backend rows of distinct
    networks collapse into one colliding series.
    """
    label = row.backend_id
    if many_networks:
        label += f" {row.network}"
    if many_seeds:
        label += f" s{row.seed}"
    return label


def _format_cell(value: float, fmt: str, scale: float) -> str:
    scaled = value * scale
    if fmt.endswith("d"):
        return format(int(round(scaled)), fmt)
    return format(scaled, fmt)


def _metric_matrix(rows: Sequence[SweepRow], metric: str, title: str,
                   fmt: str, scale: float = 1.0) -> List[str]:
    """Per-backend overlay: one line per backend (series), one column
    per threshold — the figure panel as a text chart."""
    thresholds = list(dict.fromkeys(row.threshold for row in rows))
    many_seeds = len({row.seed for row in rows}) > 1
    many_networks = len({row.network for row in rows}) > 1
    series = list(dict.fromkeys(
        _series_label(row, many_seeds, many_networks) for row in rows))
    width = max(8, max(len(_threshold_label(t)) for t in thresholds) + 2)
    label_width = max(len(s) for s in series)
    lines = [title,
             " " * label_width + " |" + "".join(
                 f"{_threshold_label(t):>{width}}" for t in thresholds)]
    for name in series:
        cells = []
        for threshold in thresholds:
            cell = "-"
            for row in rows:
                if (_series_label(row, many_seeds, many_networks)
                        == name and row.threshold == threshold):
                    if row.skipped is None and metric in row.metrics:
                        cell = _format_cell(row.metrics[metric], fmt,
                                            scale)
                    break
            cells.append(f"{cell:>{width}}")
        lines.append(f"{name:<{label_width}} |" + "".join(cells))
    return lines


def _aggregate_series_label(agg: AggregateRow,
                            many_networks: bool) -> str:
    return (f"{agg.backend_id} {agg.network}" if many_networks
            else agg.backend_id)


def _aggregate_matrix(aggregates: Sequence[AggregateRow], metric: str,
                      title: str, fmt: str,
                      scale: float = 1.0) -> List[str]:
    """Error-band overlay: one ``mean±std`` cell per (series,
    threshold), the std band computed over the seed axis."""
    thresholds = list(dict.fromkeys(a.threshold for a in aggregates))
    many_networks = len({a.network for a in aggregates}) > 1
    series = list(dict.fromkeys(
        _aggregate_series_label(a, many_networks) for a in aggregates))
    cells: Dict[Tuple[str, Optional[float]], str] = {}
    for agg in aggregates:
        slot = (_aggregate_series_label(agg, many_networks),
                agg.threshold)
        cells.setdefault(slot, aggregate_cell(agg, metric, fmt, scale))
    width = max(10, max(len(c) for c in cells.values()) + 2) \
        if cells else 10
    width = max(width,
                max(len(_threshold_label(t)) for t in thresholds) + 2)
    label_width = max(len(s) for s in series)
    lines = [title,
             " " * label_width + " |" + "".join(
                 f"{_threshold_label(t):>{width}}" for t in thresholds)]
    for name in series:
        row_cells = [f"{cells.get((name, t), '-'):>{width}}"
                     for t in thresholds]
        lines.append(f"{name:<{label_width}} |" + "".join(row_cells))
    return lines


def _accel_shape(label: Optional[str]) -> str:
    """The geometry part of an accel row label (``64x64/optimized`` →
    ``64x64``)."""
    return (label or "-").split("/")[0]


def _accel_variant(label: Optional[str]) -> str:
    """The variant part of an accel row label."""
    parts = (label or "-").split("/")
    return parts[1] if len(parts) > 1 else "-"


def _accel_matrix(rows: Sequence[SweepRow], metric: str, title: str,
                  fmt: str, scale: float = 1.0) -> List[str]:
    """Design-space overlay: one line per hardware variant (series),
    one column per array shape — the accelerator counterpart of
    :func:`_metric_matrix`."""
    shapes = list(dict.fromkeys(_accel_shape(row.accel)
                                for row in rows))
    many_backends = len({row.backend_id for row in rows}) > 1
    many_networks = len({row.network for row in rows}) > 1
    many_seeds = len({row.seed for row in rows}) > 1

    def series(row: SweepRow) -> str:
        label = _accel_variant(row.accel)
        if many_backends:
            label = f"{row.backend_id} {label}"
        if many_networks:
            label += f" {row.network}"
        if many_seeds:
            label += f" s{row.seed}"
        return label

    names = list(dict.fromkeys(series(row) for row in rows))
    width = max(10, max(len(s) for s in shapes) + 2)
    label_width = max(len(s) for s in names)
    lines = [title,
             " " * label_width + " |" + "".join(
                 f"{s:>{width}}" for s in shapes)]
    for name in names:
        cells = []
        for shape in shapes:
            cell = "-"
            for row in rows:
                if (series(row) == name
                        and _accel_shape(row.accel) == shape):
                    if row.skipped is None and metric in row.metrics:
                        cell = _format_cell(row.metrics[metric], fmt,
                                            scale)
                    break
            cells.append(f"{cell:>{width}}")
        lines.append(f"{name:<{label_width}} |" + "".join(cells))
    return lines


_DETAIL_COLUMNS: Dict[str, List[Tuple[str, str, str, float]]] = {
    # metric key, column header, format, display scale
    "fig8": [("accuracy", "acc[%]", ".1f", 100.0),
             ("n_weights", "#weights", "d", 1.0),
             ("power_opt_mw", "OptHW[mW]", ".1f", 1.0)],
    "fig9": [("accuracy", "acc[%]", ".1f", 100.0),
             ("n_weights", "#weights", "d", 1.0),
             ("n_activations", "#acts", "d", 1.0)],
    "table1": [("accuracy_orig", "acc.orig[%]", ".1f", 100.0),
               ("accuracy_prop", "acc.prop[%]", ".1f", 100.0),
               ("power_opt_orig_mw", "OptHW.orig", ".1f", 1.0),
               ("power_opt_prop_vs_mw", "OptHW.prop", ".1f", 1.0),
               ("reduction_opt_pct", "red[%]", ".1f", 1.0),
               ("delay_reduction_ps", "dly.red[ps]", ".0f", 1.0)],
    "accel": [("utilization_pct", "util[%]", ".1f", 1.0),
              ("power_mw", "P[mW]", ".2f", 1.0),
              ("power_vs_mw", "P@vdd[mW]", ".2f", 1.0),
              ("energy_uj", "E[uJ]", ".3f", 1.0),
              ("latency_us", "lat[us]", ".2f", 1.0)],
}

def detail_columns(experiment: str
                   ) -> Tuple[Tuple[str, str, str, float], ...]:
    """The ``(metric, header, format, scale)`` display columns of one
    experiment's rows — the single source derived tables (e.g. the
    variance-aware Table I) build on."""
    return tuple(_DETAIL_COLUMNS[experiment])


#: The headline metric charted per experiment.
_PRIMARY_METRIC: Dict[str, Tuple[str, str, str, float]] = {
    "fig8": ("accuracy", "accuracy[%]", ".1f", 100.0),
    "fig9": ("accuracy", "accuracy[%]", ".1f", 100.0),
    "table1": ("accuracy_prop", "proposed accuracy[%]", ".1f", 100.0),
    "accel": ("energy_uj", "energy/inference[uJ]", ".3f", 1.0),
}


def _format_aggregate_table(aggregates: Sequence[AggregateRow],
                            columns: Sequence[Tuple[str, str, str,
                                                    float]],
                            accel: bool = False) -> List[str]:
    """Per-group ``mean±std`` table (one line per backend x threshold,
    or backend x design point for ``accel`` sweeps)."""
    width = 15
    axis_header = (f"{'accel':>18}" if accel else f"{'thr':>8}")
    lines = [f"{'backend':<18} {axis_header} {'n':>3} "
             + " ".join(f"{title:>{width}}"
                        for __, title, __, __ in columns)]
    for agg in aggregates:
        cells = [f"{aggregate_cell(agg, metric, fmt, scale):>{width}}"
                 for metric, __, fmt, scale in columns]
        axis_cell = (f"{agg.accel or '-':>18}" if accel
                     else f"{_threshold_label(agg.threshold):>8}")
        line = (f"{agg.backend_id:<18} {axis_cell} "
                f"{agg.n_seeds:>3} " + " ".join(cells))
        if agg.skipped is not None:
            line += f"   (skipped: {agg.skipped})"
        elif agg.n_skipped:
            line += f"   ({agg.n_skipped} seed(s) skipped)"
        lines.append(line)
    return lines


def format_sweep(result: SweepResult) -> str:
    """Combined per-backend result table plus overlay chart.

    Multi-seed sweeps additionally render, per network, the aggregated
    ``mean±std`` table over the seed axis and chart the primary metric
    with per-series ``mean±std`` error bands instead of one series per
    seed.
    """
    sweep = result.sweep
    columns = _DETAIL_COLUMNS[sweep.experiment]
    is_accel = sweep.experiment == "accel"
    many_seeds = len({row.seed for row in result.rows}) > 1
    aggregates = result.aggregate() if many_seeds else []
    lines = [f"=== sweep: {sweep.describe()} "
             f"({len(result.rows)} grid points) ==="]
    for spec in sweep.networks:
        rows = result.rows_for(network=spec.label)
        if not rows:
            continue
        lines.append("")
        lines.append(f"--- {spec.label} ---")
        axis_header = (f"{'accel':>18}" if is_accel else f"{'thr':>8}")
        header = (f"{'backend':<18} {'seed':>4} {axis_header} "
                  + " ".join(f"{title:>12}"
                             for __, title, __, __ in columns))
        lines.append(header)
        for row in rows:
            cells = []
            for metric, __, fmt, scale in columns:
                if row.skipped is not None or metric not in row.metrics:
                    cells.append(f"{'-':>12}")
                else:
                    cells.append(
                        f"{_format_cell(row.metrics[metric], fmt, scale):>12}")
            axis_cell = (f"{row.accel or '-':>18}" if is_accel
                         else f"{_threshold_label(row.threshold):>8}")
            line = (f"{row.backend_id:<18} {row.seed:>4} "
                    f"{axis_cell} " + " ".join(cells))
            if row.skipped is not None:
                line += f"   (skipped: {row.skipped})"
            lines.append(line)
        net_aggregates = [agg for agg in aggregates
                          if agg.network == spec.label]
        if net_aggregates:
            lines.append("")
            lines.append(f"aggregated over "
                         f"{len(set(sweep.seeds))} seeds (mean±std):")
            lines.extend(_format_aggregate_table(net_aggregates,
                                                 columns,
                                                 accel=is_accel))
        if is_accel:
            if len({row.accel for row in rows}) > 1:
                metric, title, fmt, scale = _PRIMARY_METRIC["accel"]
                lines.append("")
                lines.extend(_accel_matrix(
                    rows, metric,
                    f"{title} by variant x array shape:", fmt, scale))
        elif len(sweep.thresholds) > 1:
            metric, title, fmt, scale = _PRIMARY_METRIC[sweep.experiment]
            lines.append("")
            if net_aggregates:
                lines.extend(_aggregate_matrix(
                    net_aggregates, metric,
                    f"{title} (mean±std over seeds) by backend x "
                    f"threshold:", fmt, scale))
            else:
                lines.extend(_metric_matrix(
                    rows, metric,
                    f"{title} by backend x threshold:", fmt, scale))
    n_cached = sum(1 for row in result.rows if row.cached)
    n_skipped = sum(1 for row in result.rows if row.skipped is not None)
    summary = (f"progress: {len(result.rows)} point(s) done - "
               f"{len(result.rows) - n_cached} computed, "
               f"{n_cached} served from cache, 0 remaining")
    if n_skipped:
        summary += f" ({n_skipped} skipped)"
    lines.append("")
    lines.append(summary)
    if result.cache_hits is not None:
        lines.append(f"artifact cache: {result.cache_hits} hits, "
                     f"{result.cache_misses} misses "
                     f"({result.shared_prefixes} distinct training "
                     f"prefix(es) across {len(result.rows)} points)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def run_sweep(sweep: SweepSpec, jobs: Optional[int] = 1,
              cache_dir=None, char_jobs: int = 1,
              verbose: bool = False,
              store: Optional[ArtifactStore] = None,
              progress: bool = False) -> SweepResult:
    """Expand a sweep grid and run every point, sharing all caches.

    Args:
        sweep: The (normalized) grid declaration.
        jobs: Processes for independent grid points (``None``/``0`` =
            all cores, as in :func:`~repro.experiments.parallel
            .parallel_map`).  Serial runs share one in-process artifact
            store across all points, so the training prefix of each
            (backend, network, seed) group is computed exactly once
            even without ``cache_dir``.
        cache_dir: On-disk artifact cache shared across points, runs
            and workers; with ``jobs > 1`` this is what deduplicates
            the shared stage prefixes between workers (a run-scoped
            scratch cache is used when omitted, so parallel grids
            never recompute a shared prefix per point).
        char_jobs: Processes each point spends sharding its per-weight
            power/timing characterization (useful for grids whose
            point count is smaller than the core count).
        verbose: Log stage execution.
        store: An existing in-process store to share (serial runs
            only); overrides ``cache_dir``.
        progress: Stream a per-point done/cached/remaining report to
            stderr while the grid runs (plus an upfront count of
            points the artifact store can already serve).
    """
    if sweep.experiment not in _POINT_RUNNERS:
        raise ValueError(f"unknown sweep experiment "
                         f"{sweep.experiment!r}; choose from "
                         f"{sweep_experiments()}")
    points = expand(sweep)
    order = _scheduled_order(points)
    cache = str(cache_dir) if cache_dir is not None else None

    # Same contract as parallel_map: None/0 = all cores.
    effective = default_jobs() if jobs in (None, 0) else jobs
    effective = max(1, min(effective, len(points)))
    if effective > 1 and store is not None:
        raise ValueError(
            "an in-process store cannot be shared across worker "
            "processes; pass cache_dir instead (or jobs=1)")

    scratch = None
    if effective > 1 and cache is None and len(points) > 1:
        # Workers can only share stage artifacts through disk; without
        # a cache every grid point would recompute its whole training
        # prefix.  A run-scoped scratch cache restores the sharing.
        import tempfile

        scratch = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        cache = scratch.name

    rows: List[Optional[SweepRow]] = [None] * len(points)
    reporter = _ProgressReporter(len(points)) if progress else None
    if effective == 1:
        shared = store if store is not None else ArtifactStore(cache)
        if reporter is not None:
            reporter.start(sweep,
                           _precached_count(points, cache, shared,
                                            char_jobs),
                           jobs=1)
        hits_before, misses_before = shared.hits, shared.misses
        for index in order:
            point = points[index]
            context = ExperimentContext(
                point.spec, point.scale, seed=point.seed,
                verbose=verbose, store=shared, backend=point.backend,
                char_jobs=char_jobs, accel=point.accel)
            try:
                rows[index] = _execute_point(point, context)
            except ParallelTaskError:
                raise
            except Exception as error:
                raise ParallelTaskError(
                    f"sweep point failed: {point.describe()}"
                ) from error
            if reporter is not None:
                reporter.finished(point, rows[index])
        cache_hits = shared.hits - hits_before
        cache_misses = shared.misses - misses_before
    else:
        tasks = [PointTask(points[index], cache, char_jobs, verbose)
                 for index in order]
        if reporter is not None:
            # The scratch cache starts empty, so only a user-provided
            # cache_dir can pre-serve points.
            probe = None if scratch is not None else cache
            reporter.start(sweep,
                           _precached_count(points, probe, None,
                                            char_jobs),
                           jobs=effective)
        on_result = (None if reporter is None else
                     (lambda slot, row:
                      reporter.finished(tasks[slot].point, row)))
        try:
            shuffled = parallel_map(_run_point, tasks, jobs=effective,
                                    on_result=on_result)
        finally:
            if scratch is not None:
                scratch.cleanup()
        for slot, index in enumerate(order):
            rows[index] = shuffled[slot]
        cache_hits = cache_misses = None

    return SweepResult(sweep=sweep, rows=list(rows),
                       cache_hits=cache_hits, cache_misses=cache_misses,
                       shared_prefixes=shared_prefix_count(points))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_threshold(text: str) -> Optional[float]:
    if text.lower() == "none":
        return None
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"threshold must be a number or 'none', got {text!r}"
        ) from None


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro sweep ...`` — the declarative grid CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run a declarative experiment sweep over "
                    "backends x networks x thresholds x seeds",
        epilog="Example: python -m repro sweep --experiment fig8 "
               "--backend nangate15-booth --backend nangate15-array "
               "--scale smoke --jobs 2 --cache-dir .sweep-cache",
    )
    parser.add_argument("--experiment",
                        choices=sweep_experiments(),
                        help="grid experiment (required unless --spec "
                             "provides one)")
    parser.add_argument("--spec", metavar="FILE",
                        help="JSON/TOML sweep spec; explicit flags "
                             "override its entries")
    parser.add_argument("--backend", action="append", metavar="ID",
                        help="hardware backend; repeat for an overlay "
                             f"(default: {DEFAULT_BACKEND_ID})")
    parser.add_argument("--network", action="append", metavar="NAME",
                        help="network name or Table I label; repeatable "
                             "(default: lenet5)")
    parser.add_argument("--threshold", action="append", metavar="X",
                        type=_parse_threshold,
                        help="power [uW] (fig8; 'none' = unrestricted) "
                             "or delay [ps] (fig9) threshold; "
                             "repeatable (default: the paper's sweep)")
    parser.add_argument("--seed", action="append", type=int, metavar="N",
                        help="pipeline seed; repeatable (default: 0)")
    parser.add_argument("--shape", action="append", metavar="RxC",
                        help="accel only: systolic array geometry "
                             "('32x32', '32', or 'hw' = the backend's "
                             "own); repeatable")
    parser.add_argument("--variant", action="append", metavar="NAME",
                        choices=("standard", "optimized"),
                        help="accel only: hardware variant; repeatable "
                             "(default: both)")
    parser.add_argument("--stream-batch", type=int, default=None,
                        metavar="N",
                        help="accel only: inferences streamed per "
                             "stationary tile load (default: 1)")
    parser.add_argument("--scale", default=None,
                        choices=("smoke", "ci", "paper"),
                        help="experiment scale (default: ci)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="processes for independent grid points "
                             "(0 = all cores; default: 1)")
    parser.add_argument("--char-jobs", type=int, default=1, metavar="N",
                        help="processes each point spends sharding "
                             "per-weight characterization (default: 1)")
    parser.add_argument("--sim-kernel", default="auto",
                        choices=("auto", "compiled", "packed"),
                        help="gate-simulation word kernel (bit-for-bit "
                             "identical; never part of cache keys; "
                             "default: auto)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk artifact cache shared across "
                             "points, runs and workers")
    parser.add_argument("--csv", default=None, metavar="FILE",
                        help="also write the tidy per-point table as "
                             "CSV")
    parser.add_argument("--aggregate-csv", default=None, metavar="FILE",
                        help="also write the seed-aggregated table "
                             "(*_mean/*_std/*_min/*_max + n_seeds "
                             "columns, one row per backend x network "
                             "x threshold group) as CSV")
    args = parser.parse_args(argv)

    if args.sim_kernel != "auto":
        # Environment (not kwargs) so spawn-started pool workers
        # inherit the selection; bit-for-bit neutral, never cached.
        from repro.sim.compiled import KERNEL_ENV

        os.environ[KERNEL_ENV] = args.sim_kernel

    try:
        if args.spec is not None:
            # Explicit flags override spec-file entries.  The merge
            # must be `is not None`, never truthiness: a legitimately
            # falsy override (e.g. the single unrestricted point
            # `--threshold none` -> (None,)) would otherwise be
            # conflated with "flag not given" and silently lose to the
            # spec file.
            base = load_sweep_file(args.spec)
            sweep = make_sweep_spec(
                (args.experiment if args.experiment is not None
                 else base.experiment),
                backends=(args.backend if args.backend is not None
                          else base.backends),
                networks=(args.network if args.network is not None
                          else base.networks),
                thresholds=(tuple(args.threshold)
                            if args.threshold is not None
                            else base.thresholds),
                seeds=(args.seed if args.seed is not None
                       else base.seeds),
                scale=(args.scale if args.scale is not None
                       else base.scale),
                array_shapes=(args.shape if args.shape is not None
                              else base.array_shapes),
                hw_variants=(args.variant if args.variant is not None
                             else base.hw_variants),
                stream_batch=(args.stream_batch
                              if args.stream_batch is not None
                              else base.stream_batch),
            )
        else:
            if args.experiment is None:
                parser.error("--experiment is required "
                             "(or provide it via --spec FILE)")
            sweep = make_sweep_spec(
                args.experiment,
                backends=args.backend,
                networks=args.network,
                thresholds=(tuple(args.threshold)
                            if args.threshold is not None else None),
                seeds=args.seed,
                scale=args.scale if args.scale is not None else "ci",
                array_shapes=args.shape,
                hw_variants=args.variant,
                stream_batch=(args.stream_batch
                              if args.stream_batch is not None else 1),
            )
        for backend in sweep.backends:
            if isinstance(backend, str):
                get_backend(backend)  # fail fast on typos
    except ValueError as error:
        parser.error(str(error))

    result = run_sweep(sweep, jobs=args.jobs, cache_dir=args.cache_dir,
                       char_jobs=args.char_jobs, progress=True)
    print(format_sweep(result))
    if args.csv:
        result.write_csv(args.csv)
        print(f"tidy table written to {args.csv}")
    if args.aggregate_csv:
        result.write_csv(args.aggregate_csv, aggregated=True)
        print(f"aggregated table written to {args.aggregate_csv}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(cli_main())
