"""Figure 7 — comparison with conventional pruning (Optimized HW).

For each network: the baseline, the conventionally pruned network, and
the proposed method's result — power (dynamic + leakage stacked) and
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.experiments.parallel import run_table1_rows
from repro.hw import DEFAULT_BACKEND_ID
from repro.power.estimator import PowerBreakdown


@dataclass
class Fig7Bar:
    """One bar of the Fig. 7 chart."""

    stage: str
    power: PowerBreakdown
    accuracy: float


@dataclass
class Fig7Result:
    """Per-network bars (Baseline / Pruned / Proposed)."""

    bars: Dict[str, List[Fig7Bar]]

    def reduction_vs_pruned(self, label: str) -> float:
        """Power reduction of Proposed relative to Pruned (%)."""
        stages = {bar.stage: bar for bar in self.bars[label]}
        pruned = stages["Pruned"].power.total_uw
        proposed = stages["Proposed"].power.total_uw
        return 100.0 * (1.0 - proposed / pruned)


def run(scale: str = "ci",
        specs: Sequence[NetworkSpec] = NETWORK_SPECS,
        jobs: Optional[int] = 1, cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID) -> Fig7Result:
    """Run the stage-graph pipeline per network, extract the stages.

    With a shared ``cache_dir`` this reuses any Table I run's
    artifacts wholesale; ``jobs`` fans the networks out across
    processes.
    """
    reports = run_table1_rows(specs, scale=scale, jobs=jobs,
                              cache_dir=cache_dir, backend=backend)
    bars: Dict[str, List[Fig7Bar]] = {}
    for spec, report in zip(specs, reports):
        pruned = report.extras["pruned"]
        bars[spec.label] = [
            Fig7Bar("Baseline", report.power_opt_orig,
                    report.accuracy_orig),
            Fig7Bar("Pruned", pruned["power_opt"], pruned["accuracy"]),
            Fig7Bar("Proposed", report.power_opt_prop_vs,
                    report.accuracy_prop),
        ]
    return Fig7Result(bars=bars)


def format_chart(result: Fig7Result) -> str:
    lines = []
    for label, bars in result.bars.items():
        lines.append(f"--- {label} (Optimized HW) ---")
        peak = max(bar.power.total_uw for bar in bars)
        for bar in bars:
            total_mw = bar.power.total_uw / 1000
            dyn_mw = bar.power.dynamic_uw / 1000
            leak_mw = bar.power.leakage_uw / 1000
            width = int(round(36 * bar.power.total_uw / peak))
            leak_width = int(round(
                width * bar.power.leakage_uw
                / max(bar.power.total_uw, 1e-9)))
            stacked = "#" * (width - leak_width) + "L" * leak_width
            lines.append(
                f"{bar.stage:>9}: {total_mw:7.1f} mW "
                f"(dyn {dyn_mw:6.1f} + leak {leak_mw:5.1f}) "
                f"acc {bar.accuracy * 100:5.1f}%  {stacked}"
            )
        lines.append(
            f"   proposed cuts pruned power by "
            f"{result.reduction_vs_pruned(label):.1f}%"
        )
    return "\n".join(lines)


def main(scale: str = "ci", jobs: Optional[int] = 1,
         cache_dir=None, backend: str = DEFAULT_BACKEND_ID) -> Fig7Result:
    result = run(scale, jobs=jobs, cache_dir=cache_dir, backend=backend)
    print("=== Fig. 7: baseline vs pruned vs proposed ===")
    print(format_chart(result))
    print("paper observation: the proposed method significantly reduces "
          "power below conventional pruning with only a slight accuracy "
          "loss")
    return result


if __name__ == "__main__":
    main()
