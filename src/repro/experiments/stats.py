"""Variance-aware aggregation of multi-seed sweep rows.

A sweep grid with a seed axis produces one :class:`~repro.experiments
.sweep.SweepRow` per seed, but the quantity the paper's tables and
curves actually report is the *distribution* over seeds.  This module
groups rows by everything except the seed — ``(experiment, backend,
network, threshold, scale)`` — and reduces every numeric metric of each
group to mean, population std (``numpy`` default, ``ddof=0``), min, max
and the contributing sample count.

Two invariants the consumers rely on:

* **single-seed passthrough** — a group with one contributing row
  reports that row's metric values bit-identically (no float round
  trip through ``np.mean``), std 0.0 and ``n == 1``, so single-seed
  sweeps render exactly as before;
* **stable ordering** — groups appear in first-occurrence order of
  their rows, and metric names in first-occurrence order across the
  group's rows, so repeated aggregation of the same result is
  deterministic down to column order.

Skipped rows (too few survivors at a threshold) contribute no metric
values; a group whose rows were *all* skipped keeps the first skip
reason so tables can annotate the hole instead of dropping it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.sweep import SweepRow

__all__ = [
    "AggregateRow",
    "group_key",
    "group_rows",
    "aggregate_rows",
    "format_mean_std",
    "aggregate_cell",
]

#: Row fields that define a seed-aggregation group (everything except
#: the seed and the per-run bookkeeping fields).
GROUP_FIELDS: Tuple[str, ...] = (
    "experiment", "backend_id", "network", "threshold", "accel", "scale",
)


@dataclass(frozen=True)
class AggregateRow:
    """One ``(backend, network, threshold)`` group reduced over seeds."""

    experiment: str
    backend_id: str
    network: str
    threshold: Optional[float]
    #: Accelerator design-point label (``accel`` sweeps), else ``None``.
    accel: Optional[str]
    scale: str
    #: Every seed in the group, in row order (skipped seeds included).
    seeds: Tuple[int, ...]
    #: Rows that contributed metric values (``skipped is None``).
    n_seeds: int
    metrics_mean: Mapping[str, float]
    metrics_std: Mapping[str, float]
    metrics_min: Mapping[str, float]
    metrics_max: Mapping[str, float]
    #: Per-metric sample count (a metric may be absent from some rows).
    metrics_n: Mapping[str, int]
    #: Rows that produced no result at this grid point.
    n_skipped: int = 0
    #: First skip reason — set only when *every* row was skipped.
    skipped: Optional[str] = None

    def describe(self) -> str:
        threshold = ("-" if self.threshold is None
                     else f"{self.threshold:g}")
        accel = f" accel={self.accel}" if self.accel is not None else ""
        return (f"{self.experiment} aggregate [network={self.network} "
                f"backend={self.backend_id} threshold={threshold}"
                f"{accel} "
                f"seeds={','.join(str(s) for s in self.seeds)}]")


def group_key(row: "SweepRow") -> Tuple:
    """The seed-invariant identity of a row (see :data:`GROUP_FIELDS`)."""
    return tuple(getattr(row, name) for name in GROUP_FIELDS)


def group_rows(rows: Sequence["SweepRow"]
               ) -> Dict[Tuple, List["SweepRow"]]:
    """Partition rows by :func:`group_key`, preserving first-occurrence
    order of groups and row order within each group."""
    groups: Dict[Tuple, List["SweepRow"]] = {}
    for row in rows:
        groups.setdefault(group_key(row), []).append(row)
    return groups


def _metric_names(rows: Sequence["SweepRow"]) -> List[str]:
    names: Dict[str, None] = {}
    for row in rows:
        for name in row.metrics:
            names.setdefault(name)
    return list(names)


def aggregate_rows(rows: Sequence["SweepRow"]) -> List[AggregateRow]:
    """Reduce sweep rows to one :class:`AggregateRow` per seed group.

    The returned list is a partition of ``rows``: every row lands in
    exactly one group, and the union of all group ``seeds`` (with
    multiplicity) is the input's seed column.
    """
    aggregates: List[AggregateRow] = []
    for key, members in group_rows(rows).items():
        live = [row for row in members if row.skipped is None]
        skipped = [row for row in members if row.skipped is not None]
        mean: Dict[str, float] = {}
        std: Dict[str, float] = {}
        low: Dict[str, float] = {}
        high: Dict[str, float] = {}
        count: Dict[str, int] = {}
        for name in _metric_names(live):
            values = [row.metrics[name] for row in live
                      if name in row.metrics]
            count[name] = len(values)
            if len(values) == 1:
                # Bit-identical passthrough: no np.mean round trip.
                value = float(values[0])
                mean[name] = value
                std[name] = 0.0
                low[name] = value
                high[name] = value
            else:
                data = np.asarray(values, dtype=np.float64)
                mean[name] = float(np.mean(data))
                std[name] = float(np.std(data))
                low[name] = float(np.min(data))
                high[name] = float(np.max(data))
        aggregates.append(AggregateRow(
            **dict(zip(GROUP_FIELDS, key)),
            seeds=tuple(row.seed for row in members),
            n_seeds=len(live),
            metrics_mean=mean,
            metrics_std=std,
            metrics_min=low,
            metrics_max=high,
            metrics_n=count,
            n_skipped=len(skipped),
            skipped=skipped[0].skipped if not live and skipped else None,
        ))
    return aggregates


def format_mean_std(mean: float, std: float, fmt: str,
                    scale: float = 1.0) -> str:
    """Render ``mean ± std`` with a shared display format.

    Integer formats (``"d"``) fall back to one decimal: the mean of
    integer counts over seeds is rarely integral.
    """
    if fmt.endswith("d"):
        fmt = ".1f"
    return (f"{format(mean * scale, fmt)}"
            f"±{format(std * scale, fmt)}")


def aggregate_cell(agg: AggregateRow, metric: str, fmt: str,
                   scale: float = 1.0) -> str:
    """One aggregate metric as a ``mean±std`` table cell.

    The shared cell renderer of every mean±std table (sweep, Table I,
    backend comparison); ``-`` when the group has no value for the
    metric (all contributing rows skipped or the metric absent).
    """
    if metric not in agg.metrics_mean:
        return "-"
    return format_mean_std(agg.metrics_mean[metric],
                           agg.metrics_std[metric], fmt, scale)
