"""Shared experiment context with lazy, cached stages.

Several figures reuse the same expensive prefix (train the baseline,
collect operand statistics, characterize weight power).  The context
builds each stage once per (network, scale) and lets individual
experiments branch off with their own sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.pipeline import PipelineConfig, PowerPruner
from repro.core.pruning import magnitude_prune
from repro.experiments.config import NetworkSpec, pipeline_config
from repro.nn import Trainer, TrainingConfig
from repro.nn.layers import Module
from repro.power.characterization import WeightPowerTable
from repro.systolic import TransitionStatsCollector
from repro.timing.profile import WeightTimingTable


class ExperimentContext:
    """Lazy pipeline stages for one network/dataset at one scale."""

    def __init__(self, spec: NetworkSpec, scale: str = "ci",
                 seed: int = 0, verbose: bool = False) -> None:
        self.spec = spec
        self.scale = scale
        self.config: PipelineConfig = pipeline_config(
            spec, scale, seed=seed, verbose=verbose)
        self.pruner = PowerPruner(self.config)
        self._dataset = None
        self._model: Optional[Module] = None
        self._accuracy_orig: Optional[float] = None
        self._accuracy_pruned: Optional[float] = None
        self._pruned_state: Optional[dict] = None
        self._stats: Optional[TransitionStatsCollector] = None
        self._power_table: Optional[WeightPowerTable] = None
        self._timing_tables: Dict[tuple, WeightTimingTable] = {}

    # ------------------------------------------------------------------
    # cached stages
    # ------------------------------------------------------------------
    @property
    def dataset(self):
        if self._dataset is None:
            self._dataset = self.pruner._build_dataset()
        return self._dataset

    @property
    def model(self) -> Module:
        """Baseline-trained, conventionally pruned, retrained model."""
        if self._model is None:
            from repro.models import build_model
            from repro.nn.layers import seed_init

            config = self.config
            seed_init(config.seed)
            model = build_model(
                config.network, num_classes=config.num_classes,
                width_mult=config.width_mult,
                depth_mult=config.depth_mult)
            trainer = Trainer(model, TrainingConfig(
                epochs=config.baseline_epochs,
                batch_size=config.batch_size, lr=config.lr,
                seed=config.seed))
            dataset = self.dataset
            trainer.fit(dataset.x_train, dataset.y_train)
            self._accuracy_orig = trainer.evaluate(
                dataset.x_test, dataset.y_test)
            magnitude_prune(model, config.prune_fraction)
            self._accuracy_pruned = self.retrain(model)
            self._pruned_state = model.state_dict()
            self._model = model
        return self._model

    @property
    def accuracy_orig(self) -> float:
        self.model
        return self._accuracy_orig

    @property
    def accuracy_pruned(self) -> float:
        self.model
        return self._accuracy_pruned

    def reset_model(self) -> Module:
        """Restore the model to its pruned-baseline state."""
        model = self.model
        model.load_state_dict(self._pruned_state)
        model.set_weight_restriction(None)
        model.set_activation_filter(None)
        return model

    @property
    def stats(self) -> TransitionStatsCollector:
        if self._stats is None:
            self._stats = self.pruner.collect_statistics(
                self.model, self.dataset)
        return self._stats

    @property
    def power_table(self) -> WeightPowerTable:
        if self._power_table is None:
            self._power_table = self.pruner.characterize_power(self.stats)
        return self._power_table

    def timing_table(self, candidate_weights) -> WeightTimingTable:
        key = tuple(sorted(int(w) for w in candidate_weights))
        if key not in self._timing_tables:
            self._timing_tables[key] = self.pruner.characterize_timing(
                list(key))
        return self._timing_tables[key]

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def retrain(self, model: Module) -> float:
        """Retrain in place, return test accuracy."""
        return self.pruner._retrain_fn(self.dataset)(model)

    def measure_power(self, model: Module, vdd: Optional[float] = None):
        """(Standard HW, Optimized HW) power of ``model``."""
        return self.pruner.measure_power(model, self.dataset,
                                         self.power_table, vdd=vdd)
