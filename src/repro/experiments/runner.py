"""Shared experiment context on top of the pipeline stage graph.

Several figures reuse the same expensive prefix (train the baseline,
collect operand statistics, characterize weight power).  The context is
a thin view over :class:`repro.core.stages.StageRunner`: every stage is
computed once per (network, scale, seed) through the content-addressed
artifact store — in memory always, and on disk when ``cache_dir`` is
given, so figure sweeps, Table I rows and worker processes all share
the same artifacts.

Unification note: the pre-stage-graph context re-implemented the
training prefix with two deliberate-looking but divergent choices —
operand statistics were collected from the *pruned* model (the
pipeline uses the baseline, per Sec. III-C's step order) and the
baseline trainer ignored ``lr_decay_epochs``.  Both now follow the
pipeline's single implementation, so figure-experiment numbers shifted
slightly at fixed seeds; the paper-anchored calibrations and all
qualitative claims are unaffected (see tests).
"""

from __future__ import annotations

from typing import Optional

from repro.core.artifacts import ArtifactStore, hash_key
from repro.core.pipeline import PipelineConfig, PowerPruner
from repro.core.report import PowerPruningReport
from repro.core.stages import backend_key_payload
from repro.experiments.config import NetworkSpec, pipeline_config
from repro.hw import DEFAULT_BACKEND_ID
from repro.nn.layers import Module
from repro.power.characterization import WeightPowerTable
from repro.systolic import TransitionStatsCollector
from repro.timing.profile import WeightTimingTable


class ExperimentContext:
    """Cached pipeline stages for one network/dataset at one scale.

    Args:
        spec: The network/dataset pair.
        scale: Experiment scale (``smoke``/``ci``/``paper``).
        seed: Seed threaded through every stage.
        verbose: Log stage execution.
        cache_dir: Optional on-disk artifact cache shared across
            contexts, runs and processes.
        store: An existing :class:`ArtifactStore` to share in-process;
            overrides ``cache_dir``.
        backend: Hardware-backend id or spec (see :mod:`repro.hw`);
            keys every stage artifact, so contexts on different
            backends can share a store without ever colliding.
        char_jobs: Processes to shard per-weight characterization over.
        char_batch_weights: Weights per one-launch characterization
            megabatch (0 = automatic, 1 = per-weight loop); bit-for-bit
            neutral, like ``char_jobs``.
        sim_kernel: Simulation word-kernel selection
            (``auto``/``compiled``/``packed``); bit-for-bit neutral,
            like ``char_jobs``.
        accel: Optional :class:`~repro.systolic.spec.AcceleratorSpec`
            design point for :meth:`accel_eval`; keys only the
            ``accel_*`` stages.
    """

    def __init__(self, spec: NetworkSpec, scale: str = "ci",
                 seed: int = 0, verbose: bool = False,
                 cache_dir=None,
                 store: Optional[ArtifactStore] = None,
                 backend=DEFAULT_BACKEND_ID,
                 char_jobs: int = 1,
                 char_batch_weights: int = 0,
                 sim_kernel: str = "auto",
                 accel=None) -> None:
        self.spec = spec
        self.scale = scale
        self.config: PipelineConfig = pipeline_config(
            spec, scale, seed=seed, verbose=verbose, backend=backend,
            char_jobs=char_jobs,
            char_batch_weights=char_batch_weights,
            sim_kernel=sim_kernel,
            accel=accel)
        self.pruner = PowerPruner(self.config, cache_dir=cache_dir,
                                  store=store)
        self.runner = self.pruner.runner()
        self._model: Optional[Module] = None

    @property
    def store(self) -> ArtifactStore:
        return self.runner.store

    # ------------------------------------------------------------------
    # cached stages
    # ------------------------------------------------------------------
    @property
    def dataset(self):
        return self.runner.get("dataset")

    @property
    def model(self) -> Module:
        """Baseline-trained, conventionally pruned, retrained model."""
        if self._model is None:
            self._model = self.runner.ops.model_from_state(
                self.runner.get("pruned")["state"])
        return self._model

    @property
    def accuracy_orig(self) -> float:
        return self.runner.get("baseline")["accuracy"]

    @property
    def accuracy_pruned(self) -> float:
        return self.runner.get("pruned")["accuracy"]

    def reset_model(self) -> Module:
        """Restore the model to its pruned-baseline state."""
        model = self.model
        model.load_state_dict(self.runner.get("pruned")["state"])
        model.set_weight_restriction(None)
        model.set_activation_filter(None)
        return model

    @property
    def stats(self) -> TransitionStatsCollector:
        return self.runner.get("operand_stats")

    @property
    def power_table(self) -> WeightPowerTable:
        return self.runner.get("power_table")

    def accel_eval(self) -> dict:
        """Accelerator-level evaluation of the configured design point
        (per-layer rows + network summary; see ``accel_eval`` stage)."""
        return self.runner.get("accel_eval")

    def timing_table_key(self, candidate_weights) -> str:
        """Cache key of :meth:`timing_table` for a candidate set.

        ``char_jobs`` is deliberately absent: sharded characterization
        is bit-for-bit identical to serial, so the artifact must be
        shared across any sharding choice.
        """
        candidates = tuple(sorted(int(w) for w in candidate_weights))
        config = self.config
        return hash_key({
            "stage": "timing_table/candidates",
            # v2: per-weight child RNG transition subsampling
            # (order/shard independent).
            "version": "2",
            "backend": backend_key_payload(config),
            "config": {
                "timing_transitions": config.timing_transitions,
                "timing_floor_ps": config.timing_floor_ps,
                "seed": config.seed,
            },
            "candidates": candidates,
        })

    def timing_table(self, candidate_weights) -> WeightTimingTable:
        """Timing table for an arbitrary candidate set.

        Sweeps probe candidate sets that differ from the pipeline's own
        power selection, so this is keyed directly on the candidates
        (plus the timing config fields) in the same artifact store.
        ``char_jobs`` shards the per-weight analyses across processes
        without changing a bit of the result.
        """
        candidates = tuple(sorted(int(w) for w in candidate_weights))
        return self.store.get_or_compute(
            self.timing_table_key(candidates),
            lambda: self.runner.ops.characterize_timing(list(candidates)),
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def retrain(self, model: Module) -> float:
        """Retrain in place, return test accuracy."""
        return self.runner.ops.retrain_fn(self.dataset)(model)

    def measure_power(self, model: Module, vdd: Optional[float] = None):
        """(Standard HW, Optimized HW) power of ``model``."""
        return self.runner.ops.measure_power(model, self.dataset,
                                             self.power_table, vdd=vdd)

    def report(self) -> PowerPruningReport:
        """The full pipeline's Table I report (cached end to end)."""
        return self.pruner.run()
