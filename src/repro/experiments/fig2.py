"""Figure 2 — average power consumption of quantized weight values.

LeNet-5 traffic on the systolic array provides the transition
distributions; each weight value's MAC power is then characterized and
printed as the Fig. 2 series (with the 900 µW threshold line and the
paper's anchor values for comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.config import NETWORK_SPECS
from repro.experiments.runner import ExperimentContext
from repro.hw import DEFAULT_BACKEND_ID
from repro.power.characterization import WeightPowerTable

#: Fig. 2 anchors from the paper's text.
PAPER_ANCHORS_UW = {-105: 1066.0, -2: 596.0}
PAPER_THRESHOLD_UW = 900.0


@dataclass
class Fig2Result:
    """The Fig. 2 series plus summary statistics."""

    table: WeightPowerTable
    threshold_uw: float

    @property
    def n_below_threshold(self) -> int:
        return self.table.count_below(self.threshold_uw)

    def summary(self) -> Dict[str, float]:
        table = self.table
        return {
            "min_uw": float(table.power_uw.min()),
            "max_uw": float(table.power_uw.max()),
            "zero_uw": table.power_of(0),
            "w-2_uw": table.power_of(-2),
            "w-105_uw": table.power_of(-105),
            "below_900": float(self.n_below_threshold),
        }


def run(scale: str = "ci", seed: int = 0, cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID,
        jobs: Optional[int] = 1) -> Fig2Result:
    """Characterize weight power under LeNet-5 traffic (paper setup).

    ``jobs`` shards the per-weight characterization itself across
    processes (bit-for-bit identical to a serial run).
    """
    context = ExperimentContext(NETWORK_SPECS[0], scale, seed=seed,
                                cache_dir=cache_dir, backend=backend,
                                char_jobs=1 if jobs is None else jobs)
    return Fig2Result(table=context.power_table,
                      threshold_uw=PAPER_THRESHOLD_UW)


def format_series(result: Fig2Result, step: int = 8) -> str:
    """Printable power-vs-weight series (every ``step``-th weight)."""
    table = result.table
    lines = ["weight  power[uW]  bar"]
    peak = table.power_uw.max()
    for w, p in zip(table.weights[::step], table.power_uw[::step]):
        bar = "#" * int(round(40 * p / peak))
        marker = " <-- 900 uW threshold" if abs(p - 900) < 25 else ""
        lines.append(f"{w:6d}  {p:9.1f}  {bar}{marker}")
    return "\n".join(lines)


def main(scale: str = "ci", jobs: Optional[int] = 1,
         cache_dir=None, backend: str = DEFAULT_BACKEND_ID) -> Fig2Result:
    # Single network, single sweep — ``jobs`` shards the per-weight
    # characterization stage itself.
    result = run(scale, cache_dir=cache_dir, backend=backend, jobs=jobs)
    print("=== Fig. 2: average power per quantized weight value ===")
    print(format_series(result))
    summary = result.summary()
    print(f"\nsummary: {summary}")
    print(f"paper anchors: -105 -> {PAPER_ANCHORS_UW[-105]} uW, "
          f"-2 -> {PAPER_ANCHORS_UW[-2]} uW; our -105 -> "
          f"{summary['w-105_uw']:.0f}, -2 -> {summary['w-2_uw']:.0f}")
    print(f"weights at/below 900 uW: {result.n_below_threshold} of "
          f"{result.table.weights.size}")
    return result


if __name__ == "__main__":
    main()
