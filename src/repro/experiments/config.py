"""Experiment scales and the four network/dataset pairs of Table I."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.pipeline import PipelineConfig
from repro.hw import DEFAULT_BACKEND_ID, resolve_backend_id


@dataclass(frozen=True)
class NetworkSpec:
    """One Table I row's workload."""

    network: str
    dataset: str
    num_classes: int
    label: str


#: The paper's four network-dataset combinations.
NETWORK_SPECS: Tuple[NetworkSpec, ...] = (
    NetworkSpec("lenet5", "cifar10", 10, "LeNet-5-CIFAR-10"),
    NetworkSpec("resnet20", "cifar10", 10, "ResNet-20-CIFAR-10"),
    NetworkSpec("resnet50", "cifar100", 20, "ResNet-50-CIFAR-100"),
    NetworkSpec("efficientnet-b0-lite", "imagenet", 20,
                "EfficientNet-B0-Lite-ImageNet"),
)


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    ``paper`` restores the paper's nominal settings (full datasets are
    still synthetic — see DESIGN.md for the substitution record).
    """

    name: str
    width_mult: float
    depth_mult: float
    n_train: int
    n_test: int
    baseline_epochs: int
    retrain_epochs: int
    char_weight_step: int
    char_samples: int
    timing_transitions: Optional[int]
    n_restarts: int
    stats_batch: int
    power_max_drop: float
    delay_max_drop_fraction: float


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke", width_mult=0.35, depth_mult=0.5,
        n_train=500, n_test=200, baseline_epochs=4, retrain_epochs=1,
        char_weight_step=16, char_samples=400, timing_transitions=2000,
        n_restarts=3, stats_batch=8,
        # smoke-scale retraining is 1 epoch on tiny data: accuracy noise
        # would otherwise swamp the paper's 3%/5% stopping budgets
        power_max_drop=0.10, delay_max_drop_fraction=0.15,
    ),
    "ci": ExperimentScale(
        name="ci", width_mult=0.5, depth_mult=0.75,
        n_train=800, n_test=300, baseline_epochs=8, retrain_epochs=2,
        char_weight_step=4, char_samples=1500, timing_transitions=8000,
        n_restarts=10, stats_batch=16,
        power_max_drop=0.05, delay_max_drop_fraction=0.08,
    ),
    "paper": ExperimentScale(
        name="paper", width_mult=1.0, depth_mult=1.0,
        n_train=20000, n_test=4000, baseline_epochs=30, retrain_epochs=8,
        char_weight_step=1, char_samples=10000, timing_transitions=None,
        n_restarts=20, stats_batch=100,
        power_max_drop=0.03, delay_max_drop_fraction=0.05,
    ),
}


def get_scale(scale: str) -> ExperimentScale:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


#: Per-network training tweaks: BN-heavy residual networks want a higher
#: initial learning rate with a decay step; plain LeNet does not.
NETWORK_TRAINING = {
    "lenet5": {"lr": 0.05, "lr_decay_epochs": ()},
    "resnet20": {"lr": 0.1, "lr_decay_epochs": (6,)},
    "resnet50": {"lr": 0.1, "lr_decay_epochs": (6,)},
    "efficientnet-b0-lite": {"lr": 0.05, "lr_decay_epochs": (6,)},
}


def pipeline_config(spec: NetworkSpec, scale: str = "ci",
                    seed: int = 0, verbose: bool = False,
                    backend: str = DEFAULT_BACKEND_ID,
                    char_jobs: int = 1,
                    char_batch_weights: int = 0,
                    sim_kernel: str = "auto",
                    accel=None) -> PipelineConfig:
    """PipelineConfig for one network spec at the requested scale.

    Args:
        spec: The network/dataset pair.
        scale: Experiment scale (``smoke``/``ci``/``paper``).
        seed: Seed threaded through every stage.
        verbose: Log stage execution.
        backend: Hardware-backend id or :class:`~repro.hw.HardwareBackend`
            spec (specs are registered on the fly, which keeps
            user-defined backends working inside spawn-started worker
            processes).
        char_jobs: Processes to shard per-weight characterization over
            (bit-for-bit identical to serial; not part of cache keys).
        char_batch_weights: Weights per one-launch characterization
            megabatch (0 = automatic, 1 = per-weight loop); bit-for-bit
            neutral like ``char_jobs`` and not part of cache keys.
        sim_kernel: Simulation word-kernel selection
            (``auto``/``compiled``/``packed``); every kernel is
            bit-for-bit identical, so this is cache-key-neutral like
            ``char_jobs``.
        accel: Optional :class:`~repro.systolic.spec.AcceleratorSpec`
            design point for the ``accel_*`` stages; keys only those
            stages, so accelerator sweeps share the training/
            characterization prefix.
    """
    s = get_scale(scale)
    training = NETWORK_TRAINING.get(spec.network, {})
    return PipelineConfig(
        lr=training.get("lr", 0.05),
        lr_decay_epochs=training.get("lr_decay_epochs", ()),
        backend=resolve_backend_id(backend),
        char_jobs=char_jobs,
        char_batch_weights=char_batch_weights,
        sim_kernel=sim_kernel,
        accel=accel,
        network=spec.network,
        dataset=spec.dataset,
        num_classes=spec.num_classes,
        width_mult=s.width_mult,
        depth_mult=s.depth_mult,
        n_train=s.n_train,
        n_test=s.n_test,
        baseline_epochs=s.baseline_epochs,
        retrain_epochs=s.retrain_epochs,
        char_weight_step=s.char_weight_step,
        char_samples=s.char_samples,
        timing_transitions=s.timing_transitions,
        n_restarts=s.n_restarts,
        stats_batch=s.stats_batch,
        power_max_drop=s.power_max_drop,
        delay_max_drop_fraction=s.delay_max_drop_fraction,
        seed=seed,
        verbose=verbose,
    )
