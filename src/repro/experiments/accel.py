"""Accelerator design-space exploration (beyond-paper experiment).

The paper evaluates PowerPruning on one fixed 64x64 systolic array;
the ``accel_*`` pipeline stages generalize that to any
:class:`~repro.systolic.spec.AcceleratorSpec` design point — array
geometry x hardware variant (Standard vs Optimized HW) x streaming
batch.  This module is a thin adapter over the declarative sweep
engine (:mod:`repro.experiments.sweep`): the design space is just the
``accel`` sweep grid, so every point of one (backend, network, seed)
shares the whole training/characterization prefix through the
content-addressed artifact store, and Standard vs Optimized HW of one
geometry additionally share the ``accel_schedule`` artifact.

CLI::

    python -m repro accel --scale smoke --shape 16x16 --shape hw
    python -m repro accel --spec design_space.toml --jobs 2 \
        --cache-dir .repro-cache --csv points.csv
"""

from __future__ import annotations

import argparse
import os
from typing import Optional, Sequence

from repro.experiments.sweep import (
    SweepResult,
    format_sweep,
    load_spec_mapping,
    make_sweep_spec,
    run_sweep,
    sweep_spec_from_mapping,
)
from repro.hw import DEFAULT_BACKEND_ID, get_backend

__all__ = ["run", "cli_main"]


def run(scale: str = "ci",
        array_shapes: Optional[Sequence] = None,
        hw_variants: Optional[Sequence[str]] = None,
        stream_batch: int = 1,
        backends: Optional[Sequence] = None,
        networks: Optional[Sequence] = None,
        seeds: Optional[Sequence[int]] = None,
        jobs: Optional[int] = 1, char_jobs: int = 1,
        cache_dir=None, verbose: bool = False,
        progress: bool = False) -> SweepResult:
    """Evaluate every accelerator design point of the grid.

    Args:
        scale: Experiment scale (``smoke``/``ci``/``paper``).
        array_shapes: Array geometries in any spelling
            :func:`~repro.systolic.spec.parse_array_shape` accepts
            (``"32x32"``, ``(32, 32)``, ``None``/``"hw"`` = the
            backend's own geometry).  Default: the backend geometry.
        hw_variants: Hardware variants (``standard``/``optimized``).
            Default: both — the paper's comparison.
        stream_batch: Inferences streamed per stationary tile load,
            applied to every design point.
        backends: Registry ids and/or backend specs.
        networks: Network names, labels or specs.
        seeds: Pipeline seeds (multi-seed grids aggregate mean±std).
        jobs: Processes for independent grid points (0 = all cores).
        char_jobs: Processes each point spends sharding per-weight
            characterization.
        cache_dir: Shared on-disk artifact cache; design points
            invalidate only the ``accel_*`` stage keys, so the
            training/characterization prefix is reused across the
            whole design space.
        verbose: Log stage execution.
        progress: Stream per-point progress to stderr.
    """
    sweep = make_sweep_spec("accel", backends=backends,
                            networks=networks, seeds=seeds, scale=scale,
                            array_shapes=array_shapes,
                            hw_variants=hw_variants,
                            stream_batch=stream_batch)
    return run_sweep(sweep, jobs=jobs, cache_dir=cache_dir,
                     char_jobs=char_jobs, verbose=verbose,
                     progress=progress)


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro accel ...`` — the design-space CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro accel",
        description="Evaluate PowerPruning accelerator design points: "
                    "array shapes x hardware variants on the pruned "
                    "network, sharing one training/characterization "
                    "prefix",
        epilog="Example: python -m repro accel --scale smoke "
               "--shape 16x16 --shape 32x32 --shape hw --jobs 2 "
               "--cache-dir .repro-cache",
    )
    parser.add_argument("--spec", metavar="FILE",
                        help="JSON/TOML design-space spec (sweep spec "
                             "schema; 'experiment' defaults to "
                             "'accel'); explicit flags override its "
                             "entries")
    parser.add_argument("--shape", action="append", metavar="RxC",
                        help="systolic array geometry ('32x32', '32', "
                             "or 'hw' = the backend's own); repeatable "
                             "(default: the backend geometry)")
    parser.add_argument("--variant", action="append", metavar="NAME",
                        choices=("standard", "optimized"),
                        help="hardware variant; repeatable (default: "
                             "both)")
    parser.add_argument("--stream-batch", type=int, default=None,
                        metavar="N",
                        help="inferences streamed per stationary tile "
                             "load (default: 1)")
    parser.add_argument("--backend", action="append", metavar="ID",
                        help="hardware backend; repeatable "
                             f"(default: {DEFAULT_BACKEND_ID})")
    parser.add_argument("--network", action="append", metavar="NAME",
                        help="network name or Table I label; repeatable "
                             "(default: lenet5)")
    parser.add_argument("--seed", action="append", type=int, metavar="N",
                        help="pipeline seed; repeatable (default: 0)")
    parser.add_argument("--scale", default=None,
                        choices=("smoke", "ci", "paper"),
                        help="experiment scale (default: ci)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="processes for independent grid points "
                             "(0 = all cores; default: 1)")
    parser.add_argument("--char-jobs", type=int, default=1, metavar="N",
                        help="processes each point spends sharding "
                             "per-weight characterization (default: 1)")
    parser.add_argument("--sim-kernel", default="auto",
                        choices=("auto", "compiled", "packed"),
                        help="gate-simulation word kernel (bit-for-bit "
                             "identical; never part of cache keys; "
                             "default: auto)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk artifact cache shared across "
                             "points, runs and workers")
    parser.add_argument("--csv", default=None, metavar="FILE",
                        help="also write the tidy per-point table as "
                             "CSV")
    parser.add_argument("--aggregate-csv", default=None, metavar="FILE",
                        help="also write the seed-aggregated table as "
                             "CSV")
    args = parser.parse_args(argv)

    if args.sim_kernel != "auto":
        # Environment (not kwargs) so spawn-started pool workers
        # inherit the selection; bit-for-bit neutral, never cached.
        from repro.sim.compiled import KERNEL_ENV

        os.environ[KERNEL_ENV] = args.sim_kernel

    try:
        if args.spec is not None:
            data = load_spec_mapping(args.spec)
            data.setdefault("experiment", "accel")
            if data["experiment"] != "accel":
                raise ValueError(
                    f"spec file {args.spec!r} declares experiment "
                    f"{data['experiment']!r}; 'python -m repro accel' "
                    f"runs accel sweeps only (use 'python -m repro "
                    f"sweep --spec ...' for the full grid engine)")
            base = sweep_spec_from_mapping(
                data, source=f"design-space spec {args.spec!r}")
            # `is not None` merge, same contract as the sweep CLI.
            sweep = make_sweep_spec(
                "accel",
                backends=(args.backend if args.backend is not None
                          else base.backends),
                networks=(args.network if args.network is not None
                          else base.networks),
                seeds=(args.seed if args.seed is not None
                       else base.seeds),
                scale=(args.scale if args.scale is not None
                       else base.scale),
                array_shapes=(args.shape if args.shape is not None
                              else base.array_shapes),
                hw_variants=(args.variant if args.variant is not None
                             else base.hw_variants),
                stream_batch=(args.stream_batch
                              if args.stream_batch is not None
                              else base.stream_batch),
            )
        else:
            sweep = make_sweep_spec(
                "accel",
                backends=args.backend,
                networks=args.network,
                seeds=args.seed,
                scale=args.scale if args.scale is not None else "ci",
                array_shapes=args.shape,
                hw_variants=args.variant,
                stream_batch=(args.stream_batch
                              if args.stream_batch is not None else 1),
            )
        for backend in sweep.backends:
            if isinstance(backend, str):
                get_backend(backend)  # fail fast on typos
    except ValueError as error:
        parser.error(str(error))

    result = run_sweep(sweep, jobs=args.jobs, cache_dir=args.cache_dir,
                       char_jobs=args.char_jobs, progress=True)
    print(format_sweep(result))
    if args.csv:
        result.write_csv(args.csv)
        print(f"tidy table written to {args.csv}")
    if args.aggregate_csv:
        result.write_csv(args.aggregate_csv, aggregated=True)
        print(f"aggregated table written to {args.aggregate_csv}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(cli_main())
