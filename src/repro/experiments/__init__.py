"""Experiment harness: one module per paper table/figure.

Every module exposes a ``run(scale)`` function returning structured data
and a ``main()`` that prints the same rows/series the paper reports,
side by side with the paper's published numbers where applicable.

Scales:

* ``smoke`` — seconds per experiment, for tests.
* ``ci`` — minutes, the default for the benchmark harness.
* ``paper`` — the paper's nominal sizes (full 255-weight
  characterization, full 2^16 transition enumeration, full datasets).
"""

from repro.experiments.config import (
    NETWORK_SPECS,
    ExperimentScale,
    pipeline_config,
)
from repro.experiments.parallel import (
    ParallelTaskError,
    parallel_map,
    run_table1_rows,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.sweep import (
    SweepResult,
    SweepSpec,
    make_sweep_spec,
    run_sweep,
)

__all__ = [
    "ExperimentScale",
    "NETWORK_SPECS",
    "pipeline_config",
    "ExperimentContext",
    "ParallelTaskError",
    "parallel_map",
    "run_table1_rows",
    "SweepSpec",
    "SweepResult",
    "make_sweep_spec",
    "run_sweep",
]
