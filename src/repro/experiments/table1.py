"""Table I — main results of the proposed method.

Runs the full PowerPruning pipeline for the four network/dataset pairs
and prints our Table I next to the paper's published row values.

This module is a thin adapter over the declarative sweep engine
(:mod:`repro.experiments.sweep`): the grid expansion, process pool,
stage-cache sharing and per-point caching all live there.  Use
``python -m repro sweep --experiment table1`` for multi-backend or
multi-seed grids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.report import PowerPruningReport, format_table1
from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.experiments.stats import AggregateRow, aggregate_cell
from repro.experiments.sweep import (
    SweepResult,
    detail_columns,
    make_sweep_spec,
    run_sweep,
)
from repro.hw import DEFAULT_BACKEND_ID

#: The paper's Table I, for side-by-side reporting.
PAPER_TABLE1: Dict[str, Dict[str, object]] = {
    "LeNet-5-CIFAR-10": {
        "acc_orig": 80.7, "acc_prop": 78.4,
        "std_orig": 281.6, "std_prop": 152.1, "std_red": 46.0,
        "opt_orig": 280.4, "opt_prop": 73.1, "opt_red": 73.9,
        "weights": 32, "acts": 176, "delay_red": 40,
        "voltage": "0.71/0.8", "vshw": 13.7, "vohw": 6.4,
    },
    "ResNet-20-CIFAR-10": {
        "acc_orig": 91.9, "acc_prop": 88.9,
        "std_orig": 469.9, "std_prop": 230.6, "std_red": 50.9,
        "opt_orig": 427.7, "opt_prop": 173.4, "opt_red": 59.4,
        "weights": 32, "acts": 176, "delay_red": 40,
        "voltage": "0.71/0.8", "vshw": 12.7, "vohw": 10.6,
    },
    "ResNet-50-CIFAR-100": {
        "acc_orig": 79.9, "acc_prop": 78.4,
        "std_orig": 509.1, "std_prop": 278.7, "std_red": 45.3,
        "opt_orig": 510.8, "opt_prop": 140.8, "opt_red": 72.4,
        "weights": 40, "acts": 220, "delay_red": 30,
        "voltage": "0.73/0.8", "vshw": 10.6, "vohw": 5.2,
    },
    "EfficientNet-B0-Lite-ImageNet": {
        "acc_orig": 74.4, "acc_prop": 72.9,
        "std_orig": 152.0, "std_prop": 106.7, "std_red": 29.8,
        "opt_orig": 134.2, "opt_prop": 78.5, "opt_red": 41.5,
        "weights": 76, "acts": 244, "delay_red": 20,
        "voltage": "0.75/0.8", "vshw": 8.8, "vohw": 8.0,
    },
}


def run_result(scale: str = "ci",
               specs: Sequence[NetworkSpec] = NETWORK_SPECS,
               verbose: bool = False, jobs: Optional[int] = 1,
               cache_dir=None,
               backend: str = DEFAULT_BACKEND_ID,
               seeds: Sequence[int] = (0,)) -> SweepResult:
    """The raw sweep result of the Table I grid (one row per
    network x seed); multi-seed callers aggregate via
    ``result.aggregate()``."""
    sweep = make_sweep_spec("table1", backends=(backend,),
                            networks=specs, seeds=seeds, scale=scale)
    return run_sweep(sweep, jobs=jobs, cache_dir=cache_dir,
                     verbose=verbose)


def run(scale: str = "ci",
        specs: Sequence[NetworkSpec] = NETWORK_SPECS,
        verbose: bool = False, jobs: Optional[int] = 1,
        cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID,
        seeds: Sequence[int] = (0,)) -> List[PowerPruningReport]:
    """Run the full pipeline for every spec; returns the reports.

    Rows are independent: ``jobs`` fans them out across processes
    (``0`` = all cores), and ``cache_dir`` shares the stage-graph
    artifact cache between rows, runs and workers.  ``backend``
    selects the hardware backend all rows characterize against.
    With several ``seeds`` the returned list covers every
    network x seed combination in sweep expansion order.
    """
    result = run_result(scale, specs=specs, verbose=verbose, jobs=jobs,
                        cache_dir=cache_dir, backend=backend,
                        seeds=seeds)
    return [row.payload for row in result.rows]


def format_with_reference(reports: List[PowerPruningReport]) -> str:
    """Our Table I plus the paper's numbers for the same rows."""
    lines = ["=== Table I (this reproduction) ===",
             format_table1(reports), "",
             "=== Table I (paper, published) ==="]
    for spec, report in zip(NETWORK_SPECS, reports):
        paper = PAPER_TABLE1[spec.label]
        lines.append(
            f"{spec.label}: acc {paper['acc_orig']}%->{paper['acc_prop']}%"
            f" | StdHW {paper['std_orig']}->{paper['std_prop']} mW"
            f" ({paper['std_red']}%)"
            f" | OptHW {paper['opt_orig']}->{paper['opt_prop']} mW"
            f" ({paper['opt_red']}%)"
            f" | wei {paper['weights']} act {paper['acts']}"
            f" | {paper['delay_red']} ps | {paper['voltage']}"
            f" | VS {paper['vshw']}%/{paper['vohw']}%"
        )
    return "\n".join(lines)


#: Variance-aware Table I columns: the sweep engine's table1 display
#: columns (single source) plus the selected-value counts.
_VARIANCE_COLUMNS = detail_columns("table1") + (
    ("n_weights", "#wei", "d", 1.0),
    ("n_activations", "#act", "d", 1.0),
)


def format_table1_variance(aggregates: Sequence[AggregateRow]) -> str:
    """The variance-aware Table I: every cell is mean±std over seeds."""
    header = ["network", "n"] + [title for __, title, __, __
                                 in _VARIANCE_COLUMNS]
    rows = [header]
    for agg in aggregates:
        cells = [agg.network, str(agg.n_seeds)]
        cells += [aggregate_cell(agg, metric, fmt, scale)
                  for metric, __, fmt, scale in _VARIANCE_COLUMNS]
        rows.append(cells)
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(" | ".join(
            cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def main(scale: str = "ci", jobs: Optional[int] = 1,
         cache_dir=None,
         backend: str = DEFAULT_BACKEND_ID,
         seeds: Sequence[int] = (0,)) -> List[PowerPruningReport]:
    result = run_result(scale, jobs=jobs, cache_dir=cache_dir,
                        backend=backend, seeds=seeds)
    reports = [row.payload for row in result.rows]
    if len(result.sweep.seeds) > 1:
        print(f"=== Table I (this reproduction, mean±std over "
              f"{len(result.sweep.seeds)} seeds) ===")
        print(format_table1_variance(result.aggregate()))
        print()
        print(f"=== detail: seed {result.sweep.seeds[0]} ===")
    print(format_with_reference(
        [row.payload for row in result.rows_for(
            seed=result.sweep.seeds[0])]))
    return reports


if __name__ == "__main__":
    main()
