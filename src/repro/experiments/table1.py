"""Table I — main results of the proposed method.

Runs the full PowerPruning pipeline for the four network/dataset pairs
and prints our Table I next to the paper's published row values.

This module is a thin adapter over the declarative sweep engine
(:mod:`repro.experiments.sweep`): the grid expansion, process pool,
stage-cache sharing and per-point caching all live there.  Use
``python -m repro sweep --experiment table1`` for multi-backend or
multi-seed grids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.report import PowerPruningReport, format_table1
from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.experiments.sweep import make_sweep_spec, run_sweep
from repro.hw import DEFAULT_BACKEND_ID

#: The paper's Table I, for side-by-side reporting.
PAPER_TABLE1: Dict[str, Dict[str, object]] = {
    "LeNet-5-CIFAR-10": {
        "acc_orig": 80.7, "acc_prop": 78.4,
        "std_orig": 281.6, "std_prop": 152.1, "std_red": 46.0,
        "opt_orig": 280.4, "opt_prop": 73.1, "opt_red": 73.9,
        "weights": 32, "acts": 176, "delay_red": 40,
        "voltage": "0.71/0.8", "vshw": 13.7, "vohw": 6.4,
    },
    "ResNet-20-CIFAR-10": {
        "acc_orig": 91.9, "acc_prop": 88.9,
        "std_orig": 469.9, "std_prop": 230.6, "std_red": 50.9,
        "opt_orig": 427.7, "opt_prop": 173.4, "opt_red": 59.4,
        "weights": 32, "acts": 176, "delay_red": 40,
        "voltage": "0.71/0.8", "vshw": 12.7, "vohw": 10.6,
    },
    "ResNet-50-CIFAR-100": {
        "acc_orig": 79.9, "acc_prop": 78.4,
        "std_orig": 509.1, "std_prop": 278.7, "std_red": 45.3,
        "opt_orig": 510.8, "opt_prop": 140.8, "opt_red": 72.4,
        "weights": 40, "acts": 220, "delay_red": 30,
        "voltage": "0.73/0.8", "vshw": 10.6, "vohw": 5.2,
    },
    "EfficientNet-B0-Lite-ImageNet": {
        "acc_orig": 74.4, "acc_prop": 72.9,
        "std_orig": 152.0, "std_prop": 106.7, "std_red": 29.8,
        "opt_orig": 134.2, "opt_prop": 78.5, "opt_red": 41.5,
        "weights": 76, "acts": 244, "delay_red": 20,
        "voltage": "0.75/0.8", "vshw": 8.8, "vohw": 8.0,
    },
}


def run(scale: str = "ci",
        specs: Sequence[NetworkSpec] = NETWORK_SPECS,
        verbose: bool = False, jobs: Optional[int] = 1,
        cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID) -> List[PowerPruningReport]:
    """Run the full pipeline for every spec; returns the reports.

    Rows are independent: ``jobs`` fans them out across processes
    (``0`` = all cores), and ``cache_dir`` shares the stage-graph
    artifact cache between rows, runs and workers.  ``backend``
    selects the hardware backend all rows characterize against.
    """
    sweep = make_sweep_spec("table1", backends=(backend,),
                            networks=specs, scale=scale)
    result = run_sweep(sweep, jobs=jobs, cache_dir=cache_dir,
                       verbose=verbose)
    return [row.payload for row in result.rows]


def format_with_reference(reports: List[PowerPruningReport]) -> str:
    """Our Table I plus the paper's numbers for the same rows."""
    lines = ["=== Table I (this reproduction) ===",
             format_table1(reports), "",
             "=== Table I (paper, published) ==="]
    for spec, report in zip(NETWORK_SPECS, reports):
        paper = PAPER_TABLE1[spec.label]
        lines.append(
            f"{spec.label}: acc {paper['acc_orig']}%->{paper['acc_prop']}%"
            f" | StdHW {paper['std_orig']}->{paper['std_prop']} mW"
            f" ({paper['std_red']}%)"
            f" | OptHW {paper['opt_orig']}->{paper['opt_prop']} mW"
            f" ({paper['opt_red']}%)"
            f" | wei {paper['weights']} act {paper['acts']}"
            f" | {paper['delay_red']} ps | {paper['voltage']}"
            f" | VS {paper['vshw']}%/{paper['vohw']}%"
        )
    return "\n".join(lines)


def main(scale: str = "ci", jobs: Optional[int] = 1,
         cache_dir=None,
         backend: str = DEFAULT_BACKEND_ID) -> List[PowerPruningReport]:
    reports = run(scale, jobs=jobs, cache_dir=cache_dir, backend=backend)
    print(format_with_reference(reports))
    return reports


if __name__ == "__main__":
    main()
