"""Figure 4 — transition distributions of activations and partial sums.

Collected from LeNet-5 traffic on the systolic array: (a) the 256x256
activation transition matrix (diagonal-heavy), (b) the 50-bin partial-sum
transition matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.config import NETWORK_SPECS
from repro.experiments.runner import ExperimentContext
from repro.hw import DEFAULT_BACKEND_ID
from repro.power.binning import BinnedTransitions
from repro.power.transitions import TransitionDistribution


@dataclass
class Fig4Result:
    """Both measured distributions plus structural summaries."""

    activation: TransitionDistribution
    psum_binned: BinnedTransitions
    n_act_transitions: int
    n_psum_transitions: int

    def summary(self) -> Dict[str, float]:
        act = self.activation
        psum = self.psum_binned.distribution
        return {
            "act_diagonal_mass_8": act.diagonal_mass(8),
            "act_diagonal_mass_16": act.diagonal_mass(16),
            "psum_diagonal_mass_2": psum.diagonal_mass(2),
            "psum_nonuniformity": float(
                psum.matrix.max() * psum.matrix.size),
        }


def run(scale: str = "ci", seed: int = 0, cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID) -> Fig4Result:
    """Measure both Fig. 4 distributions from LeNet-5 traffic."""
    context = ExperimentContext(NETWORK_SPECS[0], scale, seed=seed,
                                cache_dir=cache_dir, backend=backend)
    stats = context.stats
    return Fig4Result(
        activation=stats.activation_distribution(),
        psum_binned=stats.binned_psum_transitions(
            n_bins=50, seed=seed),
        n_act_transitions=stats.n_act_transitions,
        n_psum_transitions=stats.n_psum_transitions,
    )


def format_heatmap(matrix: np.ndarray, cells: int = 16,
                   label: str = "") -> str:
    """Coarse ASCII heatmap of a transition matrix."""
    n = matrix.shape[0]
    block = max(1, n // cells)
    coarse = matrix[:cells * block, :cells * block].reshape(
        cells, block, cells, block).sum(axis=(1, 3))
    shades = " .:-=+*#%@"
    peak = coarse.max() if coarse.max() > 0 else 1.0
    lines = [label]
    for row in coarse:
        lines.append("".join(
            shades[min(int(v / peak * (len(shades) - 1) * 3),
                       len(shades) - 1)]
            for v in row
        ))
    return "\n".join(lines)


def main(scale: str = "ci", jobs: Optional[int] = 1,
         cache_dir=None, backend: str = DEFAULT_BACKEND_ID) -> Fig4Result:
    # Single network, single measurement — ``jobs`` is accepted for CLI
    # uniformity but there is nothing to fan out.
    result = run(scale, cache_dir=cache_dir, backend=backend)
    print("=== Fig. 4: operand transition distributions ===")
    print(format_heatmap(result.activation.matrix,
                         label="(a) activation transitions "
                               "(rows: from, cols: to)"))
    print()
    print(format_heatmap(result.psum_binned.distribution.matrix,
                         cells=25,
                         label="(b) partial-sum bin transitions"))
    summary = result.summary()
    print(f"\ncollected {result.n_act_transitions} activation and "
          f"{result.n_psum_transitions} partial-sum transitions")
    print(f"summary: {summary}")
    print("paper observation: bright diagonal in both — most transitions "
          "stay near the previous value")
    return result


if __name__ == "__main__":
    main()
