"""Figure 3 — delay profiles of a MAC unit for two weight values.

Dynamic timing analysis of the multiplier (composed with the adder's
static delays) over activation transitions, for the paper's two example
weights: -105 (slow, max 179 ps) and 64 (fast, max 134 ps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.artifacts import ArtifactStore, hash_key
from repro.hw import DEFAULT_BACKEND_ID, get_backend
from repro.timing import WeightDelayProfiler
from repro.timing.profile import (
    ANCHOR_MAX_DELAY_PS,
    DelayProfile,
    WeightTimingTable,
)

#: Fig. 3 anchors.
PAPER_MAX_DELAY_PS = {-105: 179.0, 64: 134.0}


@dataclass
class Fig3Result:
    """Calibrated delay profiles of the two example weights."""

    profiles: Dict[int, DelayProfile]
    time_scale: float

    def max_delays(self) -> Dict[int, float]:
        return {w: p.max_delay_ps * self.time_scale
                for w, p in self.profiles.items()}


def run(scale: str = "ci", weights: Tuple[int, ...] = (-105, 64),
        seed: int = 0, cache_dir=None,
        backend: str = DEFAULT_BACKEND_ID) -> Fig3Result:
    """Profile the example weights over activation transitions.

    At ``paper`` scale all 2^16 transitions are enumerated; smaller
    scales subsample them.  Profiles are content-addressed in the
    artifact store, so a ``cache_dir`` makes re-runs (and the ``paper``
    scale's full enumeration) instant.
    """
    spec = get_backend(backend)
    mac = spec.build_mac()
    library = spec.build_library()
    profiler = WeightDelayProfiler(mac, library)
    store = ArtifactStore(cache_dir)

    n_transitions = {"smoke": 3000, "ci": 16384, "paper": None}.get(
        scale, 16384)
    transitions = None
    if n_transitions is not None:
        act_from, act_to = profiler.all_transitions()
        rng = np.random.default_rng(seed)
        chosen = rng.choice(act_from.size, n_transitions, replace=False)
        transitions = (act_from[chosen], act_to[chosen])

    def profile(weight: int) -> DelayProfile:
        key = hash_key({
            "stage": "fig3/delay_profile", "version": "1",
            "backend": spec.key_payload(),
            "weight": weight, "n_transitions": n_transitions,
            "seed": seed,
        })
        return store.get_or_compute(
            key, lambda: profiler.profile(weight, transitions))

    # Calibrate the global time scale against the slowest of all weights
    # the same way the full characterization does: the paper's 180 ps is
    # the post-synthesis max across every weight value, approximated here
    # by the slowest anchor weight (-105 is the paper's own worst case).
    profiles = {w: profile(w) for w in weights}
    raw_max = max(p.max_delay_ps for p in profiles.values())
    time_scale = ANCHOR_MAX_DELAY_PS / raw_max if raw_max > 0 else 1.0
    return Fig3Result(profiles=profiles, time_scale=time_scale)


def format_histogram(profile: DelayProfile, time_scale: float,
                     bin_width_ps: float = 10.0) -> str:
    """ASCII Fig. 3 panel for one weight."""
    delays = profile.delays_ps * time_scale
    top = np.ceil(delays.max() / bin_width_ps) * bin_width_ps
    edges = np.arange(0.0, top + bin_width_ps, bin_width_ps)
    counts, __ = np.histogram(delays, bins=edges)
    peak = counts.max() if counts.size else 1
    lines = [f"weight {profile.weight}: max delay "
             f"{delays.max():.0f} ps"]
    for lo, hi, count in zip(edges[:-1], edges[1:], counts):
        if count == 0:
            continue
        bar = "#" * max(1, int(round(30 * count / peak)))
        lines.append(f"  {lo:5.0f}-{hi:5.0f} ps  {count:7d}  {bar}")
    return "\n".join(lines)


def main(scale: str = "ci", jobs: Optional[int] = 1,
         cache_dir=None, backend: str = DEFAULT_BACKEND_ID) -> Fig3Result:
    # Two weights, one profiler — ``jobs`` is accepted for CLI
    # uniformity but there is nothing worth forking for.
    result = run(scale, cache_dir=cache_dir, backend=backend)
    print("=== Fig. 3: MAC delay profiles per weight value ===")
    for weight, profile in result.profiles.items():
        print(format_histogram(profile, result.time_scale))
        print(f"  paper max delay for {weight}: "
              f"{PAPER_MAX_DELAY_PS.get(weight, float('nan')):.0f} ps")
    return result


if __name__ == "__main__":
    main()
