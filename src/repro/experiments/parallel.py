"""Process-parallel execution of independent experiment units.

Table I rows, figure panels and sweep grid points are independent of
each other, so they can run in separate processes.  Each worker rebuilds
its own :class:`~repro.experiments.runner.ExperimentContext`; pointing
every worker at the same ``cache_dir`` makes them share the
content-addressed artifact cache on disk, so a re-run (or a figure
riding on a Table I run) pays only for stages nobody computed yet.

Failure semantics come in two flavours:

* :func:`parallel_map` raises :class:`ParallelTaskError` on the first
  failure, *fail-fast*: not-yet-started siblings are cancelled instead
  of draining the whole grid behind a doomed run.  The message names
  the exact task (grid point, row) that crashed plus the worker-side
  traceback — including when the OS kills a worker outright and the
  pool breaks, which would otherwise surface as a bare
  ``BrokenProcessPool`` with no hint of which point died.
* :func:`parallel_map_outcomes` never raises per-task: every item
  resolves to a :class:`TaskOutcome` carrying either the result or a
  :class:`TaskFailure`, with pool-breakage failures flagged
  ``retriable`` and an optional wall-clock ``timeout`` for the whole
  batch.  This is what the experiment service schedules jobs through —
  one poisoned grid point degrades a job to ``partial`` instead of
  discarding the surviving rows.
"""

from __future__ import annotations

import os
import pickle
import random
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import CancelledError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, \
    TypeVar, Union

from repro.core.report import PowerPruningReport
from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.hw import DEFAULT_BACKEND_ID, HardwareBackend, get_backend

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["default_jobs", "parallel_map", "parallel_map_outcomes",
           "ParallelTaskError", "TaskFailure", "TaskOutcome",
           "RowTask", "run_table1_rows", "retry_backoff_delay"]


class ParallelTaskError(RuntimeError):
    """A parallel task failed; the message names the failing task."""


def default_jobs() -> int:
    """Worker count when ``--jobs 0`` asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def retry_backoff_delay(base_s: float, attempt: int,
                        rng: Optional[random.Random] = None,
                        cap_s: float = 30.0) -> float:
    """Full-jitter exponential backoff for retry wave ``attempt``.

    Returns a delay drawn uniformly from ``[0, min(base_s *
    2**(attempt-1), cap_s)]`` — full jitter, so a fleet of workers
    retrying the same broken resource decorrelates instead of
    thundering in lockstep at the deterministic schedule.  Pass a
    seeded ``rng`` for reproducible tests/chaos drills.
    """
    if base_s <= 0 or attempt <= 0:
        return 0.0
    upper = min(base_s * (2 ** (attempt - 1)), cap_s)
    draw = rng.uniform if rng is not None else random.uniform
    return draw(0.0, upper)


def describe_task(item: Any) -> str:
    """Human-readable one-liner identifying a work item.

    Tasks that implement ``describe()`` (grid points, row tasks) name
    themselves; anything else falls back to a truncated ``repr``.
    """
    describe = getattr(item, "describe", None)
    if callable(describe):
        try:
            return str(describe())
        except Exception:
            pass
    text = repr(item)
    return text if len(text) <= 200 else text[:197] + "..."


@dataclass(frozen=True)
class TaskFailure:
    """Why one work item produced no result.

    ``kind`` is one of ``"error"`` (the task itself raised),
    ``"pool"`` (the process pool broke underneath it — worker
    OOM-killed, ``os._exit``), ``"timeout"`` (the batch deadline
    expired first) or ``"cancelled"`` (fail-fast cancelled it before
    it started).  Only ``"pool"`` failures are ``retriable``: the task
    never got to misbehave, a fresh pool may well complete it.
    """

    index: int
    description: str
    kind: str = "error"
    retriable: bool = False
    worker_traceback: Optional[str] = None
    error: Optional[BaseException] = field(default=None, compare=False)

    def summary(self) -> str:
        reasons = {
            "error": "raised",
            "pool": "was in flight when the process pool broke "
                    "(worker killed?)",
            "timeout": "did not finish before the deadline",
            "cancelled": "was cancelled after an earlier failure",
        }
        return f"{self.description} {reasons[self.kind]}"


@dataclass(frozen=True)
class TaskOutcome:
    """One item's terminal state under :func:`parallel_map_outcomes`."""

    index: int
    value: Any = None
    failure: Optional[TaskFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _shippable_exception(error: BaseException
                         ) -> Optional[BaseException]:
    """``error`` if it survives a pickle round-trip, else ``None``.

    Worker exceptions travel back to the parent inside the result
    payload; an unpicklable one (custom ``__init__`` signatures, open
    handles in args) must not crash the transport a second time.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return None


def _call_guarded(packed: Tuple[Callable[[T], R], int, T]
                  ) -> Tuple[bool, Any]:
    """Worker wrapper: ``(True, result)`` or ``(False, failure info)``."""
    fn, index, item = packed
    try:
        return True, fn(item)
    except Exception as error:
        return False, (index, describe_task(item),
                       traceback.format_exc(),
                       _shippable_exception(error))


def _pool_outcomes(fn: Callable[[T], R], items: Sequence[T], jobs: int,
                   on_result: Optional[Callable[[int, R], None]],
                   fail_fast: bool,
                   timeout: Optional[float]
                   ) -> List[Union[None, Tuple[bool, Any],
                                   TaskFailure]]:
    """Shared pool loop: one slot per item, completion-streamed.

    Slots hold ``(True, result)`` for successes, a :class:`TaskFailure`
    otherwise; ``None`` only for tasks fail-fast-cancelled before any
    outcome existed (raise-mode surfaces the recorded failure anyway).
    """
    outcomes: List[Union[None, Tuple[bool, Any], TaskFailure]] = \
        [None] * len(items)
    deadline = None if timeout is None else time.monotonic() + timeout
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures = {
            pool.submit(_call_guarded, (fn, index, item)): index
            for index, item in enumerate(items)
        }
        pending = set(futures)
        cancelling = False
        while pending:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            done, pending = wait(pending, timeout=remaining,
                                 return_when=FIRST_COMPLETED)
            if not done:
                # Batch deadline expired: whatever has not finished is
                # abandoned (queued tasks cancel; running ones keep
                # the dying pool busy but their results are dropped).
                for future in pending:
                    future.cancel()
                for future in pending:
                    index = futures[future]
                    outcomes[index] = TaskFailure(
                        index=index,
                        description=describe_task(items[index]),
                        kind="timeout")
                pending = set()
                break
            for future in done:
                index = futures[future]
                if future.cancelled():
                    outcomes[index] = TaskFailure(
                        index=index,
                        description=describe_task(items[index]),
                        kind="cancelled")
                    continue
                try:
                    ok, payload = future.result()
                except CancelledError:
                    outcomes[index] = TaskFailure(
                        index=index,
                        description=describe_task(items[index]),
                        kind="cancelled")
                    continue
                except BrokenProcessPool as error:
                    # The pool is gone; every sibling future completes
                    # with the same exception and drains through here.
                    outcomes[index] = TaskFailure(
                        index=index,
                        description=describe_task(items[index]),
                        kind="pool", retriable=True, error=error)
                    continue
                except Exception as error:
                    # Transport failure (e.g. unpicklable result).
                    outcomes[index] = TaskFailure(
                        index=index,
                        description=describe_task(items[index]),
                        kind="error", error=error)
                    if fail_fast and not cancelling:
                        cancelling = True
                        for sibling in futures:
                            if not sibling.done():
                                sibling.cancel()
                    continue
                if ok:
                    outcomes[index] = (True, payload)
                    if on_result is not None:
                        on_result(index, payload)
                else:
                    __, described, worker_tb, error = payload
                    outcomes[index] = TaskFailure(
                        index=index, description=described,
                        kind="error", worker_traceback=worker_tb,
                        error=error)
                    if fail_fast and not cancelling:
                        # Cancel everything not yet started: a doomed
                        # run must not drain the rest of the grid
                        # before surfacing its first failure.
                        cancelling = True
                        for sibling in futures:
                            if not sibling.done():
                                sibling.cancel()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return outcomes


def _first_failure(outcomes: Sequence[Union[None, Tuple[bool, Any],
                                            TaskFailure]]
                   ) -> Optional[TaskFailure]:
    """The failure to surface in raise mode, deterministically.

    First-submission-first among task errors (they carry a real
    traceback), then timeouts, then pool-breakage losses; fail-fast
    cancellations are consequences, never causes, and are skipped.
    """
    failures = [o for o in outcomes if isinstance(o, TaskFailure)]
    for kinds in (("error",), ("timeout",), ("pool",)):
        chosen = [f for f in failures if f.kind in kinds]
        if chosen:
            return min(chosen, key=lambda f: f.index)
    return None


def _raise_task_error(failure: TaskFailure,
                      outcomes: Sequence[Union[None, Tuple[bool, Any],
                                               TaskFailure]],
                      total: int) -> None:
    if failure.kind == "pool":
        lost = [o for o in outcomes
                if isinstance(o, TaskFailure) and o.kind == "pool"]
        lines = [f"process pool broke (a worker died — OOM-killed or "
                 f"os._exit?) with {len(lost)} task(s) in flight:"]
        lines += [f"  - task {f.index}/{total}: {f.description}"
                  for f in lost]
        raise ParallelTaskError("\n".join(lines)) from failure.error
    message = (f"task {failure.index}/{total} failed: "
               f"{failure.description}")
    if failure.kind == "timeout":
        message = (f"task {failure.index}/{total} timed out: "
                   f"{failure.description}")
    if failure.worker_traceback is not None:
        message += (f"\n--- worker traceback ---\n"
                    f"{failure.worker_traceback}")
    raise ParallelTaskError(message) from failure.error


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None,
                 on_result: Optional[Callable[[int, R], None]] = None
                 ) -> List[R]:
    """``[fn(item) for item in items]`` across processes, order kept.

    Args:
        fn: A module-level (picklable) callable.
        items: Picklable work items.
        jobs: Process count; ``None``/``0`` uses every core, ``1`` (or a
            single item) runs inline without spawning workers.
        on_result: Progress hook called as ``on_result(index, result)``
            each time a task *finishes* (completion order, which for
            pool runs is not submission order).  This is what lets the
            sweep engine stream a live done/cached/remaining report
            while a grid runs.

    Raises:
        ParallelTaskError: A task raised; the message names the task
            (``item.describe()`` when available) and, for pool runs,
            includes the worker-side traceback.  The original exception
            is chained as ``__cause__`` whenever it can be shipped
            across the process boundary.  Once a task has failed,
            not-yet-started siblings are cancelled (fail-fast); among
            tasks that did complete, the first-submitted failure wins
            deterministically.  A worker killed outright (pool
            breakage) raises with every in-flight task named and the
            ``BrokenProcessPool`` chained as the cause.
    """
    items = list(items)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(items)))
    if jobs == 1 or len(items) <= 1:
        results: List[R] = []
        for index, item in enumerate(items):
            try:
                result = fn(item)
            except ParallelTaskError:
                raise
            except Exception as error:
                raise ParallelTaskError(
                    f"task {index}/{len(items)} failed: "
                    f"{describe_task(item)}") from error
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results
    outcomes = _pool_outcomes(fn, items, jobs, on_result,
                              fail_fast=True, timeout=None)
    failure = _first_failure(outcomes)
    if failure is not None:
        _raise_task_error(failure, outcomes, len(items))
    return [payload for __, payload in outcomes]  # type: ignore[misc]


def parallel_map_outcomes(fn: Callable[[T], R], items: Sequence[T],
                          jobs: Optional[int] = None,
                          on_result: Optional[
                              Callable[[int, R], None]] = None,
                          timeout: Optional[float] = None
                          ) -> List[TaskOutcome]:
    """Per-item outcomes instead of an all-or-nothing result list.

    The tolerant sibling of :func:`parallel_map`: every item resolves
    to a :class:`TaskOutcome`, failures included, so callers (the
    experiment service's job worker) can keep surviving results, retry
    ``retriable`` losses and degrade gracefully.  ``timeout`` bounds
    the *batch* wall clock; items still unfinished when it expires
    resolve to ``kind="timeout"`` failures.  Nothing is fail-fast
    cancelled — one bad item must not take the grid down with it.

    Only ``jobs=1`` runs inline in the calling thread.  Any higher
    value keeps process isolation even for a single item: a retry wave
    that shrank to one worker-killing task must break a pool, not take
    the calling service down with an ``os._exit``/OOM kill.
    """
    items = list(items)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    inline = jobs == 1 or not items
    jobs = max(1, min(jobs, len(items))) if items else 1
    deadline = None if timeout is None else time.monotonic() + timeout
    if inline:
        outcomes: List[TaskOutcome] = []
        for index, item in enumerate(items):
            if deadline is not None and time.monotonic() >= deadline:
                outcomes.append(TaskOutcome(index=index, failure=(
                    TaskFailure(index=index,
                                description=describe_task(item),
                                kind="timeout"))))
                continue
            try:
                result = fn(item)
            except Exception as error:
                outcomes.append(TaskOutcome(index=index, failure=(
                    TaskFailure(index=index,
                                description=describe_task(item),
                                kind="error",
                                worker_traceback=traceback.format_exc(),
                                error=error))))
                continue
            outcomes.append(TaskOutcome(index=index, value=result))
            if on_result is not None:
                on_result(index, result)
        return outcomes
    raw = _pool_outcomes(fn, items, jobs, on_result,
                         fail_fast=False, timeout=timeout)
    wrapped: List[TaskOutcome] = []
    for index, outcome in enumerate(raw):
        if isinstance(outcome, TaskFailure):
            wrapped.append(TaskOutcome(index=index, failure=outcome))
        else:
            assert outcome is not None  # tolerant mode fills all slots
            wrapped.append(TaskOutcome(index=index, value=outcome[1]))
    return wrapped


def _backend_spec(backend) -> HardwareBackend:
    """Resolve an id-or-spec to a spec for shipping to workers.

    Tasks carry the full :class:`HardwareBackend` rather than its id:
    under a spawn start method workers re-import the registry with
    built-ins only, so a user-registered backend would be unknown
    there — the spec travels with the task and is re-registered on the
    worker side (see :func:`repro.hw.resolve_backend_id`).  Unknown
    ids fail here, in the parent, before any worker is spawned.
    """
    if isinstance(backend, HardwareBackend):
        return backend
    return get_backend(backend)


@dataclass(frozen=True)
class RowTask:
    """One Table I row's worth of work, picklable for worker dispatch."""

    spec: NetworkSpec
    scale: str = "ci"
    seed: int = 0
    cache_dir: Optional[str] = None
    verbose: bool = False
    backend: Optional[HardwareBackend] = None

    def describe(self) -> str:
        backend = (self.backend.backend_id if self.backend is not None
                   else DEFAULT_BACKEND_ID)
        return (f"table1 row {self.spec.label} "
                f"[scale={self.scale} seed={self.seed} "
                f"backend={backend}]")


def _run_row(task: RowTask) -> PowerPruningReport:
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(task.spec, task.scale, seed=task.seed,
                                verbose=task.verbose,
                                cache_dir=task.cache_dir,
                                backend=task.backend)
    return context.report()


def run_table1_rows(specs: Sequence[NetworkSpec] = NETWORK_SPECS,
                    scale: str = "ci", seed: int = 0,
                    jobs: Optional[int] = 1,
                    cache_dir=None,
                    verbose: bool = False,
                    backend=DEFAULT_BACKEND_ID
                    ) -> List[PowerPruningReport]:
    """Full-pipeline reports for ``specs``, optionally across processes.

    ``backend`` accepts a registry id or a ``HardwareBackend`` spec.
    """
    cache = str(cache_dir) if cache_dir is not None else None
    spec_backend = _backend_spec(backend)
    tasks = [RowTask(spec, scale, seed, cache, verbose, spec_backend)
             for spec in specs]
    return parallel_map(_run_row, tasks, jobs=jobs)
