"""Process-parallel execution of independent experiment units.

Table I rows and the per-network panels of the figure sweeps are
independent of each other, so they can run in separate processes.  Each
worker rebuilds its own :class:`~repro.experiments.runner.ExperimentContext`;
pointing every worker at the same ``cache_dir`` makes them share the
content-addressed artifact cache on disk, so a re-run (or a figure
riding on a Table I run) pays only for stages nobody computed yet.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, \
    TypeVar

from repro.core.report import PowerPruningReport
from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.hw import DEFAULT_BACKEND_ID, HardwareBackend, get_backend

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["default_jobs", "parallel_map", "RowTask", "run_table1_rows",
           "PanelTask", "run_spec_panels"]


def default_jobs() -> int:
    """Worker count when ``--jobs 0`` asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None) -> List[R]:
    """``[fn(item) for item in items]`` across processes, order kept.

    Args:
        fn: A module-level (picklable) callable.
        items: Picklable work items.
        jobs: Process count; ``None``/``0`` uses every core, ``1`` (or a
            single item) runs inline without spawning workers.
    """
    items = list(items)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(items)))
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


def _backend_spec(backend) -> HardwareBackend:
    """Resolve an id-or-spec to a spec for shipping to workers.

    Tasks carry the full :class:`HardwareBackend` rather than its id:
    under a spawn start method workers re-import the registry with
    built-ins only, so a user-registered backend would be unknown
    there — the spec travels with the task and is re-registered on the
    worker side (see :func:`repro.hw.resolve_backend_id`).  Unknown
    ids fail here, in the parent, before any worker is spawned.
    """
    if isinstance(backend, HardwareBackend):
        return backend
    return get_backend(backend)


@dataclass(frozen=True)
class RowTask:
    """One Table I row's worth of work, picklable for worker dispatch."""

    spec: NetworkSpec
    scale: str = "ci"
    seed: int = 0
    cache_dir: Optional[str] = None
    verbose: bool = False
    backend: Optional[HardwareBackend] = None


def _run_row(task: RowTask) -> PowerPruningReport:
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(task.spec, task.scale, seed=task.seed,
                                verbose=task.verbose,
                                cache_dir=task.cache_dir,
                                backend=task.backend)
    return context.report()


def run_table1_rows(specs: Sequence[NetworkSpec] = NETWORK_SPECS,
                    scale: str = "ci", seed: int = 0,
                    jobs: Optional[int] = 1,
                    cache_dir=None,
                    verbose: bool = False,
                    backend=DEFAULT_BACKEND_ID
                    ) -> List[PowerPruningReport]:
    """Full-pipeline reports for ``specs``, optionally across processes.

    ``backend`` accepts a registry id or a ``HardwareBackend`` spec.
    """
    cache = str(cache_dir) if cache_dir is not None else None
    spec_backend = _backend_spec(backend)
    tasks = [RowTask(spec, scale, seed, cache, verbose, spec_backend)
             for spec in specs]
    return parallel_map(_run_row, tasks, jobs=jobs)


@dataclass(frozen=True)
class PanelTask:
    """One network's sweep panel, picklable for worker dispatch."""

    spec: NetworkSpec
    scale: str
    thresholds: Tuple
    seed: int
    cache_dir: Optional[str]
    backend: Optional[HardwareBackend] = None


def run_spec_panels(panel_fn: Callable[[PanelTask], R],
                    specs: Sequence[NetworkSpec],
                    scale: str, thresholds: Sequence,
                    seed: int = 0, jobs: Optional[int] = 1,
                    cache_dir=None,
                    backend=DEFAULT_BACKEND_ID) -> Dict[str, R]:
    """Per-network panels keyed by spec label, optionally across
    processes.

    ``panel_fn`` must be a module-level callable taking a
    :class:`PanelTask`; figure modules supply the per-threshold sweep.
    ``backend`` accepts a registry id or a ``HardwareBackend`` spec.
    """
    cache = str(cache_dir) if cache_dir is not None else None
    spec_backend = _backend_spec(backend)
    tasks = [PanelTask(spec, scale, tuple(thresholds), seed, cache,
                       spec_backend)
             for spec in specs]
    panels = parallel_map(panel_fn, tasks, jobs=jobs)
    return {spec.label: panel for spec, panel in zip(specs, panels)}
