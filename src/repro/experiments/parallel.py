"""Process-parallel execution of independent experiment units.

Table I rows and the per-network panels of the figure sweeps are
independent of each other, so they can run in separate processes.  Each
worker rebuilds its own :class:`~repro.experiments.runner.ExperimentContext`;
pointing every worker at the same ``cache_dir`` makes them share the
content-addressed artifact cache on disk, so a re-run (or a figure
riding on a Table I run) pays only for stages nobody computed yet.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, \
    TypeVar

from repro.core.report import PowerPruningReport
from repro.experiments.config import NETWORK_SPECS, NetworkSpec

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["default_jobs", "parallel_map", "RowTask", "run_table1_rows",
           "PanelTask", "run_spec_panels"]


def default_jobs() -> int:
    """Worker count when ``--jobs 0`` asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None) -> List[R]:
    """``[fn(item) for item in items]`` across processes, order kept.

    Args:
        fn: A module-level (picklable) callable.
        items: Picklable work items.
        jobs: Process count; ``None``/``0`` uses every core, ``1`` (or a
            single item) runs inline without spawning workers.
    """
    items = list(items)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(items)))
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


@dataclass(frozen=True)
class RowTask:
    """One Table I row's worth of work, picklable for worker dispatch."""

    spec: NetworkSpec
    scale: str = "ci"
    seed: int = 0
    cache_dir: Optional[str] = None
    verbose: bool = False


def _run_row(task: RowTask) -> PowerPruningReport:
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(task.spec, task.scale, seed=task.seed,
                                verbose=task.verbose,
                                cache_dir=task.cache_dir)
    return context.report()


def run_table1_rows(specs: Sequence[NetworkSpec] = NETWORK_SPECS,
                    scale: str = "ci", seed: int = 0,
                    jobs: Optional[int] = 1,
                    cache_dir=None,
                    verbose: bool = False) -> List[PowerPruningReport]:
    """Full-pipeline reports for ``specs``, optionally across processes."""
    cache = str(cache_dir) if cache_dir is not None else None
    tasks = [RowTask(spec, scale, seed, cache, verbose) for spec in specs]
    return parallel_map(_run_row, tasks, jobs=jobs)


@dataclass(frozen=True)
class PanelTask:
    """One network's sweep panel, picklable for worker dispatch."""

    spec: NetworkSpec
    scale: str
    thresholds: Tuple
    seed: int
    cache_dir: Optional[str]


def run_spec_panels(panel_fn: Callable[[PanelTask], R],
                    specs: Sequence[NetworkSpec],
                    scale: str, thresholds: Sequence,
                    seed: int = 0, jobs: Optional[int] = 1,
                    cache_dir=None) -> Dict[str, R]:
    """Per-network panels keyed by spec label, optionally across
    processes.

    ``panel_fn`` must be a module-level callable taking a
    :class:`PanelTask`; figure modules supply the per-threshold sweep.
    """
    cache = str(cache_dir) if cache_dir is not None else None
    tasks = [PanelTask(spec, scale, tuple(thresholds), seed, cache)
             for spec in specs]
    panels = parallel_map(panel_fn, tasks, jobs=jobs)
    return {spec.label: panel for spec, panel in zip(specs, panels)}
