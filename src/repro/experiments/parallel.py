"""Process-parallel execution of independent experiment units.

Table I rows, figure panels and sweep grid points are independent of
each other, so they can run in separate processes.  Each worker rebuilds
its own :class:`~repro.experiments.runner.ExperimentContext`; pointing
every worker at the same ``cache_dir`` makes them share the
content-addressed artifact cache on disk, so a re-run (or a figure
riding on a Table I run) pays only for stages nobody computed yet.

A failing worker raises :class:`ParallelTaskError` in the parent, whose
message names the exact task (grid point, row) that crashed plus the
worker-side traceback — a pool of dozens of grid points would otherwise
surface only the bare exception with no hint of which point died.
"""

from __future__ import annotations

import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, \
    TypeVar

from repro.core.report import PowerPruningReport
from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.hw import DEFAULT_BACKEND_ID, HardwareBackend, get_backend

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["default_jobs", "parallel_map", "ParallelTaskError",
           "RowTask", "run_table1_rows"]


class ParallelTaskError(RuntimeError):
    """A parallel task failed; the message names the failing task."""


def default_jobs() -> int:
    """Worker count when ``--jobs 0`` asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def describe_task(item: Any) -> str:
    """Human-readable one-liner identifying a work item.

    Tasks that implement ``describe()`` (grid points, row tasks) name
    themselves; anything else falls back to a truncated ``repr``.
    """
    describe = getattr(item, "describe", None)
    if callable(describe):
        try:
            return str(describe())
        except Exception:
            pass
    text = repr(item)
    return text if len(text) <= 200 else text[:197] + "..."


def _shippable_exception(error: BaseException
                         ) -> Optional[BaseException]:
    """``error`` if it survives a pickle round-trip, else ``None``.

    Worker exceptions travel back to the parent inside the result
    payload; an unpicklable one (custom ``__init__`` signatures, open
    handles in args) must not crash the transport a second time.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return None


def _call_guarded(packed: Tuple[Callable[[T], R], int, T]
                  ) -> Tuple[bool, Any]:
    """Worker wrapper: ``(True, result)`` or ``(False, failure info)``."""
    fn, index, item = packed
    try:
        return True, fn(item)
    except Exception as error:
        return False, (index, describe_task(item),
                       traceback.format_exc(),
                       _shippable_exception(error))


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 jobs: Optional[int] = None,
                 on_result: Optional[Callable[[int, R], None]] = None
                 ) -> List[R]:
    """``[fn(item) for item in items]`` across processes, order kept.

    Args:
        fn: A module-level (picklable) callable.
        items: Picklable work items.
        jobs: Process count; ``None``/``0`` uses every core, ``1`` (or a
            single item) runs inline without spawning workers.
        on_result: Progress hook called as ``on_result(index, result)``
            each time a task *finishes* (completion order, which for
            pool runs is not submission order).  This is what lets the
            sweep engine stream a live done/cached/remaining report
            while a grid runs.

    Raises:
        ParallelTaskError: A task raised; the message names the task
            (``item.describe()`` when available) and, for pool runs,
            includes the worker-side traceback.  The original exception
            is chained as ``__cause__`` whenever it can be shipped
            across the process boundary.
    """
    items = list(items)
    if jobs is None or jobs == 0:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(items)))
    if jobs == 1 or len(items) <= 1:
        results: List[R] = []
        for index, item in enumerate(items):
            try:
                result = fn(item)
            except ParallelTaskError:
                raise
            except Exception as error:
                raise ParallelTaskError(
                    f"task {index}/{len(items)} failed: "
                    f"{describe_task(item)}") from error
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results
    outcomes: List[Optional[Tuple[bool, Any]]] = [None] * len(items)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(_call_guarded, (fn, index, item)): index
            for index, item in enumerate(items)
        }
        for future in as_completed(futures):
            index = futures[future]
            ok, payload = future.result()
            outcomes[index] = (ok, payload)
            if ok and on_result is not None:
                on_result(index, payload)
    # Failures surface after the pool drains, first submission first —
    # the same deterministic order the previous pool.map gave.
    for outcome in outcomes:
        ok, payload = outcome
        if not ok:
            index, described, worker_traceback, error = payload
            raise ParallelTaskError(
                f"task {index}/{len(items)} failed: {described}\n"
                f"--- worker traceback ---\n{worker_traceback}"
            ) from error
    return [payload for __, payload in outcomes]


def _backend_spec(backend) -> HardwareBackend:
    """Resolve an id-or-spec to a spec for shipping to workers.

    Tasks carry the full :class:`HardwareBackend` rather than its id:
    under a spawn start method workers re-import the registry with
    built-ins only, so a user-registered backend would be unknown
    there — the spec travels with the task and is re-registered on the
    worker side (see :func:`repro.hw.resolve_backend_id`).  Unknown
    ids fail here, in the parent, before any worker is spawned.
    """
    if isinstance(backend, HardwareBackend):
        return backend
    return get_backend(backend)


@dataclass(frozen=True)
class RowTask:
    """One Table I row's worth of work, picklable for worker dispatch."""

    spec: NetworkSpec
    scale: str = "ci"
    seed: int = 0
    cache_dir: Optional[str] = None
    verbose: bool = False
    backend: Optional[HardwareBackend] = None

    def describe(self) -> str:
        backend = (self.backend.backend_id if self.backend is not None
                   else DEFAULT_BACKEND_ID)
        return (f"table1 row {self.spec.label} "
                f"[scale={self.scale} seed={self.seed} "
                f"backend={backend}]")


def _run_row(task: RowTask) -> PowerPruningReport:
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(task.spec, task.scale, seed=task.seed,
                                verbose=task.verbose,
                                cache_dir=task.cache_dir,
                                backend=task.backend)
    return context.report()


def run_table1_rows(specs: Sequence[NetworkSpec] = NETWORK_SPECS,
                    scale: str = "ci", seed: int = 0,
                    jobs: Optional[int] = 1,
                    cache_dir=None,
                    verbose: bool = False,
                    backend=DEFAULT_BACKEND_ID
                    ) -> List[PowerPruningReport]:
    """Full-pipeline reports for ``specs``, optionally across processes.

    ``backend`` accepts a registry id or a ``HardwareBackend`` spec.
    """
    cache = str(cache_dir) if cache_dir is not None else None
    spec_backend = _backend_spec(backend)
    tasks = [RowTask(spec, scale, seed, cache, verbose, spec_backend)
             for spec in specs]
    return parallel_map(_run_row, tasks, jobs=jobs)
