"""Cross-backend comparison (beyond-paper experiment).

PowerPruning only consumes the measured per-weight power/timing
characteristics of a MAC implementation, so the whole flow can be
re-run against any backend in the :mod:`repro.hw` registry.  This
experiment runs the Table I flow for one network (LeNet-5 by default)
on several backends and reports power, delay and accuracy side by
side — how much of the paper's saving survives a different multiplier
or adder style, or a different process/voltage operating point.

This module is a thin adapter over the declarative sweep engine
(:mod:`repro.experiments.sweep`): the backend axis is just a sweep
grid.  Backend runs execute sequentially; ``jobs`` is spent *inside*
each run to shard the per-weight power and timing characterization
stages across processes (per-weight RNG seeding keeps the sharded
tables bit-for-bit identical to serial ones).  A shared ``cache_dir``
is safe across backends: the backend spec participates in every stage
key, so artifacts can never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.report import PowerPruningReport
from repro.experiments.config import NETWORK_SPECS, NetworkSpec
from repro.experiments.stats import AggregateRow, aggregate_cell
from repro.experiments.sweep import make_sweep_spec, run_sweep
from repro.hw import DEFAULT_BACKEND_ID, get_backend, list_backends


@dataclass
class BackendRow:
    """One backend's end-to-end outcome."""

    backend_id: str
    description: str
    mac_cells: int
    report: PowerPruningReport


@dataclass
class BackendComparison:
    """Per-backend reports for one network/dataset pair."""

    spec: NetworkSpec
    scale: str
    rows: List[BackendRow]
    #: Seed-aggregated statistics per backend; populated when the
    #: comparison ran over more than one seed.
    aggregates: Optional[List[AggregateRow]] = None

    def row(self, backend_id: str) -> BackendRow:
        for row in self.rows:
            if row.backend_id == backend_id:
                return row
        raise KeyError(f"no row for backend {backend_id!r}")


def run(scale: str = "ci",
        backend_ids: Optional[Sequence[str]] = None,
        spec: NetworkSpec = NETWORK_SPECS[0],
        seed: int = 0, jobs: Optional[int] = 1,
        cache_dir=None, verbose: bool = False,
        seeds: Optional[Sequence[int]] = None) -> BackendComparison:
    """Run the full pipeline on ``spec`` once per backend.

    Args:
        scale: Experiment scale (``smoke``/``ci``/``paper``).
        backend_ids: Backends to compare; all registered by default.
        spec: The network/dataset pair (paper's LeNet-5 by default).
        seed: Seed threaded through every stage.
        jobs: Processes for sharding each run's per-weight power and
            timing characterization (0 = all cores).
        cache_dir: Shared on-disk artifact cache; backend-keyed, so
            re-runs and other experiments reuse unchanged stages.
        verbose: Log stage execution.
        seeds: Several seeds per backend (overrides ``seed``); the
            comparison then carries mean±std aggregates per backend
            and the per-report rows use the first seed.
    """
    ids = list(backend_ids) if backend_ids else list_backends()
    backends = {backend_id: get_backend(backend_id)  # fail fast on typos
                for backend_id in ids}
    seed_axis = tuple(seeds) if seeds is not None else (seed,)
    sweep = make_sweep_spec("table1", backends=ids, networks=(spec,),
                            seeds=seed_axis, scale=scale)
    result = run_sweep(sweep, jobs=1, cache_dir=cache_dir,
                       char_jobs=1 if jobs is None else jobs,
                       verbose=verbose)
    first_seed = result.sweep.seeds[0]
    rows = [BackendRow(
        backend_id=row.backend_id,
        description=backends[row.backend_id].description,
        mac_cells=sum(backends[row.backend_id].build_mac()
                      .cell_counts().values()),
        report=row.payload,
    ) for row in result.rows_for(seed=first_seed)]
    aggregates = (result.aggregate()
                  if len(result.sweep.seeds) > 1 else None)
    return BackendComparison(spec=spec, scale=scale, rows=rows,
                             aggregates=aggregates)


def format_comparison(comparison: BackendComparison) -> str:
    """Side-by-side power/delay/accuracy table across backends."""
    lines = [
        f"network: {comparison.spec.label}  "
        f"(scale: {comparison.scale})",
        "",
        f"{'backend':<18} {'cells':>6} {'acc o->p':>12} "
        f"{'OptHW mW o->p':>15} {'red%':>6} {'delay red':>10} "
        f"{'Vdd':>9}",
    ]
    for row in comparison.rows:
        r = row.report
        lines.append(
            f"{row.backend_id:<18} {row.mac_cells:>6d} "
            f"{r.accuracy_orig * 100:5.1f}->{r.accuracy_prop * 100:5.1f} "
            f"{r.power_opt_orig.total_uw / 1000:6.1f}->"
            f"{r.power_opt_prop_vs.total_uw / 1000:6.1f}  "
            f"{r.reduction_opt:5.1f} "
            f"{r.max_delay_reduction_ps:7.0f} ps "
            f"{r.voltage_label:>9}"
        )
    if comparison.aggregates:
        lines.append("")
        lines.append(f"mean±std over seeds "
                     f"({comparison.aggregates[0].n_seeds} seed(s) "
                     f"per backend):")
        lines.append(f"{'backend':<18} {'n':>3} {'acc.prop[%]':>12} "
                     f"{'OptHW.prop[mW]':>15} {'red[%]':>12}")
        for agg in comparison.aggregates:
            cells = [aggregate_cell(agg, metric, fmt, scale)
                     for metric, fmt, scale in (
                         ("accuracy_prop", ".1f", 100.0),
                         ("power_opt_prop_vs_mw", ".1f", 1.0),
                         ("reduction_opt_pct", ".1f", 1.0))]
            lines.append(f"{agg.backend_id:<18} {agg.n_seeds:>3} "
                         f"{cells[0]:>12} {cells[1]:>15} "
                         f"{cells[2]:>12}")
    lines.append("")
    for row in comparison.rows:
        lines.append(f"{row.backend_id}: {row.description}")
    return "\n".join(lines)


def main(scale: str = "ci", jobs: Optional[int] = 1,
         cache_dir=None,
         backend: Optional[str] = None,
         seeds: Optional[Sequence[int]] = None) -> BackendComparison:
    """CLI entry point.

    Without ``backend``, all registered backends are compared; with
    one, the comparison is the default backend versus that one.
    """
    ids: Optional[List[str]] = None
    if backend is not None and backend != DEFAULT_BACKEND_ID:
        ids = [DEFAULT_BACKEND_ID, backend]
    elif backend is not None:
        ids = [DEFAULT_BACKEND_ID]
    comparison = run(scale, backend_ids=ids, jobs=jobs,
                     cache_dir=cache_dir, seeds=seeds)
    print("=== Cross-backend comparison (Table I flow per backend) ===")
    print(format_comparison(comparison))
    return comparison


if __name__ == "__main__":
    main()
