"""Conventional magnitude pruning (the flow's first step).

The paper first maximizes the number of zero weights with standard
magnitude pruning [3]: zero weights are free on the Optimized HW (clock
gating) and cheapest on Standard HW, and they are always in the selected
set.
"""

from __future__ import annotations

from typing import Dict

from repro.nn.layers import Module


def magnitude_prune(model: Module, fraction: float,
                    skip_last: bool = True) -> Dict[str, float]:
    """Prune the smallest-magnitude weights of every conv/dense layer.

    Args:
        model: Network to prune in place (masks are installed so
            retraining keeps the zeros).
        fraction: Per-layer fraction of weights to remove.
        skip_last: Leave the final classifier layer dense (standard
            practice; the output layer is small and sensitive).

    Returns:
        Per-layer achieved sparsity, keyed by ``ClassName#index``.
    """
    layers = model.quantized_layers()
    if not layers:
        raise ValueError("model has no prunable layers")
    sparsities: Dict[str, float] = {}
    last = len(layers) - 1
    for index, layer in enumerate(layers):
        if skip_last and index == last:
            continue
        sparsity = layer.prune_smallest(fraction)
        sparsities[f"{type(layer).__name__}#{index}"] = sparsity
    return sparsities
