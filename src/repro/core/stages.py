"""The PowerPruning flow as an explicit stage graph.

Each :class:`Stage` declares the configuration fields it reads and the
upstream stages it consumes; :class:`StageGraph` derives from those a
content-addressed key per stage (see :mod:`repro.core.artifacts`), and
:class:`StageRunner` executes stages on demand through an
:class:`~repro.core.artifacts.ArtifactStore` so every unchanged prefix
of the graph is reused instantly — across pipeline runs, threshold
sweeps, figure experiments and worker processes.

The graph (paper Sec. III-C)::

    dataset ──► baseline ──► pruned ──► power_selection ─► timing_table
       │           │            │             │                 │
       │           └─► operand_stats ─► power_table ────────────┤
       │                                      │                 ▼
       │                                      │          delay_selection
       │                                      │                 │
       │                                      │         voltage_scaling
       └──────────────────────────────────────┴────────┬────────┘
                                                       ▼
                                             power_measurement ─► report

plus the accelerator-evaluation branch (keyed on the
:class:`~repro.systolic.spec.AcceleratorSpec` design point only, so a
design-space sweep shares the whole training/characterization prefix)::

    dataset ─┬─► accel_schedule ──► accel_eval
    pruned ──┘      (geometry)   (power_table, voltage_scaling, variant)

Stage outputs are plain picklable values; stages that conceptually
produce "the model" return its ``state_dict`` plus the active
weight/activation restriction, and downstream stages rebuild the live
module from that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.artifacts import ArtifactStore, hash_key
from repro.core.delay_selection import delay_threshold_search
from repro.core.power_selection import power_threshold_search
from repro.core.pruning import magnitude_prune
from repro.core.report import PowerPruningReport
from repro.core.voltage_scaling import scale_voltage
from repro.core.workloads import extract_workloads, largest_conv_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import PipelineConfig

__all__ = [
    "Stage",
    "StageGraph",
    "StageRunner",
    "PipelineOps",
    "backend_key_payload",
    "shared_stage_keys",
    "build_power_pruning_graph",
    "POWER_PRUNING_STAGES",
]


# ----------------------------------------------------------------------
# generic machinery
# ----------------------------------------------------------------------
StageFn = Callable[["PipelineOps", Dict[str, Any]], Any]


def backend_key_payload(config: "PipelineConfig") -> Dict[str, Any]:
    """The hardware-backend contribution to a stage cache key.

    Hashes the backend's full resolved spec (id plus every parameter),
    so re-registering an id with different hardware also invalidates
    the old artifacts.
    """
    from repro.hw import DEFAULT_BACKEND_ID, get_backend

    backend_id = getattr(config, "backend", DEFAULT_BACKEND_ID)
    return get_backend(backend_id).key_payload()


def shared_stage_keys(config: "PipelineConfig",
                      names: Optional[Sequence[str]] = None
                      ) -> Dict[str, str]:
    """Cache keys of the named pipeline stages under ``config``.

    This is the sweep engine's dedup primitive: two grid points whose
    configs produce the same key for a stage will share that stage's
    artifact in a common store, so a sweep can count (and a test can
    assert) exactly which prefixes of the graph are computed once per
    backend rather than once per grid point.  Defaults to every stage.
    """
    from repro.core.pipeline import POWER_PRUNING_GRAPH

    memo: Dict[str, str] = {}
    if names is None:
        names = POWER_PRUNING_GRAPH.names()
    return {name: POWER_PRUNING_GRAPH.key(name, config, memo)
            for name in names}


@dataclass(frozen=True)
class Stage:
    """One typed node of the pipeline graph.

    Attributes:
        name: Unique stage name.
        fn: ``fn(ops, inputs)`` computing the output; ``inputs`` maps
            each dependency name to its artifact.
        deps: Upstream stage names.
        fields: Configuration fields whose values feed the stage key —
            change one and this stage (plus everything downstream)
            recomputes while the rest of the graph stays cached.
        version: Bump to invalidate cached outputs after a code change.
        persist: ``False`` keeps the output in the memory layer only —
            for artifacts that are large but cheap to regenerate.
    """

    name: str
    fn: StageFn
    deps: Tuple[str, ...] = ()
    fields: Tuple[str, ...] = ()
    version: str = "1"
    persist: bool = True


class StageGraph:
    """A registry of stages with content-addressed keying.

    Stages must be added dependencies-first, which also guarantees the
    graph is acyclic.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, Stage] = {}

    def add(self, stage: Stage) -> Stage:
        if stage.name in self._stages:
            raise ValueError(f"duplicate stage {stage.name!r}")
        missing = [d for d in stage.deps if d not in self._stages]
        if missing:
            raise ValueError(
                f"stage {stage.name!r} depends on unknown stages "
                f"{missing}; add dependencies first")
        self._stages[stage.name] = stage
        return stage

    def __getitem__(self, name: str) -> Stage:
        return self._stages[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages.values())

    def names(self) -> List[str]:
        """Stage names in (topological) insertion order."""
        return list(self._stages)

    def key(self, name: str, config: "PipelineConfig",
            _memo: Optional[Dict[str, str]] = None) -> str:
        """Content-addressed artifact key of ``name`` under ``config``.

        The hardware backend's full spec participates in *every* stage
        key unconditionally — not just in stages that read hardware —
        so artifacts produced under different backends can never
        collide in a shared store, by construction.  The deliberate
        cost is that hardware-independent prefixes (dataset, baseline
        training) are not shared across backends: correctness of a
        shared cache is guaranteed by key derivation alone, with no
        per-stage judgement calls about what "reads hardware" to drift
        out of date as stages evolve.
        """
        memo = _memo if _memo is not None else {}
        if name in memo:
            return memo[name]
        stage = self._stages[name]
        payload = {
            "stage": stage.name,
            "version": stage.version,
            "backend": backend_key_payload(config),
            "config": {f: getattr(config, f) for f in stage.fields},
            "deps": {d: self.key(d, config, memo) for d in stage.deps},
        }
        memo[name] = hash_key(payload)
        return memo[name]

    def keys(self, config: "PipelineConfig") -> Dict[str, str]:
        """All stage keys under ``config`` (shared memo, one pass)."""
        memo: Dict[str, str] = {}
        for name in self._stages:
            self.key(name, config, memo)
        return memo


class StageRunner:
    """Executes a stage graph through an artifact store.

    Args:
        graph: The stage graph.
        ops: Backend the stage functions run against (holds the config
            and the hardware models).
        store: Artifact store; a fresh memory-only store by default.
    """

    def __init__(self, graph: StageGraph, ops: "PipelineOps",
                 store: Optional[ArtifactStore] = None) -> None:
        self.graph = graph
        self.ops = ops
        self.store = store if store is not None else ArtifactStore()

    @property
    def config(self) -> "PipelineConfig":
        return self.ops.config

    def key(self, name: str) -> str:
        return self.graph.key(name, self.ops.config)

    def get(self, name: str) -> Any:
        """The artifact of ``name``, computing missing prefixes."""
        stage = self.graph[name]

        def compute() -> Any:
            inputs = {dep: self.get(dep) for dep in stage.deps}
            self.ops.log(f"stage {name}: computing")
            return stage.fn(self.ops, inputs)

        return self.store.get_or_compute(self.key(name), compute,
                                         persist=stage.persist)


# ----------------------------------------------------------------------
# the PowerPruning backend
# ----------------------------------------------------------------------
class PipelineOps:
    """Stateless-ish backend the stage functions run against.

    Owns the configuration plus the shared hardware models (cell
    library, MAC netlist, systolic/voltage models), all resolved from
    the config's hardware backend (see :mod:`repro.hw`) unless passed
    explicitly, and provides the operations stages compose.  All
    randomness is seeded from the config, so every operation is a pure
    function of its arguments.
    """

    def __init__(self, config: "PipelineConfig", library=None, mac=None,
                 systolic_config=None, voltage_model=None) -> None:
        from repro.hw import DEFAULT_BACKEND_ID, get_backend
        from repro.sim.compiled import set_process_kernel

        self.config = config
        # Install the configured word kernel as the process default
        # (bit-for-bit neutral, never in cache keys; "auto" resets to
        # detection and REPRO_SIM_KERNEL still overrides).  Forked
        # workers inherit the choice with the module state.
        set_process_kernel(getattr(config, "sim_kernel", "auto"))
        backend = get_backend(
            getattr(config, "backend", DEFAULT_BACKEND_ID))
        self.backend = backend
        self.library = (library if library is not None
                        else backend.build_library())
        self.mac = mac if mac is not None else backend.build_mac()
        self.systolic_config = (systolic_config if systolic_config
                                is not None
                                else backend.build_systolic_config())
        self.voltage_model = (voltage_model if voltage_model is not None
                              else backend.build_voltage_model())

    def log(self, message: str) -> None:
        if self.config.verbose:
            print(f"[powerpruner] {message}")

    # -- dataset / model ----------------------------------------------
    def build_dataset(self):
        from repro.data import load_dataset

        config = self.config
        kwargs = {"n_train": config.n_train, "n_test": config.n_test}
        if config.dataset in ("cifar100", "imagenet"):
            kwargs["num_classes"] = config.num_classes
        return load_dataset(config.dataset, **kwargs)

    def build_model(self):
        from repro.models import build_model
        from repro.nn.layers import seed_init

        config = self.config
        seed_init(config.seed)  # bitwise-reproducible initialization
        return build_model(config.network, num_classes=config.num_classes,
                           width_mult=config.width_mult,
                           depth_mult=config.depth_mult)

    def model_from_state(self, state: dict,
                         weight_restriction=None,
                         activation_filter=None):
        """Rebuild a live module from a stage's model record."""
        from repro.nn.restrict import ActivationFilter, WeightRestriction

        model = self.build_model()
        model.load_state_dict(state)
        if weight_restriction is not None:
            model.set_weight_restriction(
                WeightRestriction(weight_restriction))
        if activation_filter is not None:
            model.set_activation_filter(
                ActivationFilter(activation_filter))
        return model

    # -- training ------------------------------------------------------
    def trainer(self, model, epochs: int):
        from repro.nn import Trainer, TrainingConfig

        config = self.config
        decay = tuple(e for e in config.lr_decay_epochs if e < epochs)
        return Trainer(model, TrainingConfig(
            epochs=epochs, batch_size=config.batch_size, lr=config.lr,
            lr_decay_epochs=decay, seed=config.seed, verbose=False))

    def retrain_fn(self, dataset):
        def retrain(model) -> float:
            trainer = self.trainer(model, self.config.retrain_epochs)
            trainer.fit(dataset.x_train, dataset.y_train)
            return trainer.evaluate(dataset.x_test, dataset.y_test)

        return retrain

    # -- characterization ---------------------------------------------
    def collect_statistics(self, model, dataset):
        """Fig. 4 transition statistics from the hottest layers."""
        from repro.systolic import SystolicArray, TransitionStatsCollector

        sample = dataset.x_test[:self.config.stats_batch]
        workloads = extract_workloads(model, sample, self.systolic_config)
        stats = TransitionStatsCollector(
            act_bits=self.systolic_config.act_bits,
            psum_bits=self.systolic_config.psum_bits,
            seed=self.config.seed,
        )
        array = SystolicArray(self.systolic_config)
        hottest = largest_conv_workloads(workloads,
                                         top=self.config.stats_layers)
        for workload in hottest:
            if workload.activations is None:
                continue
            array.run_layer(workload.weights, workload.activations,
                            stats=stats)
        return stats

    def characterize_power(self, stats):
        """Per-weight power table from measured operand statistics.

        ``config.char_jobs`` shards the per-weight simulations across
        processes and ``config.char_batch_weights`` batches each
        shard's weights into one-launch megabatch evaluations; both are
        bit-for-bit identical to the serial per-weight loop, which is
        why neither takes part in the stage cache key.
        """
        from repro.power import WeightPowerCharacterizer

        act_dist = stats.activation_distribution()
        binned = stats.binned_psum_transitions(n_bins=50,
                                               seed=self.config.seed)
        characterizer = WeightPowerCharacterizer(
            self.mac, self.library, act_dist, binned,
            clock_period_ps=self.systolic_config.clock_period_ps,
            n_samples=self.config.char_samples,
            calibrate_to_uw=self.backend.power_anchor_uw,
        )
        return characterizer.characterize(
            self.config.char_weights(), seed=self.config.seed,
            jobs=getattr(self.config, "char_jobs", 1),
            batch_weights=getattr(self.config, "char_batch_weights", 0))

    def characterize_timing(self, candidate_weights: Sequence[int]):
        """Per-weight timing table for the power-selected candidates.

        ``config.char_jobs`` shards the per-weight dynamic timing
        analyses across processes and ``config.char_batch_weights``
        concatenates each shard's weights into flat one-launch DTA
        streams; each weight subsamples its transitions from its own
        ``(seed, weight)``-keyed RNG, so both knobs are bit-for-bit
        neutral and take no part in the stage cache key.
        """
        from repro.timing import WeightDelayProfiler, WeightTimingTable

        profiler = WeightDelayProfiler(self.mac, self.library)
        return WeightTimingTable.characterize(
            profiler, weights=candidate_weights,
            n_transitions=self.config.timing_transitions,
            seed=self.config.seed,
            floor_ps=self.config.timing_floor_ps,
            calibrate_to_ps=self.backend.delay_anchor_ps,
            jobs=getattr(self.config, "char_jobs", 1),
            batch_weights=getattr(self.config, "char_batch_weights", 0),
        )

    def recharacterize_filtered(self, allowed_activations, stats,
                                base_table):
        """Power table refined under the activation filter (extension).

        Once activation selection removes values, transitions into or
        out of removed codes can no longer occur, lowering the
        effective switching activity.  The refined table keeps the base
        table's calibration so the numbers stay comparable.
        """
        from repro.power import WeightPowerCharacterizer
        from repro.power.characterization import WeightPowerTable
        from repro.power.transitions import value_to_code

        act_dist = stats.activation_distribution()
        binned = stats.binned_psum_transitions(n_bins=50,
                                               seed=self.config.seed)
        codes = value_to_code(np.asarray(allowed_activations),
                              self.systolic_config.act_bits)
        restricted = act_dist.restricted(codes)
        characterizer = WeightPowerCharacterizer(
            self.mac, self.library, restricted, binned,
            clock_period_ps=self.systolic_config.clock_period_ps,
            n_samples=self.config.char_samples,
            calibrate_to_uw=None,
        )
        table = characterizer.characterize(
            self.config.char_weights(), seed=self.config.seed,
            jobs=getattr(self.config, "char_jobs", 1),
            batch_weights=getattr(self.config, "char_batch_weights", 0))
        return WeightPowerTable(
            weights=table.weights,
            power_uw=table.dynamic_uw * base_table.energy_scale
            + table.leakage_uw,
            dynamic_uw=table.dynamic_uw * base_table.energy_scale,
            leakage_uw=table.leakage_uw,
            clock_period_ps=table.clock_period_ps,
            energy_scale=base_table.energy_scale,
        )

    # -- accelerator evaluation ---------------------------------------
    def accel_design(self):
        """``(spec, config)`` of the configured accelerator point.

        The spec's ``None`` geometry resolves against the backend's own
        systolic configuration, mirroring how the stage-key payloads
        (:attr:`PipelineConfig.accel_geometry` / ``accel_point``)
        resolve it.
        """
        from repro.systolic.spec import AcceleratorSpec

        spec = getattr(self.config, "accel", None)
        if spec is None:
            spec = AcceleratorSpec()
        return spec, spec.resolve_config(self.systolic_config)

    # -- measurement ---------------------------------------------------
    def measure_power(self, model, dataset, table, vdd=None):
        """(Standard HW, Optimized HW) average power of the network."""
        from repro.systolic import (
            OPTIMIZED_HW,
            STANDARD_HW,
            ArrayPowerModel,
            MacPowerParams,
        )

        sample = dataset.x_test[:2]
        workloads = extract_workloads(model, sample, self.systolic_config,
                                      capture_activations=False)
        power_model = ArrayPowerModel(
            self.systolic_config,
            MacPowerParams(table=table,
                           clock_power_uw=self.config.clock_power_uw),
            voltage_model=self.voltage_model,
        )
        layers = [(w.schedule, w.weights) for w in workloads]
        return (power_model.network_power(layers, STANDARD_HW, vdd=vdd),
                power_model.network_power(layers, OPTIMIZED_HW, vdd=vdd))


# ----------------------------------------------------------------------
# stage implementations
# ----------------------------------------------------------------------
def _stage_dataset(ops: PipelineOps, inputs: Dict[str, Any]):
    return ops.build_dataset()


def _stage_baseline(ops: PipelineOps, inputs: Dict[str, Any]):
    dataset = inputs["dataset"]
    model = ops.build_model()
    trainer = ops.trainer(model, ops.config.baseline_epochs)
    trainer.fit(dataset.x_train, dataset.y_train)
    accuracy = trainer.evaluate(dataset.x_test, dataset.y_test)
    ops.log(f"baseline accuracy {accuracy:.3f}")
    return {"state": model.state_dict(), "accuracy": accuracy}


def _stage_pruned(ops: PipelineOps, inputs: Dict[str, Any]):
    model = ops.model_from_state(inputs["baseline"]["state"])
    sparsities = magnitude_prune(model, ops.config.prune_fraction)
    accuracy = ops.retrain_fn(inputs["dataset"])(model)
    ops.log(f"pruned accuracy {accuracy:.3f}")
    return {"state": model.state_dict(), "accuracy": accuracy,
            "sparsities": sparsities}


def _stage_operand_stats(ops: PipelineOps, inputs: Dict[str, Any]):
    model = ops.model_from_state(inputs["baseline"]["state"])
    return ops.collect_statistics(model, inputs["dataset"])


def _stage_power_table(ops: PipelineOps, inputs: Dict[str, Any]):
    return ops.characterize_power(inputs["operand_stats"])


def _stage_power_selection(ops: PipelineOps, inputs: Dict[str, Any]):
    config = ops.config
    pruned = inputs["pruned"]
    model = ops.model_from_state(pruned["state"])
    outcome = power_threshold_search(
        model, inputs["power_table"],
        ops.retrain_fn(inputs["dataset"]),
        baseline_accuracy=pruned["accuracy"],
        thresholds=config.power_thresholds_uw,
        max_drop=config.power_max_drop,
    )
    ops.log(f"power threshold {outcome.threshold_uw} -> "
            f"{outcome.n_weights} weights, accuracy "
            f"{outcome.accuracy:.3f}")
    restriction = (outcome.allowed_weights
                   if outcome.threshold_uw is not None else None)
    return {"outcome": outcome, "state": model.state_dict(),
            "restriction": restriction}


def _stage_timing_table(ops: PipelineOps, inputs: Dict[str, Any]):
    outcome = inputs["power_selection"]["outcome"]
    return ops.characterize_timing(outcome.allowed_weights)


def _stage_delay_selection(ops: PipelineOps, inputs: Dict[str, Any]):
    config = ops.config
    selected = inputs["power_selection"]
    model = ops.model_from_state(
        selected["state"], weight_restriction=selected["restriction"])
    outcome = delay_threshold_search(
        model, inputs["timing_table"],
        candidate_weights=selected["outcome"].allowed_weights,
        retrain=ops.retrain_fn(inputs["dataset"]),
        original_accuracy=inputs["baseline"]["accuracy"],
        thresholds=config.delay_thresholds_ps,
        max_drop_fraction=config.delay_max_drop_fraction,
        n_restarts=config.n_restarts, seed=config.seed,
    )
    ops.log(f"delay threshold {outcome.threshold_ps} -> "
            f"accuracy {outcome.accuracy:.3f}")
    if outcome.selection is not None:
        weights = outcome.selection.weights
        activations = outcome.selection.activations
    else:
        # No threshold passed: the network keeps the power-selection
        # restriction and stays unfiltered.
        weights = selected["restriction"]
        activations = None
    return {"outcome": outcome, "state": model.state_dict(),
            "weights": weights, "activations": activations}


def _stage_voltage_scaling(ops: PipelineOps, inputs: Dict[str, Any]):
    outcome = inputs["delay_selection"]["outcome"]
    # The paper reads the achieved max delay at its 10 ps search
    # granularity, i.e. the accepted threshold, not the exact
    # surviving-combo maximum.
    achieved = (outcome.threshold_ps if outcome.threshold_ps is not None
                else outcome.max_delay_ps)
    return scale_voltage(achieved, ops.systolic_config.clock_period_ps,
                         ops.voltage_model)


def _stage_power_measurement(ops: PipelineOps, inputs: Dict[str, Any]):
    config = ops.config
    dataset = inputs["dataset"]
    table = inputs["power_table"]
    scaling = inputs["voltage_scaling"]
    selected = inputs["delay_selection"]

    baseline_model = ops.model_from_state(inputs["baseline"]["state"])
    std_orig, opt_orig = ops.measure_power(baseline_model, dataset, table)

    pruned_model = ops.model_from_state(inputs["pruned"]["state"])
    std_pruned, opt_pruned = ops.measure_power(pruned_model, dataset,
                                               table)

    final_model = ops.model_from_state(
        selected["state"],
        weight_restriction=selected["weights"],
        activation_filter=selected["activations"],
    )
    final_table = table
    filtered_table = None
    if (config.refine_power_with_filtered_activations
            and selected["outcome"].selection is not None):
        filtered_table = ops.recharacterize_filtered(
            selected["activations"], inputs["operand_stats"], table)
        final_table = filtered_table
    std_prop, opt_prop = ops.measure_power(final_model, dataset,
                                           final_table)
    std_vs, opt_vs = ops.measure_power(final_model, dataset, final_table,
                                       vdd=scaling.vdd)
    return {
        "std_orig": std_orig, "opt_orig": opt_orig,
        "std_pruned": std_pruned, "opt_pruned": opt_pruned,
        "std_prop": std_prop, "opt_prop": opt_prop,
        "std_prop_vs": std_vs, "opt_prop_vs": opt_vs,
        "filtered_table": filtered_table,
    }


def _stage_report(ops: PipelineOps, inputs: Dict[str, Any]):
    config = ops.config
    power = inputs["power_measurement"]
    power_outcome = inputs["power_selection"]["outcome"]
    delay_outcome = inputs["delay_selection"]["outcome"]
    scaling = inputs["voltage_scaling"]

    if delay_outcome.selection is not None:
        n_weights = delay_outcome.selection.n_weights
        n_acts = delay_outcome.selection.n_activations
    else:
        n_weights = power_outcome.n_weights
        n_acts = 1 << ops.systolic_config.act_bits

    return PowerPruningReport(
        network=config.network,
        dataset=config.dataset,
        accuracy_orig=inputs["baseline"]["accuracy"],
        accuracy_prop=delay_outcome.accuracy,
        power_std_orig=power["std_orig"],
        power_std_prop=power["std_prop"],
        power_std_prop_vs=power["std_prop_vs"],
        power_opt_orig=power["opt_orig"],
        power_opt_prop=power["opt_prop"],
        power_opt_prop_vs=power["opt_prop_vs"],
        n_selected_weights=n_weights,
        n_selected_activations=n_acts,
        max_delay_reduction_ps=scaling.delay_reduction_ps,
        voltage_label=scaling.scaling_factor_label,
        power_threshold_uw=power_outcome.threshold_uw,
        delay_threshold_ps=delay_outcome.threshold_ps,
        extras={"pruned": {
            "accuracy": inputs["pruned"]["accuracy"],
            "power_std": power["std_pruned"],
            "power_opt": power["opt_pruned"],
        }},
    )


def _stage_accel_schedule(ops: PipelineOps, inputs: Dict[str, Any]):
    """Pruned model lowered onto the configured array geometry.

    Keyed on the spec's geometry/mapping payload only — Standard and
    Optimized HW share one schedule, so sweeping the variant axis reuses
    this artifact.
    """
    from repro.systolic.mapping import schedule_matmul

    spec, config = ops.accel_design()
    model = ops.model_from_state(inputs["pruned"]["state"])
    sample = inputs["dataset"].x_test[:2]
    workloads = extract_workloads(model, sample, config,
                                  capture_activations=False)
    layers = []
    for workload in workloads:
        schedule = workload.schedule
        if spec.stream_batch != 1:
            # Stream `stream_batch` inferences through each stationary
            # tile load; per-inference metrics divide back out later.
            schedule = schedule_matmul(
                schedule.k, schedule.n,
                schedule.m * spec.stream_batch, config)
        layers.append({"name": workload.name,
                       "weights": workload.weights,
                       "schedule": schedule})
    return {"rows": config.rows, "cols": config.cols,
            "inferences": spec.stream_batch, "layers": layers}


def _stage_accel_eval(ops: PipelineOps, inputs: Dict[str, Any]):
    """Array-level utilization/power/energy/latency of the design point.

    Applies the hardware variant's gating semantics to the cached tile
    schedules via :class:`~repro.systolic.energy.ArrayPowerModel`, at
    nominal supply and at the ``voltage_scaling`` operating point.
    Per-layer rows plus a network-level summary; ``latency_us`` /
    ``energy_uj`` are per inference (``stream_batch`` divides out).
    """
    from repro.systolic import ArrayPowerModel, MacPowerParams

    spec, config = ops.accel_design()
    variant = spec.hardware_variant()
    scaling = inputs["voltage_scaling"]
    schedule_out = inputs["accel_schedule"]
    inferences = schedule_out["inferences"]
    model = ArrayPowerModel(
        config,
        MacPowerParams(table=inputs["power_table"],
                       clock_power_uw=ops.config.clock_power_uw),
        voltage_model=ops.voltage_model,
    )
    period_s = config.clock_period_ps * 1e-12

    layer_rows = []
    pairs = []
    for layer in schedule_out["layers"]:
        schedule, weights = layer["schedule"], layer["weights"]
        power = model.layer_power(schedule, weights, variant)
        power_vs = model.layer_power(schedule, weights, variant,
                                     vdd=scaling.vdd)
        cycles = schedule.total_cycles
        time_s = cycles * period_s
        layer_rows.append({
            "layer": layer["name"],
            "k": schedule.k, "n": schedule.n, "m": schedule.m,
            "tiles": len(schedule), "cycles": cycles,
            "macs": schedule.total_macs,
            "utilization": schedule.utilization,
            "power": power, "power_vs": power_vs,
            "latency_us": time_s / inferences * 1e6,
            "energy_uj": power.total_uw * time_s / inferences,
            "energy_vs_uj": power_vs.total_uw * time_s / inferences,
        })
        pairs.append((schedule, weights))

    power = model.network_power(pairs, variant)
    power_vs = model.network_power(pairs, variant, vdd=scaling.vdd)
    total_cycles = sum(schedule.total_cycles for schedule, _ in pairs)
    total_macs = sum(schedule.total_macs for schedule, _ in pairs)
    time_s = total_cycles * period_s
    network = {
        "rows": config.rows, "cols": config.cols,
        "variant": spec.variant, "stream_batch": spec.stream_batch,
        "vdd": scaling.vdd,
        "total_cycles": total_cycles, "total_macs": total_macs,
        "utilization": total_macs / (total_cycles * config.n_pes),
        "power": power, "power_vs": power_vs,
        "latency_us": time_s / inferences * 1e6,
        "energy_uj": power.total_uw * time_s / inferences,
        "energy_vs_uj": power_vs.total_uw * time_s / inferences,
    }
    ops.log(f"accel {config.rows}x{config.cols}/{spec.variant}: "
            f"util {network['utilization']:.3f}, "
            f"{network['energy_uj']:.3f} uJ/inference")
    return {"layers": layer_rows, "network": network}


#: Stage names in execution (topological) order.
POWER_PRUNING_STAGES: Tuple[str, ...] = (
    "dataset",
    "baseline",
    "pruned",
    "operand_stats",
    "power_table",
    "power_selection",
    "timing_table",
    "delay_selection",
    "voltage_scaling",
    "power_measurement",
    "report",
    "accel_schedule",
    "accel_eval",
)

#: Training fields shared by every stage that retrains the network.
_RETRAIN_FIELDS = ("retrain_epochs", "batch_size", "lr",
                   "lr_decay_epochs", "seed")


def build_power_pruning_graph() -> StageGraph:
    """The full PowerPruning flow as a typed stage graph."""
    graph = StageGraph()
    graph.add(Stage(
        "dataset", _stage_dataset,
        fields=("dataset", "num_classes", "n_train", "n_test"),
        # Synthetic data is seed-deterministic and cheap to regenerate;
        # pickling paper-scale arrays to disk would dwarf every other
        # artifact for zero saved work.
        persist=False,
    ))
    graph.add(Stage(
        "baseline", _stage_baseline, deps=("dataset",),
        fields=("network", "num_classes", "width_mult", "depth_mult",
                "baseline_epochs", "batch_size", "lr",
                "lr_decay_epochs", "seed"),
    ))
    graph.add(Stage(
        "pruned", _stage_pruned, deps=("dataset", "baseline"),
        fields=("prune_fraction",) + _RETRAIN_FIELDS,
    ))
    graph.add(Stage(
        "operand_stats", _stage_operand_stats,
        deps=("dataset", "baseline"),
        fields=("stats_batch", "stats_layers", "seed"),
    ))
    graph.add(Stage(
        "power_table", _stage_power_table, deps=("operand_stats",),
        fields=("char_weight_step", "char_samples", "seed"),
        # v2: per-weight child RNG seeding (order/shard independent).
        version="2",
    ))
    graph.add(Stage(
        "power_selection", _stage_power_selection,
        deps=("dataset", "pruned", "power_table"),
        fields=("power_thresholds_uw", "power_max_drop")
        + _RETRAIN_FIELDS,
    ))
    graph.add(Stage(
        "timing_table", _stage_timing_table, deps=("power_selection",),
        fields=("timing_transitions", "timing_floor_ps", "seed"),
        # v2: per-weight child RNG transition subsampling
        # (order/shard independent).
        version="2",
    ))
    graph.add(Stage(
        "delay_selection", _stage_delay_selection,
        deps=("dataset", "baseline", "power_selection", "timing_table"),
        fields=("delay_thresholds_ps", "delay_max_drop_fraction",
                "n_restarts") + _RETRAIN_FIELDS,
    ))
    graph.add(Stage(
        "voltage_scaling", _stage_voltage_scaling,
        deps=("delay_selection",),
    ))
    graph.add(Stage(
        "power_measurement", _stage_power_measurement,
        deps=("dataset", "baseline", "pruned", "operand_stats",
              "power_table", "delay_selection", "voltage_scaling"),
        fields=("clock_power_uw",
                "refine_power_with_filtered_activations",
                "char_weight_step", "char_samples", "seed"),
    ))
    graph.add(Stage(
        "report", _stage_report,
        deps=("baseline", "pruned", "power_selection", "delay_selection",
              "voltage_scaling", "power_measurement"),
        fields=("network", "dataset"),
    ))
    # Accelerator-evaluation branch.  `accel_geometry`/`accel_point`
    # are the resolved AcceleratorSpec payloads — the ONLY place the
    # design point enters any key, so geometry sweeps share the whole
    # training/characterization prefix (power_table keys identical
    # across array shapes, by construction).
    graph.add(Stage(
        "accel_schedule", _stage_accel_schedule,
        deps=("dataset", "pruned"),
        fields=("accel_geometry",),
    ))
    graph.add(Stage(
        "accel_eval", _stage_accel_eval,
        deps=("accel_schedule", "power_table", "voltage_scaling"),
        fields=("accel_point", "clock_power_uw"),
    ))
    return graph
