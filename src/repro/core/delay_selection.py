"""Iterative delay-threshold weight/activation selection with retraining.

Sec. III-B + III-C: starting at 170 ps the delay threshold is lowered in
10 ps steps.  Each step runs the randomized removal (20 restarts), then
retrains under the surviving weight *and* activation sets; the search
stops when accuracy drops by about 5% of the original accuracy, and the
best passing configuration is returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.nn.layers import Module
from repro.nn.restrict import ActivationFilter, WeightRestriction
from repro.timing.profile import WeightTimingTable
from repro.timing.selection import DelaySelector, SelectionResult

#: The paper's schedule: 170 ps down to 140 ps in 10 ps steps.
DEFAULT_THRESHOLDS_PS = (170.0, 160.0, 150.0, 140.0)

RetrainFn = Callable[[Module], float]


@dataclass
class DelaySelectionOutcome:
    """Result of the delay-threshold search.

    Attributes:
        threshold_ps: Accepted threshold (``None`` if none passed).
        selection: Surviving weight/activation sets at that threshold.
        accuracy: Accuracy after retraining there.
        max_delay_ps: Sensitized delay of the surviving configuration.
        history: ``(threshold, n_weights, n_acts, accuracy)`` per step.
    """

    threshold_ps: Optional[float]
    selection: Optional[SelectionResult]
    accuracy: float
    max_delay_ps: float
    history: List[Tuple[float, int, int, float]] = field(
        default_factory=list)


def delay_threshold_search(model: Module, table: WeightTimingTable,
                           candidate_weights: Sequence[int],
                           retrain: RetrainFn, original_accuracy: float,
                           thresholds: Sequence[float] =
                           DEFAULT_THRESHOLDS_PS,
                           max_drop_fraction: float = 0.05,
                           n_restarts: int = 20,
                           seed: int = 2023) -> DelaySelectionOutcome:
    """Lower the delay threshold while accuracy holds.

    Args:
        model: Power-selected, retrained network (modified in place; on
            return it carries the accepted weight restriction and
            activation filter).
        table: Timing characterization of the candidate weights.
        candidate_weights: Weight values that survived power selection.
        retrain: Retrains the model in place, returns test accuracy.
        original_accuracy: The network's original accuracy; the paper
            stops when the drop reaches ~5% of it.
        thresholds: Descending thresholds in ps.
        max_drop_fraction: Relative accuracy-drop budget.
        n_restarts: Randomized removal restarts per threshold.
        seed: RNG seed for the removal.
    """
    thresholds = sorted(thresholds, reverse=True)
    floor_accuracy = original_accuracy * (1.0 - max_drop_fraction)
    selector = DelaySelector(table, n_restarts=n_restarts)
    history: List[Tuple[float, int, int, float]] = []
    accepted = None

    start_state = model.state_dict()
    for threshold in thresholds:
        selection = selector.select(threshold,
                                    candidate_weights=candidate_weights,
                                    seed=seed)
        if selection.n_weights < 2:
            break  # removal left nothing trainable
        model.load_state_dict(start_state)
        model.set_weight_restriction(
            WeightRestriction(selection.weights))
        model.set_activation_filter(
            ActivationFilter(selection.activations))
        acc = retrain(model)
        history.append((threshold, selection.n_weights,
                        selection.n_activations, acc))
        if acc >= floor_accuracy:
            accepted = (threshold, selection, acc, model.state_dict())
        else:
            break

    if accepted is None:
        model.load_state_dict(start_state)
        model.set_activation_filter(None)
        return DelaySelectionOutcome(
            threshold_ps=None,
            selection=None,
            accuracy=original_accuracy,
            max_delay_ps=float(
                max(table.max_delay_of(int(w)) for w in candidate_weights)
            ),
            history=history,
        )

    threshold, selection, acc, state = accepted
    model.load_state_dict(state)
    model.set_weight_restriction(WeightRestriction(selection.weights))
    model.set_activation_filter(ActivationFilter(selection.activations))
    return DelaySelectionOutcome(
        threshold_ps=threshold,
        selection=selection,
        accuracy=acc,
        max_delay_ps=selection.max_delay_ps,
        history=history,
    )
