"""Result records and Table I formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.power.estimator import PowerBreakdown


@dataclass
class PowerPruningReport:
    """Everything the paper's Table I reports for one network/dataset.

    Power figures are whole-array averages in mW.  ``*_vs`` variants are
    the proposed network *with* voltage scaling applied; the plain
    ``prop`` variants are pre-scaling (used to isolate the voltage
    contribution, Table I columns VSHW / VOHW).
    """

    network: str
    dataset: str
    accuracy_orig: float
    accuracy_prop: float
    power_std_orig: PowerBreakdown
    power_std_prop: PowerBreakdown
    power_std_prop_vs: PowerBreakdown
    power_opt_orig: PowerBreakdown
    power_opt_prop: PowerBreakdown
    power_opt_prop_vs: PowerBreakdown
    n_selected_weights: int
    n_selected_activations: int
    max_delay_reduction_ps: float
    voltage_label: str
    power_threshold_uw: Optional[float] = None
    delay_threshold_ps: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Table I derived columns
    # ------------------------------------------------------------------
    @staticmethod
    def _reduction(orig: PowerBreakdown, new: PowerBreakdown) -> float:
        return 100.0 * (1.0 - new.total_uw / orig.total_uw)

    @property
    def reduction_std(self) -> float:
        """Total power reduction on Standard HW (%)."""
        return self._reduction(self.power_std_orig, self.power_std_prop_vs)

    @property
    def reduction_opt(self) -> float:
        """Total power reduction on Optimized HW (%)."""
        return self._reduction(self.power_opt_orig, self.power_opt_prop_vs)

    @property
    def vs_contribution_std(self) -> float:
        """Share of Standard-HW reduction contributed by voltage scaling
        (%, relative to the original power — Table I column VSHW)."""
        saved = (self.power_std_prop.total_uw
                 - self.power_std_prop_vs.total_uw)
        return 100.0 * saved / self.power_std_orig.total_uw

    @property
    def vs_contribution_opt(self) -> float:
        """Table I column VOHW."""
        saved = (self.power_opt_prop.total_uw
                 - self.power_opt_prop_vs.total_uw)
        return 100.0 * saved / self.power_opt_orig.total_uw

    def row(self) -> List[str]:
        """One formatted Table I row."""
        def mw(breakdown: PowerBreakdown) -> str:
            return f"{breakdown.total_uw / 1000:.1f}"

        return [
            f"{self.network}-{self.dataset}",
            f"{self.accuracy_orig * 100:.1f}%",
            f"{self.accuracy_prop * 100:.1f}%",
            mw(self.power_std_orig),
            mw(self.power_std_prop_vs),
            f"{self.reduction_std:.1f}%",
            mw(self.power_opt_orig),
            mw(self.power_opt_prop_vs),
            f"{self.reduction_opt:.1f}%",
            str(self.n_selected_weights),
            str(self.n_selected_activations),
            f"{self.max_delay_reduction_ps:.0f} ps",
            self.voltage_label,
            f"{self.vs_contribution_std:.1f}%",
            f"{self.vs_contribution_opt:.1f}%",
        ]


    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable record (for EXPERIMENTS.md regeneration)."""
        def pb(breakdown: PowerBreakdown) -> Dict[str, float]:
            return {"dynamic_uw": breakdown.dynamic_uw,
                    "leakage_uw": breakdown.leakage_uw}

        return {
            "network": self.network,
            "dataset": self.dataset,
            "accuracy_orig": self.accuracy_orig,
            "accuracy_prop": self.accuracy_prop,
            "power_std_orig": pb(self.power_std_orig),
            "power_std_prop_vs": pb(self.power_std_prop_vs),
            "power_opt_orig": pb(self.power_opt_orig),
            "power_opt_prop_vs": pb(self.power_opt_prop_vs),
            "reduction_std": self.reduction_std,
            "reduction_opt": self.reduction_opt,
            "n_selected_weights": self.n_selected_weights,
            "n_selected_activations": self.n_selected_activations,
            "max_delay_reduction_ps": self.max_delay_reduction_ps,
            "voltage_label": self.voltage_label,
            "vs_contribution_std": self.vs_contribution_std,
            "vs_contribution_opt": self.vs_contribution_opt,
            "power_threshold_uw": self.power_threshold_uw,
            "delay_threshold_ps": self.delay_threshold_ps,
        }


TABLE1_HEADER = [
    "Network-Dataset", "Acc.Orig", "Acc.Prop",
    "StdHW Orig [mW]", "StdHW Prop [mW]", "StdHW Red.",
    "OptHW Orig [mW]", "OptHW Prop [mW]", "OptHW Red.",
    "Wei.", "Act.", "MaxDelay Red.", "Voltage", "VSHW", "VOHW",
]


def format_table1(reports: List[PowerPruningReport]) -> str:
    """Render reports as the paper's Table I."""
    rows = [TABLE1_HEADER] + [report.row() for report in reports]
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(TABLE1_HEADER))]
    lines = []
    for index, row in enumerate(rows):
        cells = [cell.rjust(width) for cell, width in zip(row, widths)]
        lines.append(" | ".join(cells))
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)
