"""Content-addressed artifact store for pipeline stage outputs.

Every stage output is addressed by a key that hashes the stage's own
identity (name + version), the configuration fields it reads, and the
keys of its upstream artifacts.  Two runs that share a prefix of the
stage graph therefore share the prefix's keys — and with a common store
the expensive work (training, characterization) happens exactly once.

The store has two layers:

* an in-memory dict, always on — repeated lookups within a process
  return the *same object* instantly;
* an optional persistent layer behind the :class:`StorageBackend`
  seam.  The built-in :class:`LocalDirStorage` keeps one pickle per
  key in a local directory (written atomically via rename), so
  separate processes and separate runs share artifacts.  Other
  backends (an object store for a multi-node worker fleet) plug in
  through :func:`register_storage_scheme` / :func:`storage_from_url`
  without the store — or any of its callers — changing; everything
  that today passes a ``cache_dir`` path can pass a
  ``scheme://bucket/prefix`` URL instead.

Membership is defined by *readability*: ``key in store`` is true
exactly when :meth:`ArtifactStore.get` would return the artifact.  A
truncated or corrupt persistent entry (a writer killed mid-dump) is
evicted on first contact and reported as a miss, never as a phantom
hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import random
import re
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Union
from urllib.parse import parse_qs

import numpy as np

__all__ = [
    "ArtifactStore",
    "ChaosStorage",
    "LocalDirStorage",
    "StorageBackend",
    "StorageFault",
    "hash_key",
    "register_storage_scheme",
    "storage_from_url",
]


def _jsonable(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-encodable primitives."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly and avoids 825 vs 825.0 drift
        return f"f:{value!r}"
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return _jsonable(float(value))
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    payload = getattr(value, "key_payload", None)
    if callable(payload):
        # Spec objects (HardwareBackend, AcceleratorSpec, ...) reduce to
        # their declared key payload, tagged with the type name so two
        # spec kinds with identical fields cannot collide.
        return {"__spec__": type(value).__name__,
                "payload": _jsonable(payload())}
    raise TypeError(
        f"cannot build a stable artifact key from {type(value).__name__}"
    )


def hash_key(payload: Any) -> str:
    """Deterministic content hash of a key payload (nested primitives)."""
    canonical = json.dumps(_jsonable(payload), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# persistent-layer seam
# ----------------------------------------------------------------------
#: Tmp files older than this are presumed orphaned by a killed writer
#: and safe to sweep; younger ones may belong to a live writer whose
#: atomic rename must not be sabotaged.
STALE_TMP_MAX_AGE_S = 3600.0


class StorageBackend:
    """Byte-level persistent layer under :class:`ArtifactStore`.

    Implementations deal in opaque ``(key, bytes)`` pairs — the store
    owns (un)pickling and corruption handling.  ``LocalDirStorage`` is
    the built-in local-directory backend; an object-storage backend
    (S3 and friends) implements the same five methods and registers a
    URL scheme via :func:`register_storage_scheme`.
    """

    def read(self, key: str) -> bytes:
        """The stored bytes of ``key``; raises ``KeyError`` on a miss."""
        raise NotImplementedError

    def write(self, key: str, data: bytes) -> None:
        """Durably store ``data`` under ``key`` (atomic per key)."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        """Cheap existence probe (may be optimistic about readability)."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Remove ``key``; missing entries are not an error."""
        raise NotImplementedError

    def sweep_stale_tmp(self, max_age_s: float = STALE_TMP_MAX_AGE_S,
                        prefix: Optional[str] = None) -> int:
        """Remove write-leftovers older than ``max_age_s`` seconds.

        Backends whose writes cannot leave partial litter (true object
        stores) keep this default no-op.  Returns the removal count.
        """
        return 0

    def describe(self) -> str:
        """Human-readable location (for logs and the health endpoint)."""
        return type(self).__name__


#: mkstemp litter of :class:`LocalDirStorage`: ``.<key[:16]>-<random>``.
_TMP_NAME = re.compile(r"^\.[0-9a-f]{16}-")


class LocalDirStorage(StorageBackend):
    """One ``<key>.pkl`` file per artifact in a local directory.

    Writes go through ``mkstemp`` + ``os.replace`` so parallel writers
    race safely; a writer killed between the two leaves a
    ``.<key[:16]>-*`` tmp file that :meth:`sweep_stale_tmp` reclaims.
    """

    scheme = "file"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ValueError(
                f"cache_dir {str(self.root)!r} exists and is not "
                f"a directory")

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def read(self, key: str) -> bytes:
        path = self._path(key)
        if not path.is_file():
            raise KeyError(key)
        try:
            return path.read_bytes()
        except OSError:
            raise KeyError(key) from None

    def write(self, key: str, data: bytes) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root,
                                        prefix=f".{key[:16]}-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, self._path(key))  # atomic rename
        except Exception:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def delete(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def _tmp_files(self, prefix: Optional[str]) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for entry in self.root.iterdir():
            name = entry.name
            if not _TMP_NAME.match(name):
                continue
            if prefix is not None and not name.startswith(f".{prefix}-"):
                continue
            yield entry

    def sweep_stale_tmp(self, max_age_s: float = STALE_TMP_MAX_AGE_S,
                        prefix: Optional[str] = None) -> int:
        """Unlink orphaned write-tmp files older than ``max_age_s``.

        ``prefix`` (the first 16 hex chars of a key) narrows the sweep
        to one key's litter — used when a corrupt entry proves that a
        writer of that key died mid-write.
        """
        cutoff = time.time() - max_age_s
        removed = 0
        for entry in self._tmp_files(prefix):
            try:
                if entry.stat().st_mtime <= cutoff:
                    entry.unlink()
                    removed += 1
            except OSError:
                continue  # a live writer renamed/removed it first
        return removed

    def describe(self) -> str:
        return f"local dir {str(self.root)!r}"


#: URL scheme -> factory taking the ``scheme://...`` URL.  ``file`` is
#: built in; deployments register object-storage schemes here.
_STORAGE_SCHEMES: Dict[str, Callable[[str], StorageBackend]] = {}


def register_storage_scheme(scheme: str,
                            factory: Callable[[str], StorageBackend]
                            ) -> None:
    """Register ``factory`` for ``scheme://...`` artifact-store URLs.

    The factory receives the full URL and returns a
    :class:`StorageBackend`.  This is the seam an S3/GCS backend plugs
    into: once registered, every ``cache_dir`` argument in the repo
    (CLI flags, sweep specs, service config) accepts its URLs.
    """
    _STORAGE_SCHEMES[str(scheme).lower()] = factory


def _file_storage(url: str) -> StorageBackend:
    return LocalDirStorage(url[len("file://"):] or "/")


register_storage_scheme("file", _file_storage)


class StorageFault(OSError):
    """An injected storage fault (raised only by :class:`ChaosStorage`).

    Deliberately *not* a ``KeyError``: the store must treat it as an
    unreliable backend, not as a clean miss.
    """


class ChaosStorage(StorageBackend):
    """Fault-injecting decorator around any :class:`StorageBackend`.

    The harness the durability tests and the CI chaos smoke run the
    service under: reads and writes fail with configurable
    probabilities, and reads can return *corrupted* (truncated) bytes
    so the store's corrupt-eviction path fires on a live backend.  A
    seeded RNG makes every drill reproducible.

    Args:
        inner: The real backend taking the traffic.
        read_fault_rate: Probability a ``read`` raises
            :class:`StorageFault` instead of delegating.
        write_fault_rate: Probability a ``write`` raises after
            *not* touching the inner backend.
        corrupt_rate: Probability a successful ``read``'s bytes come
            back truncated (simulating a torn write surviving on disk).
        seed: RNG seed; ``None`` draws a nondeterministic one.
    """

    scheme = "chaos"

    def __init__(self, inner: StorageBackend,
                 read_fault_rate: float = 0.0,
                 write_fault_rate: float = 0.0,
                 corrupt_rate: float = 0.0,
                 seed: Optional[int] = None) -> None:
        for name, rate in (("read_fault_rate", read_fault_rate),
                           ("write_fault_rate", write_fault_rate),
                           ("corrupt_rate", corrupt_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], "
                                 f"got {rate!r}")
        self.inner = inner
        self.read_fault_rate = read_fault_rate
        self.write_fault_rate = write_fault_rate
        self.corrupt_rate = corrupt_rate
        self._rng = random.Random(seed)
        self.injected_read_faults = 0
        self.injected_write_faults = 0
        self.injected_corruptions = 0

    @property
    def root(self):
        """The inner backend's local root, if it has one — so path
        resolution (e.g. the service's job-store location) still
        works through the chaos wrapper."""
        return getattr(self.inner, "root", None)

    def read(self, key: str) -> bytes:
        if self._rng.random() < self.read_fault_rate:
            self.injected_read_faults += 1
            raise StorageFault(f"injected read fault for {key!r}")
        data = self.inner.read(key)
        if self.corrupt_rate and self._rng.random() < self.corrupt_rate:
            self.injected_corruptions += 1
            return data[:max(1, len(data) // 2)]
        return data

    def write(self, key: str, data: bytes) -> None:
        if self._rng.random() < self.write_fault_rate:
            self.injected_write_faults += 1
            raise StorageFault(f"injected write fault for {key!r}")
        self.inner.write(key, data)

    def contains(self, key: str) -> bool:
        return self.inner.contains(key)

    def delete(self, key: str) -> None:
        self.inner.delete(key)

    def sweep_stale_tmp(self, max_age_s: float = STALE_TMP_MAX_AGE_S,
                        prefix: Optional[str] = None) -> int:
        return self.inner.sweep_stale_tmp(max_age_s, prefix)

    def counters(self) -> Dict[str, int]:
        return {
            "injected_read_faults": self.injected_read_faults,
            "injected_write_faults": self.injected_write_faults,
            "injected_corruptions": self.injected_corruptions,
        }

    def describe(self) -> str:
        return (f"chaos(read={self.read_fault_rate}, "
                f"write={self.write_fault_rate}, "
                f"corrupt={self.corrupt_rate}) over "
                f"{self.inner.describe()}")


def _chaos_storage(url: str) -> StorageBackend:
    """``chaos://<dir>?read=&write=&corrupt=&seed=`` fault injection.

    The path component is the local directory of the wrapped
    :class:`LocalDirStorage`; query parameters set the fault rates.
    Example: ``chaos:///tmp/cache?read=0.1&corrupt=0.05&seed=7``.
    """
    rest = url[len("chaos://"):]
    path, _, query = rest.partition("?")
    if not path:
        raise ValueError(f"chaos:// URL needs a directory path: {url!r}")
    params = parse_qs(query, keep_blank_values=False)

    def _rate(name: str) -> float:
        return float(params[name][0]) if name in params else 0.0

    seed = int(params["seed"][0]) if "seed" in params else None
    return ChaosStorage(LocalDirStorage(path),
                        read_fault_rate=_rate("read"),
                        write_fault_rate=_rate("write"),
                        corrupt_rate=_rate("corrupt"),
                        seed=seed)


register_storage_scheme("chaos", _chaos_storage)


def storage_from_url(location: Union[str, Path]) -> StorageBackend:
    """A :class:`StorageBackend` from a path or ``scheme://...`` URL."""
    text = str(location)
    match = re.match(r"^([A-Za-z][A-Za-z0-9+.-]*)://", text)
    if match is None:
        return LocalDirStorage(text)
    scheme = match.group(1).lower()
    factory = _STORAGE_SCHEMES.get(scheme)
    if factory is None:
        known = ", ".join(sorted(_STORAGE_SCHEMES))
        raise ValueError(
            f"no artifact storage backend registered for "
            f"{scheme}:// URLs (known: {known}); see "
            f"register_storage_scheme")
    return factory(text)


class ArtifactStore:
    """Two-layer (memory + optional persistent) content-addressed store.

    Args:
        cache_dir: Location of the persistent layer — a directory path
            (created on first write) or a ``scheme://...`` URL
            resolved via :func:`storage_from_url`.  ``None`` keeps the
            store memory-only.
        storage: An explicit :class:`StorageBackend` (mutually
            exclusive with ``cache_dir``).

    Attributes:
        hits / misses: Lookup counters (``get_or_compute`` only).
        disk_hits: Subset of ``hits`` served from the persistent layer.
        corrupt_evictions: Persistent entries evicted because they
            failed to unpickle (truncated by a killed writer).
        read_faults / write_faults: Backend I/O errors survived — a
            failed read degrades to a miss (the artifact is
            recomputed), a failed write leaves the artifact
            memory-only.  A flaky backend costs recomputation, never
            correctness.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None,
                 storage: Optional[StorageBackend] = None) -> None:
        if storage is not None and cache_dir is not None:
            raise ValueError("pass cache_dir or storage, not both")
        if storage is None and cache_dir is not None:
            storage = storage_from_url(cache_dir)
        self.storage = storage
        self.cache_dir = getattr(storage, "root", None)
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt_evictions = 0
        self.read_faults = 0
        self.write_faults = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _read_disk(self, key: str) -> Any:
        """Unpickle ``key`` from the persistent layer.

        A corrupt entry (truncated pickle from a killed writer) is
        *evicted* — together with that key's stale write-tmp litter —
        and reported as a ``KeyError`` miss, so membership, ``get``
        and ``get_or_compute`` all agree that it does not exist.
        """
        if self.storage is None:
            raise KeyError(key)
        try:
            data = self.storage.read(key)
        except KeyError:
            raise
        except Exception:
            # A flaky backend (network blip, injected chaos fault) is
            # a *miss*, not a crash: the caller recomputes through the
            # normal path and the run survives.
            self.read_faults += 1
            raise KeyError(key) from None
        try:
            return pickle.loads(data)
        except Exception:
            self.corrupt_evictions += 1
            try:
                self.storage.delete(key)
            except Exception:
                pass
            try:
                self.storage.sweep_stale_tmp(prefix=key[:16])
            except Exception:
                pass
            raise KeyError(key) from None

    def _write_disk(self, key: str, value: Any) -> None:
        if self.storage is None:
            return
        try:
            self.storage.write(
                key,
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            # The artifact stays memory-only; the next process that
            # needs it recomputes.  Losing cache persistence must
            # never lose the computed result in hand.
            self.write_faults += 1

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        """True iff :meth:`get` would return the artifact.

        Persistent entries are actually *read* (and promoted into the
        memory layer), not just stat-ed — a truncated on-disk pickle
        must not report itself as present and then miss on ``get``
        (the sweep progress banner counts "already cached" points
        through this very check).
        """
        if key in self._memory:
            return True
        try:
            value = self._read_disk(key)
        except KeyError:
            return False
        self._memory[key] = value
        return True

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch without computing (memory first, then persistent)."""
        if key in self._memory:
            return self._memory[key]
        try:
            value = self._read_disk(key)
        except KeyError:
            return default
        self._memory[key] = value
        return value

    def put(self, key: str, value: Any) -> Any:
        """Store in memory and (when configured) persistently."""
        self._memory[key] = value
        self._write_disk(key, value)
        return value

    def get_or_compute(self, key: str, compute: Callable[[], Any],
                       persist: bool = True) -> Any:
        """Return the cached artifact or compute-and-store it.

        Args:
            key: Content-addressed artifact key.
            compute: Producer invoked on a miss.
            persist: When ``False`` the artifact stays in the memory
                layer only — for outputs that are large but cheap and
                deterministic to regenerate (e.g. synthetic datasets).
        """
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if persist:
            try:
                value = self._read_disk(key)
            except KeyError:
                pass
            else:
                self.hits += 1
                self.disk_hits += 1
                self._memory[key] = value
                return value
        self.misses += 1
        value = compute()
        if persist:
            return self.put(key, value)
        self._memory[key] = value
        return value

    def sweep_stale_tmp(self,
                        max_age_s: float = STALE_TMP_MAX_AGE_S) -> int:
        """Reclaim write-tmp litter left by killed writers (count)."""
        if self.storage is None:
            return 0
        return self.storage.sweep_stale_tmp(max_age_s)

    def counters(self) -> Dict[str, int]:
        """Structured lookup/eviction counters (service telemetry)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "corrupt_evictions": self.corrupt_evictions,
            "read_faults": self.read_faults,
            "write_faults": self.write_faults,
        }

    def clear_memory(self) -> None:
        """Drop the in-memory layer (persistent entries survive)."""
        self._memory.clear()
